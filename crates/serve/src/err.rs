//! The typed error taxonomy of the wire protocol.
//!
//! Every way a connection can go wrong maps to exactly one variant, and
//! every variant maps to exactly one observable behaviour: either an HTTP
//! status the worker writes back before closing ([`ServeError::status`]
//! returns `Some`), or a silent close (`None` — the peer is gone or never
//! finished a request, so there is nobody to answer). Nothing in the
//! protocol path panics on peer-controlled input; the fault-injection
//! suite (`tests/faults.rs`) drives every variant from the socket side.

/// A wire-protocol failure on one connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The peer closed the connection cleanly between requests — the
    /// normal end of a keep-alive conversation, not a fault.
    Closed,
    /// EOF arrived mid-request: a truncated request line, header block or
    /// body. There is no complete request to answer.
    Truncated,
    /// A read or write deadline expired.
    Timeout,
    /// The request line is malformed (wrong token count, empty method,
    /// or over the line-length limit).
    BadRequestLine(String),
    /// A header line is malformed (no colon, empty name, bad encoding) or
    /// carries something the server refuses (request bodies with
    /// `Transfer-Encoding`).
    BadHeader(String),
    /// The header block exceeded its byte or count budget.
    HeadersTooLarge,
    /// `Content-Length` is unparseable or self-contradictory.
    BadContentLength(String),
    /// The declared body exceeds the per-request budget.
    BodyTooLarge {
        /// The configured budget in bytes.
        limit: usize,
        /// What the request declared.
        declared: usize,
    },
    /// An HTTP version this server does not speak.
    UnsupportedVersion(String),
    /// A WebSocket upgrade request missing an RFC 6455 precondition.
    BadUpgrade(String),
    /// A malformed WebSocket frame (reserved bits, unknown opcode,
    /// unmasked client payload, fragmentation, invalid UTF-8 text).
    BadFrame(String),
    /// A WebSocket payload over the per-frame budget.
    FrameTooLarge {
        /// The configured budget in bytes.
        limit: usize,
        /// What the frame header declared.
        declared: usize,
    },
    /// Any other socket-level failure.
    Io(std::io::ErrorKind),
    /// The listener could not bind or configure its address.
    Bind(String),
}

impl ServeError {
    /// The HTTP status the worker answers this error with, or `None`
    /// when the connection just closes (peer gone, nothing to answer).
    pub fn status(&self) -> Option<u16> {
        match self {
            ServeError::BadRequestLine(_)
            | ServeError::BadHeader(_)
            | ServeError::BadContentLength(_)
            | ServeError::BadUpgrade(_) => Some(400),
            ServeError::Timeout => Some(408),
            ServeError::BodyTooLarge { .. } => Some(413),
            ServeError::HeadersTooLarge => Some(431),
            ServeError::UnsupportedVersion(_) => Some(505),
            ServeError::Closed
            | ServeError::Truncated
            | ServeError::BadFrame(_)
            | ServeError::FrameTooLarge { .. }
            | ServeError::Io(_)
            | ServeError::Bind(_) => None,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Closed => write!(f, "connection closed by peer"),
            ServeError::Truncated => write!(f, "connection closed mid-request"),
            ServeError::Timeout => write!(f, "read/write deadline expired"),
            ServeError::BadRequestLine(why) => write!(f, "malformed request line: {why}"),
            ServeError::BadHeader(why) => write!(f, "malformed header: {why}"),
            ServeError::HeadersTooLarge => write!(f, "header block over budget"),
            ServeError::BadContentLength(why) => write!(f, "bad content-length: {why}"),
            ServeError::BodyTooLarge { limit, declared } => {
                write!(f, "body of {declared} bytes over the {limit} byte budget")
            }
            ServeError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version {v:?}"),
            ServeError::BadUpgrade(why) => write!(f, "invalid websocket handshake: {why}"),
            ServeError::BadFrame(why) => write!(f, "malformed websocket frame: {why}"),
            ServeError::FrameTooLarge { limit, declared } => {
                write!(f, "websocket payload of {declared} bytes over the {limit} byte budget")
            }
            ServeError::Io(kind) => write!(f, "socket error: {kind}"),
            ServeError::Bind(why) => write!(f, "cannot bind: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_client_fault_maps_to_a_4xx_or_silent_close() {
        assert_eq!(ServeError::BadRequestLine("x".into()).status(), Some(400));
        assert_eq!(ServeError::BadHeader("x".into()).status(), Some(400));
        assert_eq!(ServeError::BadContentLength("x".into()).status(), Some(400));
        assert_eq!(ServeError::BadUpgrade("x".into()).status(), Some(400));
        assert_eq!(ServeError::Timeout.status(), Some(408));
        assert_eq!(ServeError::BodyTooLarge { limit: 1, declared: 2 }.status(), Some(413));
        assert_eq!(ServeError::HeadersTooLarge.status(), Some(431));
        assert_eq!(ServeError::UnsupportedVersion("HTTP/2".into()).status(), Some(505));
        for silent in [
            ServeError::Closed,
            ServeError::Truncated,
            ServeError::BadFrame("x".into()),
            ServeError::FrameTooLarge { limit: 1, declared: 2 },
            ServeError::Io(std::io::ErrorKind::ConnectionReset),
        ] {
            assert_eq!(silent.status(), None, "{silent}");
        }
    }
}
