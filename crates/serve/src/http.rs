//! The hand-rolled HTTP/1.1 subset: request line + headers,
//! `Content-Length` bodies, keep-alive, and plain or chunked responses.
//!
//! The parser is incremental and split-read tolerant: bytes accumulate in
//! a per-connection carry buffer until a full head (`\r\n\r\n`) and body
//! are present, so a request arriving one byte per TCP segment parses
//! identically to one arriving whole. Bytes after the body stay in the
//! carry buffer for the next keep-alive request (pipelining tolerance).
//! Every malformed input maps to a typed [`ServeError`]; nothing here
//! panics on peer-controlled bytes.

use std::io::{Read, Write};

use crate::err::ServeError;

/// Per-request resource budgets. Exceeding any of them is a typed error
/// (and a 4xx), never unbounded buffering.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Longest accepted request line (method + target + version), bytes.
    pub max_request_line: usize,
    /// Whole head budget (request line + every header), bytes.
    pub max_head_bytes: usize,
    /// Most headers accepted on one request.
    pub max_headers: usize,
    /// Largest accepted `Content-Length`, bytes.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 4 * 1024,
            max_head_bytes: 16 * 1024,
            max_headers: 64,
            max_body: 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, as sent (`GET`, `POST`, …).
    pub method: String,
    /// The request target (path plus any query string).
    pub target: String,
    /// `HTTP/1.1` or `HTTP/1.0`.
    pub version: String,
    /// Headers in arrival order, names as sent.
    pub headers: Vec<(String, String)>,
    /// The `Content-Length` body (empty when none was declared).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (ASCII case-insensitive), trimmed.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The target without its query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Whether the client asked to keep the connection open after this
    /// request (HTTP/1.1 defaults to yes, HTTP/1.0 to no).
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.version == "HTTP/1.1",
        }
    }
}

/// Maps an I/O failure mid-parse onto the protocol taxonomy: deadline
/// expiries become [`ServeError::Timeout`], the rest keep their kind.
fn map_io(e: std::io::Error) -> ServeError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ServeError::Timeout,
        kind => ServeError::Io(kind),
    }
}

/// The position right after the first `\r\n\r\n`, if present.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Reads until `carry` holds at least `want` bytes (used for bodies).
fn fill(stream: &mut dyn Read, carry: &mut Vec<u8>, want: usize) -> Result<(), ServeError> {
    let mut chunk = [0u8; 4096];
    while carry.len() < want {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ServeError::Truncated),
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(map_io(e)),
        }
    }
    Ok(())
}

/// Reads one request from `stream`, carrying split-read remainders in
/// `carry` across calls (keep-alive connections reuse one buffer).
pub fn read_request(
    stream: &mut dyn Read,
    carry: &mut Vec<u8>,
    limits: &Limits,
) -> Result<Request, ServeError> {
    // Accumulate until the whole head is present. The budget check runs
    // per iteration, so a peer streaming garbage is cut off at the limit
    // rather than buffered forever.
    let head_len = loop {
        if let Some(end) = head_end(carry) {
            break end;
        }
        if carry.len() > limits.max_head_bytes {
            return Err(ServeError::HeadersTooLarge);
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(if carry.is_empty() {
                    ServeError::Closed
                } else {
                    ServeError::Truncated
                })
            }
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(map_io(e)),
        }
    };
    if head_len > limits.max_head_bytes {
        return Err(ServeError::HeadersTooLarge);
    }

    let head = std::str::from_utf8(&carry[..head_len - 4])
        .map_err(|_| ServeError::BadHeader("head is not valid UTF-8".into()))?
        .to_owned();
    let mut lines = head.split("\r\n");

    let request_line = lines.next().unwrap_or_default();
    if request_line.len() > limits.max_request_line {
        return Err(ServeError::BadRequestLine(format!(
            "{} bytes over the {} byte limit",
            request_line.len(),
            limits.max_request_line
        )));
    }
    let mut tokens = request_line.split(' ').filter(|t| !t.is_empty());
    let (method, target, version) = match (tokens.next(), tokens.next(), tokens.next(), tokens.next())
    {
        (Some(m), Some(t), Some(v), None) => (m.to_owned(), t.to_owned(), v.to_owned()),
        _ => {
            return Err(ServeError::BadRequestLine(format!(
                "expected \"METHOD target HTTP/1.1\", got {request_line:?}"
            )))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ServeError::BadRequestLine(format!("bad method token {method:?}")));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ServeError::UnsupportedVersion(version));
    }

    let mut headers = Vec::new();
    for line in lines {
        if headers.len() >= limits.max_headers {
            return Err(ServeError::HeadersTooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ServeError::BadHeader(format!("no colon in {line:?}")));
        };
        let name = name.trim();
        if name.is_empty() || name.contains(' ') {
            return Err(ServeError::BadHeader(format!("bad header name in {line:?}")));
        }
        headers.push((name.to_owned(), value.trim().to_owned()));
    }

    // Request bodies arrive by Content-Length only; chunked uploads are
    // out of the subset and refused loudly rather than misparsed.
    if headers.iter().any(|(n, _)| n.eq_ignore_ascii_case("transfer-encoding")) {
        return Err(ServeError::BadHeader(
            "transfer-encoding request bodies are not supported".into(),
        ));
    }
    let mut content_length = 0usize;
    let mut seen: Option<&str> = None;
    for (n, v) in &headers {
        if n.eq_ignore_ascii_case("content-length") {
            if seen.is_some_and(|prev| prev != v) {
                return Err(ServeError::BadContentLength("conflicting values".into()));
            }
            seen = Some(v);
            content_length = v
                .parse::<usize>()
                .map_err(|_| ServeError::BadContentLength(format!("unparseable value {v:?}")))?;
        }
    }
    if content_length > limits.max_body {
        return Err(ServeError::BodyTooLarge { limit: limits.max_body, declared: content_length });
    }

    fill(stream, carry, head_len + content_length)?;
    let body = carry[head_len..head_len + content_length].to_vec();
    carry.drain(..head_len + content_length);
    Ok(Request { method, target, version, headers, body })
}

/// One response to write. `chunked` streams the body with
/// `Transfer-Encoding: chunked` instead of `Content-Length`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// The body bytes.
    pub body: Vec<u8>,
    /// Extra headers appended after the standard ones.
    pub headers: Vec<(String, String)>,
    /// Stream the body in chunked transfer encoding.
    pub chunked: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json".into(),
            body: body.into_bytes(),
            headers: Vec::new(),
            chunked: false,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".into(),
            body: body.as_bytes().to_vec(),
            headers: Vec::new(),
            chunked: false,
        }
    }

    /// Switches this response to chunked transfer encoding.
    pub fn into_chunked(mut self) -> Self {
        self.chunked = true;
        self
    }

    /// Appends a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }
}

/// The canonical reason phrase of a status code (the subset this server
/// emits; anything else renders as `Status`).
pub fn reason(status: u16) -> &'static str {
    match status {
        101 => "Switching Protocols",
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Status",
    }
}

/// Size of one chunk in a chunked-encoded body.
const CHUNK_BYTES: usize = 4096;

/// Writes `resp` (head + body) and flushes. `keep_alive` selects the
/// `Connection` header; the caller closes the socket when it is `false`.
pub fn write_response(
    stream: &mut dyn Write,
    resp: &Response,
    keep_alive: bool,
) -> Result<(), ServeError> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", resp.status, reason(resp.status));
    head.push_str(&format!("Content-Type: {}\r\n", resp.content_type));
    if resp.chunked {
        head.push_str("Transfer-Encoding: chunked\r\n");
    } else {
        head.push_str(&format!("Content-Length: {}\r\n", resp.body.len()));
    }
    head.push_str(if keep_alive { "Connection: keep-alive\r\n" } else { "Connection: close\r\n" });
    for (name, value) in &resp.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");

    let write_all = |stream: &mut dyn Write, bytes: &[u8]| -> Result<(), ServeError> {
        stream.write_all(bytes).map_err(map_io)
    };
    write_all(stream, head.as_bytes())?;
    if resp.chunked {
        for chunk in resp.body.chunks(CHUNK_BYTES) {
            write_all(stream, format!("{:x}\r\n", chunk.len()).as_bytes())?;
            write_all(stream, chunk)?;
            write_all(stream, b"\r\n")?;
        }
        write_all(stream, b"0\r\n\r\n")?;
    } else {
        write_all(stream, &resp.body)?;
    }
    stream.flush().map_err(map_io)
}

/// Escapes a string into a JSON literal (for error bodies; the app layer
/// brings its own JSON machinery for everything else).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The standard error body for a typed protocol error.
pub fn error_body(err: &ServeError) -> String {
    format!("{{\"error\": {}}}", json_escape(&err.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader handing out its script in fixed-size pieces, so tests
    /// can replay arbitrary TCP segmentations deterministically.
    struct SplitReader {
        data: Vec<u8>,
        pos: usize,
        step: usize,
    }

    impl Read for SplitReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.step.min(self.data.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn parse_with_step(raw: &[u8], step: usize) -> Result<Request, ServeError> {
        let mut reader = SplitReader { data: raw.to_vec(), pos: 0, step };
        let mut carry = Vec::new();
        read_request(&mut reader, &mut carry, &Limits::default())
    }

    const POST: &[u8] =
        b"POST /rank HTTP/1.1\r\nHost: x\r\nContent-Length: 15\r\n\r\n{\"query\": \"ab\"}";

    #[test]
    fn parses_identically_at_every_segmentation() {
        let whole = parse_with_step(POST, POST.len()).unwrap();
        assert_eq!(whole.method, "POST");
        assert_eq!(whole.path(), "/rank");
        assert_eq!(whole.body, b"{\"query\": \"ab\"}");
        for step in 1..=POST.len() {
            assert_eq!(parse_with_step(POST, step).unwrap(), whole, "step {step}");
        }
    }

    #[test]
    fn keep_alive_pipelining_leaves_the_next_request_in_the_carry() {
        let two = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n".to_vec();
        let mut reader = SplitReader { data: two.clone(), pos: 0, step: two.len() };
        let mut carry = Vec::new();
        let first = read_request(&mut reader, &mut carry, &Limits::default()).unwrap();
        assert_eq!(first.target, "/a");
        let second = read_request(&mut reader, &mut carry, &Limits::default()).unwrap();
        assert_eq!(second.target, "/b");
        assert!(carry.is_empty());
    }

    #[test]
    fn every_truncation_point_is_typed_never_a_panic() {
        for cut in 1..POST.len() {
            let err = parse_with_step(&POST[..cut], POST.len()).unwrap_err();
            assert!(
                matches!(err, ServeError::Truncated),
                "cut at {cut} gave {err:?}"
            );
        }
        assert!(matches!(parse_with_step(b"", 1).unwrap_err(), ServeError::Closed));
    }

    #[test]
    fn malformed_inputs_map_to_their_variant() {
        let parse = |raw: &[u8]| parse_with_step(raw, raw.len()).unwrap_err();
        assert!(matches!(parse(b"GET\r\n\r\n"), ServeError::BadRequestLine(_)));
        assert!(matches!(parse(b"get /x HTTP/1.1\r\n\r\n"), ServeError::BadRequestLine(_)));
        assert!(matches!(parse(b"GET /x HTTP/2.0\r\n\r\n"), ServeError::UnsupportedVersion(_)));
        assert!(matches!(parse(b"GET /x HTTP/1.1\r\nNoColon\r\n\r\n"), ServeError::BadHeader(_)));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nContent-Length: many\r\n\r\n"),
            ServeError::BadContentLength(_)
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n"),
            ServeError::BadContentLength(_)
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            ServeError::BadHeader(_)
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"),
            ServeError::BodyTooLarge { .. }
        ));
    }

    #[test]
    fn oversized_heads_are_cut_off_at_the_budget() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice("X-Pad: ".as_bytes());
        raw.extend(std::iter::repeat_n(b'a', 64 * 1024));
        let err = parse_with_step(&raw, 4096).unwrap_err();
        assert!(matches!(err, ServeError::HeadersTooLarge), "{err:?}");

        // Too many small headers trips the count limit.
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        for i in 0..100 {
            raw.extend_from_slice(format!("X-{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let err = parse_with_step(&raw, raw.len()).unwrap_err();
        assert!(matches!(err, ServeError::HeadersTooLarge), "{err:?}");
    }

    #[test]
    fn responses_render_plain_and_chunked() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{\"a\": 1}".into()), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 8\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("{\"a\": 1}"), "{text}");

        let mut out = Vec::new();
        let body = "x".repeat(CHUNK_BYTES + 10);
        write_response(&mut out, &Response::text(200, &body).into_chunked(), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"), "{text}");
        assert!(text.contains(&format!("{CHUNK_BYTES:x}\r\n")), "{text}");
        assert!(text.ends_with("0\r\n\r\n"), "{text}");
        assert!(!text.contains("Content-Length"), "{text}");
    }

    #[test]
    fn keep_alive_negotiation_follows_version_and_connection() {
        let req = |raw: &[u8]| parse_with_step(raw, raw.len()).unwrap();
        assert!(req(b"GET / HTTP/1.1\r\n\r\n").wants_keep_alive());
        assert!(!req(b"GET / HTTP/1.0\r\n\r\n").wants_keep_alive());
        assert!(!req(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").wants_keep_alive());
        assert!(req(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").wants_keep_alive());
    }

    #[test]
    fn error_bodies_are_valid_json() {
        let body = error_body(&ServeError::BadHeader("a \"quoted\"\nthing".into()));
        assert!(body.starts_with("{\"error\": \""), "{body}");
        assert!(body.contains("\\\"quoted\\\""), "{body}");
        assert!(body.contains("\\n"), "{body}");
    }
}
