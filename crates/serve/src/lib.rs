//! `rightcrowd-serve` — the zero-dependency transport tier of the
//! resident query daemon (re-exported as `rightcrowd::serve`).
//!
//! The crate is pure mechanism, no policy: a hand-rolled HTTP/1.1 subset
//! ([`http`]), a minimal RFC 6455 WebSocket codec ([`ws`]), a typed
//! error taxonomy ([`err`]) in which every peer-triggerable fault is a
//! status or a silent close — never a panic — and a thread-pool server
//! ([`server`]) with a bounded accept queue, 503 load shedding,
//! per-socket deadlines, and SIGTERM graceful drain. What the endpoints
//! *mean* (ranking, explanations, metrics) lives behind the [`App`]
//! trait, implemented by the bench crate's `serve_app`, keeping this
//! crate dependency-free in both directions.

pub mod err;
pub mod http;
pub mod server;
pub mod ws;

pub use err::ServeError;
pub use http::{Limits, Request, Response};
pub use server::{
    request_stop, reset_stop, stop_requested, App, Server, ServerConfig, ServerStats,
};
