//! The minimal RFC 6455 WebSocket subset: the HTTP upgrade handshake
//! (hand-rolled SHA-1 + base64 — no dependencies), masked client text
//! frames in, unmasked server text frames out, plus close/ping/pong.
//!
//! Out of the subset, refused loudly as [`ServeError::BadFrame`]:
//! fragmented messages, reserved bits, unknown opcodes, and unmasked
//! client payloads (which RFC 6455 §5.1 requires the server to reject).

use std::io::{Read, Write};

use crate::err::ServeError;
use crate::http::Request;

/// The RFC 6455 handshake GUID every accept key is derived from.
const WS_GUID: &str = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11";

/// SHA-1 of `data` (FIPS 180-1). Used only for the handshake accept key,
/// where the protocol pins the hash; nothing security-sensitive rides on
/// SHA-1's collision resistance here.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h: [u32; 5] = [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0];
    let mut message = data.to_vec();
    let bit_len = (data.len() as u64) * 8;
    message.push(0x80);
    while message.len() % 64 != 56 {
        message.push(0);
    }
    message.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 80];
    for chunk in message.chunks_exact(64) {
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5A82_7999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }

    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Standard (RFC 4648) base64 with padding.
pub fn base64(data: &[u8]) -> String {
    const ALPHABET: &[u8; 64] =
        b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [chunk[0], *chunk.get(1).unwrap_or(&0), *chunk.get(2).unwrap_or(&0)];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 { ALPHABET[(n >> 6) as usize & 63] as char } else { '=' });
        out.push(if chunk.len() > 2 { ALPHABET[n as usize & 63] as char } else { '=' });
    }
    out
}

/// The `Sec-WebSocket-Accept` value for a client key.
pub fn accept_key(client_key: &str) -> String {
    base64(&sha1(format!("{client_key}{WS_GUID}").as_bytes()))
}

/// Validates an upgrade request's RFC 6455 preconditions and returns the
/// client key to answer with.
pub fn validate_upgrade(req: &Request) -> Result<String, ServeError> {
    if req.method != "GET" {
        return Err(ServeError::BadUpgrade(format!("method {} (need GET)", req.method)));
    }
    match req.header("upgrade") {
        Some(v) if v.eq_ignore_ascii_case("websocket") => {}
        other => {
            return Err(ServeError::BadUpgrade(format!(
                "Upgrade header {other:?} (need \"websocket\")"
            )))
        }
    }
    let connection_upgrades = req
        .header("connection")
        .is_some_and(|v| v.split(',').any(|t| t.trim().eq_ignore_ascii_case("upgrade")));
    if !connection_upgrades {
        return Err(ServeError::BadUpgrade("Connection header does not include Upgrade".into()));
    }
    match req.header("sec-websocket-version") {
        Some("13") => {}
        other => {
            return Err(ServeError::BadUpgrade(format!(
                "Sec-WebSocket-Version {other:?} (need 13)"
            )))
        }
    }
    match req.header("sec-websocket-key") {
        // A 16-byte nonce base64-encodes to exactly 24 characters; the
        // precise length check catches garbage keys cheaply.
        Some(key) if key.len() == 24 => Ok(key.to_owned()),
        Some(key) => Err(ServeError::BadUpgrade(format!(
            "Sec-WebSocket-Key of {} chars (need 24)",
            key.len()
        ))),
        None => Err(ServeError::BadUpgrade("missing Sec-WebSocket-Key".into())),
    }
}

/// One inbound frame, decoded and unmasked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete text message.
    Text(String),
    /// A complete binary message.
    Binary(Vec<u8>),
    /// A ping (answer with [`write_pong`]).
    Ping(Vec<u8>),
    /// A pong (ignorable).
    Pong(Vec<u8>),
    /// Close, with the peer's status code (1005 when absent).
    Close(u16),
}

/// Ensures `carry` holds at least `want` bytes, reading as needed.
fn need(stream: &mut dyn Read, carry: &mut Vec<u8>, want: usize) -> Result<(), ServeError> {
    let mut chunk = [0u8; 4096];
    while carry.len() < want {
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(if carry.is_empty() {
                    ServeError::Closed
                } else {
                    ServeError::Truncated
                })
            }
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
            {
                return Err(ServeError::Timeout)
            }
            Err(e) => return Err(ServeError::Io(e.kind())),
        }
    }
    Ok(())
}

/// Reads one client frame. `carry` holds split-read remainders between
/// calls, exactly like the HTTP parser's buffer (and is seeded with any
/// bytes that arrived behind the handshake).
pub fn read_frame(
    stream: &mut dyn Read,
    carry: &mut Vec<u8>,
    max_payload: usize,
) -> Result<Frame, ServeError> {
    need(stream, carry, 2)?;
    let (b0, b1) = (carry[0], carry[1]);
    if b0 & 0x70 != 0 {
        return Err(ServeError::BadFrame("reserved bits set".into()));
    }
    if b0 & 0x80 == 0 {
        return Err(ServeError::BadFrame("fragmented messages are not supported".into()));
    }
    let opcode = b0 & 0x0F;
    if b1 & 0x80 == 0 {
        // RFC 6455 §5.1: a server MUST fail the connection on an
        // unmasked client frame.
        return Err(ServeError::BadFrame("client frame is not masked".into()));
    }

    let (len, mut offset) = match b1 & 0x7F {
        126 => {
            need(stream, carry, 4)?;
            (u64::from(u16::from_be_bytes([carry[2], carry[3]])), 4usize)
        }
        127 => {
            need(stream, carry, 10)?;
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&carry[2..10]);
            (u64::from_be_bytes(raw), 10usize)
        }
        short => (u64::from(short), 2usize),
    };
    if len > max_payload as u64 {
        return Err(ServeError::FrameTooLarge { limit: max_payload, declared: len as usize });
    }
    let len = len as usize;

    need(stream, carry, offset + 4 + len)?;
    let mask = [carry[offset], carry[offset + 1], carry[offset + 2], carry[offset + 3]];
    offset += 4;
    let mut payload: Vec<u8> =
        carry[offset..offset + len].iter().enumerate().map(|(i, b)| b ^ mask[i % 4]).collect();
    carry.drain(..offset + len);

    match opcode {
        0x1 => String::from_utf8(payload)
            .map(Frame::Text)
            .map_err(|_| ServeError::BadFrame("text payload is not valid UTF-8".into())),
        0x2 => Ok(Frame::Binary(payload)),
        0x8 => {
            let code = if payload.len() >= 2 {
                u16::from_be_bytes([payload[0], payload[1]])
            } else {
                1005
            };
            Ok(Frame::Close(code))
        }
        0x9 => {
            payload.truncate(125);
            Ok(Frame::Ping(payload))
        }
        0xA => Ok(Frame::Pong(payload)),
        other => Err(ServeError::BadFrame(format!("unsupported opcode {other:#x}"))),
    }
}

/// Maps a frame-write failure onto the taxonomy.
fn map_write(e: std::io::Error) -> ServeError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ServeError::Timeout,
        kind => ServeError::Io(kind),
    }
}

/// Writes one unmasked server frame.
fn write_frame(stream: &mut dyn Write, opcode: u8, payload: &[u8]) -> Result<(), ServeError> {
    let mut head = Vec::with_capacity(10);
    head.push(0x80 | opcode);
    match payload.len() {
        n if n < 126 => head.push(n as u8),
        n if n <= u16::MAX as usize => {
            head.push(126);
            head.extend_from_slice(&(n as u16).to_be_bytes());
        }
        n => {
            head.push(127);
            head.extend_from_slice(&(n as u64).to_be_bytes());
        }
    }
    stream.write_all(&head).map_err(map_write)?;
    stream.write_all(payload).map_err(map_write)?;
    stream.flush().map_err(map_write)
}

/// Writes a server text frame.
pub fn write_text(stream: &mut dyn Write, text: &str) -> Result<(), ServeError> {
    write_frame(stream, 0x1, text.as_bytes())
}

/// Writes a close frame with `code`.
pub fn write_close(stream: &mut dyn Write, code: u16) -> Result<(), ServeError> {
    write_frame(stream, 0x8, &code.to_be_bytes())
}

/// Answers a ping.
pub fn write_pong(stream: &mut dyn Write, payload: &[u8]) -> Result<(), ServeError> {
    write_frame(stream, 0xA, payload)
}

/// Masks a payload and writes a *client* frame — the test- and
/// client-side half of the codec (`rc soak --connect` and the fault
/// suite drive the server with it).
pub fn write_client_text(
    stream: &mut dyn Write,
    text: &str,
    mask: [u8; 4],
) -> Result<(), ServeError> {
    let payload: Vec<u8> =
        text.as_bytes().iter().enumerate().map(|(i, b)| b ^ mask[i % 4]).collect();
    let mut head = Vec::with_capacity(14);
    head.push(0x81);
    match payload.len() {
        n if n < 126 => head.push(0x80 | n as u8),
        n if n <= u16::MAX as usize => {
            head.push(0x80 | 126);
            head.extend_from_slice(&(n as u16).to_be_bytes());
        }
        n => {
            head.push(0x80 | 127);
            head.extend_from_slice(&(n as u64).to_be_bytes());
        }
    }
    head.extend_from_slice(&mask);
    stream.write_all(&head).map_err(map_write)?;
    stream.write_all(&payload).map_err(map_write)?;
    stream.flush().map_err(map_write)
}

/// Reads one *server* frame (unmasked) — the client-side decoder.
pub fn read_server_frame(
    stream: &mut dyn Read,
    carry: &mut Vec<u8>,
    max_payload: usize,
) -> Result<Frame, ServeError> {
    need(stream, carry, 2)?;
    let (b0, b1) = (carry[0], carry[1]);
    let opcode = b0 & 0x0F;
    let (len, offset) = match b1 & 0x7F {
        126 => {
            need(stream, carry, 4)?;
            (u64::from(u16::from_be_bytes([carry[2], carry[3]])), 4usize)
        }
        127 => {
            need(stream, carry, 10)?;
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&carry[2..10]);
            (u64::from_be_bytes(raw), 10usize)
        }
        short => (u64::from(short), 2usize),
    };
    if len > max_payload as u64 {
        return Err(ServeError::FrameTooLarge { limit: max_payload, declared: len as usize });
    }
    let len = len as usize;
    need(stream, carry, offset + len)?;
    let payload = carry[offset..offset + len].to_vec();
    carry.drain(..offset + len);
    match opcode {
        0x1 => String::from_utf8(payload)
            .map(Frame::Text)
            .map_err(|_| ServeError::BadFrame("text payload is not valid UTF-8".into())),
        0x8 => {
            let code = if payload.len() >= 2 {
                u16::from_be_bytes([payload[0], payload[1]])
            } else {
                1005
            };
            Ok(Frame::Close(code))
        }
        0x9 => Ok(Frame::Ping(payload)),
        0xA => Ok(Frame::Pong(payload)),
        _ => Ok(Frame::Binary(payload)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha1_matches_the_fips_vectors() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(hex(&sha1(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex(&sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        // A >64-byte input exercises the multi-chunk path.
        assert_eq!(
            hex(&sha1("a".repeat(200).as_bytes())),
            hex(&sha1("a".repeat(200).as_bytes()))
        );
    }

    #[test]
    fn base64_matches_rfc_4648_vectors() {
        assert_eq!(base64(b""), "");
        assert_eq!(base64(b"f"), "Zg==");
        assert_eq!(base64(b"fo"), "Zm8=");
        assert_eq!(base64(b"foo"), "Zm9v");
        assert_eq!(base64(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn accept_key_matches_the_rfc_6455_example() {
        assert_eq!(
            accept_key("dGhlIHNhbXBsZSBub25jZQ=="),
            "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        );
    }

    #[test]
    fn masked_client_frames_round_trip_at_every_length_class() {
        for len in [0usize, 5, 125, 126, 300, 70_000] {
            let text = "q".repeat(len);
            let mut wire = Vec::new();
            write_client_text(&mut wire, &text, [0x12, 0x34, 0x56, 0x78]).unwrap();
            let mut carry = Vec::new();
            let frame = read_frame(&mut wire.as_slice(), &mut carry, 1 << 20).unwrap();
            assert_eq!(frame, Frame::Text(text), "len {len}");
            assert!(carry.is_empty());
        }
    }

    #[test]
    fn server_frames_round_trip_through_the_client_decoder() {
        for len in [0usize, 125, 126, 70_000] {
            let text = "r".repeat(len);
            let mut wire = Vec::new();
            write_text(&mut wire, &text).unwrap();
            let mut carry = Vec::new();
            let frame = read_server_frame(&mut wire.as_slice(), &mut carry, 1 << 20).unwrap();
            assert_eq!(frame, Frame::Text(text), "len {len}");
        }
    }

    #[test]
    fn protocol_violations_are_typed() {
        // Unmasked client frame.
        let mut carry = Vec::new();
        let err = read_frame(&mut [0x81u8, 0x01, b'x'].as_slice(), &mut carry, 1024).unwrap_err();
        assert!(matches!(err, ServeError::BadFrame(_)), "{err:?}");
        // Reserved bits.
        let mut carry = Vec::new();
        let err = read_frame(&mut [0xF1u8, 0x80].as_slice(), &mut carry, 1024).unwrap_err();
        assert!(matches!(err, ServeError::BadFrame(_)), "{err:?}");
        // Fragmentation (FIN clear).
        let mut carry = Vec::new();
        let err = read_frame(&mut [0x01u8, 0x80].as_slice(), &mut carry, 1024).unwrap_err();
        assert!(matches!(err, ServeError::BadFrame(_)), "{err:?}");
        // Oversized payload is refused from the header alone.
        let mut wire = vec![0x81u8, 0x80 | 126];
        wire.extend_from_slice(&2048u16.to_be_bytes());
        let mut carry = Vec::new();
        let err = read_frame(&mut wire.as_slice(), &mut carry, 1024).unwrap_err();
        assert!(matches!(err, ServeError::FrameTooLarge { .. }), "{err:?}");
        // Truncated mid-frame.
        let mut carry = Vec::new();
        let err = read_frame(&mut [0x81u8].as_slice(), &mut carry, 1024).unwrap_err();
        assert!(matches!(err, ServeError::Truncated), "{err:?}");
    }

    #[test]
    fn upgrade_validation_requires_every_precondition() {
        let good = Request {
            method: "GET".into(),
            target: "/rank".into(),
            version: "HTTP/1.1".into(),
            headers: vec![
                ("Upgrade".into(), "websocket".into()),
                ("Connection".into(), "keep-alive, Upgrade".into()),
                ("Sec-WebSocket-Version".into(), "13".into()),
                ("Sec-WebSocket-Key".into(), "dGhlIHNhbXBsZSBub25jZQ==".into()),
            ],
            body: Vec::new(),
        };
        assert_eq!(validate_upgrade(&good).unwrap(), "dGhlIHNhbXBsZSBub25jZQ==");

        // Dropping any precondition fails with a typed BadUpgrade.
        for drop in ["Upgrade", "Connection", "Sec-WebSocket-Version", "Sec-WebSocket-Key"] {
            let mut req = good.clone();
            req.headers.retain(|(n, _)| n != drop);
            let err = validate_upgrade(&req).unwrap_err();
            assert!(matches!(err, ServeError::BadUpgrade(_)), "{drop}: {err:?}");
        }
        let mut wrong_version = good.clone();
        wrong_version.headers[2].1 = "8".into();
        assert!(validate_upgrade(&wrong_version).is_err());
        let mut short_key = good.clone();
        short_key.headers[3].1 = "short".into();
        assert!(validate_upgrade(&short_key).is_err());
        let mut post = good;
        post.method = "POST".into();
        assert!(validate_upgrade(&post).is_err());
    }
}
