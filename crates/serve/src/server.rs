//! The resident server: a blocking acceptor feeding a bounded queue of
//! connections drained by a thread-per-core worker pool.
//!
//! The shape is deliberately boring. One acceptor thread polls a
//! nonblocking listener; each accepted socket either enters the bounded
//! queue or is answered `503` on the spot (load shedding — the queue
//! *is* the admission policy, there is no hidden backlog beyond the
//! kernel's). Workers pop connections and run keep-alive request loops
//! under per-socket read/write deadlines, so one slow or silent peer
//! costs at most one worker for one deadline. A termination request
//! (SIGTERM/SIGINT, or [`Server::request_stop`] in tests) stops the
//! acceptor, lets workers finish every queued and in-flight request,
//! then joins the pool — the graceful-drain contract `rc serve` builds
//! its exit-0 promise on.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::err::ServeError;
use crate::http::{error_body, read_request, write_response, Limits, Request, Response};
use crate::ws;

/// What the application layer plugs into the transport. Handlers run on
/// worker threads, so implementations must be `Sync`.
pub trait App: Sync {
    /// Answers one parsed HTTP request.
    fn handle(&self, req: &Request) -> Response;

    /// Whether `path` accepts a WebSocket upgrade.
    fn upgrade_allowed(&self, _path: &str) -> bool {
        false
    }

    /// Answers one WebSocket text message with zero or more text frames
    /// (a batch request streams one frame per result).
    fn ws_message(&self, _text: &str) -> Vec<String> {
        Vec::new()
    }
}

/// Server tuning. [`ServerConfig::default`] suits tests and local runs;
/// `rc serve` overrides address and thread count from its flags.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, `host:port`.
    pub addr: String,
    /// Worker threads. Defaults to the core count.
    pub threads: usize,
    /// Accepted-but-unserved connections held before shedding with 503.
    pub queue_cap: usize,
    /// Per-socket read deadline.
    pub read_timeout: Duration,
    /// Per-socket write deadline.
    pub write_timeout: Duration,
    /// Parser budgets.
    pub limits: Limits,
    /// Most requests served on one keep-alive connection before the
    /// server closes it (an upper bound on per-connection state).
    pub max_requests_per_conn: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7700".into(),
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            queue_cap: 128,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            limits: Limits::default(),
            max_requests_per_conn: 1024,
        }
    }
}

/// Counters the serve loop keeps about itself (distinct from the query
/// metrics, which belong to `obs`). All monotonic.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Connections answered 503 because the queue was full.
    pub shed: AtomicU64,
    /// Requests answered (any status).
    pub requests: AtomicU64,
    /// Protocol faults answered with a 4xx/5xx status.
    pub faults_answered: AtomicU64,
    /// Connections dropped without a response (peer vanished mid-parse).
    pub faults_silent: AtomicU64,
    /// WebSocket upgrades completed.
    pub ws_upgrades: AtomicU64,
    /// WebSocket text messages served.
    pub ws_messages: AtomicU64,
}

/// The termination latch. Signal handlers may only do async-signal-safe
/// work, which a relaxed atomic store is; everything else happens on the
/// threads that poll it.
static STOP: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::STOP;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // The C `signal(2)` entry point, declared with a typed function
        // pointer so no integer-cast of a code address is involved. The
        // simple `signal` registration (not `sigaction`) is enough here:
        // the handler only stores a flag.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::Relaxed);
    }

    /// Routes SIGTERM and SIGINT into the stop latch.
    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    /// No signal wiring off Unix; [`Server::request_stop`] still works.
    pub fn install() {}
}

/// Asks the running server to drain and stop (what the signal handler
/// does, callable directly from tests and embedders).
pub fn request_stop() {
    STOP.store(true, Ordering::Relaxed);
}

/// Whether a stop has been requested.
pub fn stop_requested() -> bool {
    STOP.load(Ordering::Relaxed)
}

/// Re-arms the latch so one process can run servers back to back
/// (tests; `rc serve` runs exactly one).
pub fn reset_stop() {
    STOP.store(false, Ordering::Relaxed);
}

/// The bounded hand-off between the acceptor and the workers.
struct ConnQueue {
    deque: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    cap: usize,
}

impl ConnQueue {
    fn new(cap: usize) -> Self {
        ConnQueue { deque: Mutex::new(VecDeque::new()), ready: Condvar::new(), cap }
    }

    /// Queues a connection, or returns it to the caller when full.
    fn push(&self, conn: TcpStream) -> Result<(), TcpStream> {
        let mut deque = self.deque.lock().unwrap();
        if deque.len() >= self.cap {
            return Err(conn);
        }
        deque.push_back(conn);
        drop(deque);
        self.ready.notify_one();
        Ok(())
    }

    /// Pops a connection, blocking until one arrives or shutdown. The
    /// queue is drained *before* the stop latch is honoured, so every
    /// accepted connection gets served even during a drain.
    fn pop(&self) -> Option<TcpStream> {
        let mut deque = self.deque.lock().unwrap();
        loop {
            if let Some(conn) = deque.pop_front() {
                return Some(conn);
            }
            if stop_requested() {
                return None;
            }
            let (next, _) =
                self.ready.wait_timeout(deque, Duration::from_millis(50)).unwrap();
            deque = next;
        }
    }
}

/// The server: a bound listener plus its tuning. Create with
/// [`Server::bind`], run with [`Server::run`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    stats: ServerStats,
}

impl Server {
    /// Binds the listen address (the socket exists after this returns,
    /// so callers can print "listening on …" truthfully) and installs
    /// the SIGTERM/SIGINT handlers.
    pub fn bind(config: ServerConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::Bind(format!("{}: {e}", config.addr)))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Bind(format!("set_nonblocking: {e}")))?;
        sig::install();
        Ok(Server { listener, config, stats: ServerStats::default() })
    }

    /// The bound address (useful when the config asked for port 0).
    pub fn local_addr(&self) -> Option<std::net::SocketAddr> {
        self.listener.local_addr().ok()
    }

    /// The serve-loop counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Runs until a stop is requested, then drains: the acceptor quits,
    /// workers finish every queued and in-flight request, and `run`
    /// returns once the pool has joined.
    pub fn run(&self, app: &dyn App) {
        let queue = ConnQueue::new(self.config.queue_cap);
        std::thread::scope(|scope| {
            for worker in 0..self.config.threads.max(1) {
                let queue = &queue;
                let stats = &self.stats;
                let config = &self.config;
                std::thread::Builder::new()
                    .name(format!("serve-worker-{worker}"))
                    .spawn_scoped(scope, move || {
                        while let Some(conn) = queue.pop() {
                            serve_connection(conn, app, config, stats);
                        }
                    })
                    .expect("spawning a worker thread");
            }

            // The acceptor runs on the calling thread so `run` owns the
            // whole lifecycle.
            while !stop_requested() {
                match self.listener.accept() {
                    Ok((conn, _peer)) => {
                        self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                        configure(&conn, &self.config);
                        if let Err(mut refused) = queue.push(conn) {
                            self.stats.shed.fetch_add(1, Ordering::Relaxed);
                            let resp = Response::json(
                                503,
                                "{\"error\": \"server is at capacity, retry later\"}".into(),
                            )
                            .with_header("Retry-After", "1");
                            let _ = write_response(&mut refused, &resp, false);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            // Wake every parked worker so they observe the latch (after
            // draining whatever is still queued).
            queue.ready.notify_all();
        });
    }
}

/// Applies the per-socket deadlines. Failures are non-fatal: a socket
/// that cannot take a deadline still gets served, it just loses the
/// slow-peer protection.
fn configure(conn: &TcpStream, config: &ServerConfig) {
    let _ = conn.set_read_timeout(Some(config.read_timeout));
    let _ = conn.set_write_timeout(Some(config.write_timeout));
    let _ = conn.set_nodelay(true);
}

/// The keep-alive request loop for one connection. Every exit path is a
/// typed [`ServeError`]; faults that map to a status are answered, the
/// rest close silently. Panics cannot cross this frame — handlers are
/// plain Rust and the parser is total — but even a latent bug would
/// only poison one worker's current connection, not the listener.
fn serve_connection(
    mut conn: TcpStream,
    app: &dyn App,
    config: &ServerConfig,
    stats: &ServerStats,
) {
    let mut carry: Vec<u8> = Vec::new();
    for served in 0..config.max_requests_per_conn {
        let req = match read_request(&mut conn, &mut carry, &config.limits) {
            Ok(req) => req,
            Err(err) => {
                answer_fault(&mut conn, &err, stats);
                return;
            }
        };

        // A WebSocket upgrade hands the socket to the frame loop; the
        // HTTP conversation is over either way.
        if req.header("upgrade").is_some() {
            if app.upgrade_allowed(req.path()) {
                match ws::validate_upgrade(&req) {
                    Ok(key) => {
                        stats.requests.fetch_add(1, Ordering::Relaxed);
                        stats.ws_upgrades.fetch_add(1, Ordering::Relaxed);
                        ws_loop(conn, carry, key, app, config, stats);
                    }
                    Err(err) => answer_fault(&mut conn, &err, stats),
                }
            } else {
                stats.requests.fetch_add(1, Ordering::Relaxed);
                let resp =
                    Response::json(400, "{\"error\": \"no websocket endpoint here\"}".into());
                let _ = write_response(&mut conn, &resp, false);
            }
            return;
        }

        let keep_alive = req.wants_keep_alive() && served + 1 < config.max_requests_per_conn;
        let resp = app.handle(&req);
        stats.requests.fetch_add(1, Ordering::Relaxed);
        if write_response(&mut conn, &resp, keep_alive).is_err() {
            // Mid-response disconnect: nothing to answer, nobody left
            // to hear it. The worker just moves on.
            stats.faults_silent.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

/// Answers a protocol fault when it maps to a status, else closes
/// silently. Write failures are ignored — the peer is already gone.
fn answer_fault(conn: &mut TcpStream, err: &ServeError, stats: &ServerStats) {
    match err.status() {
        Some(status) => {
            stats.faults_answered.fetch_add(1, Ordering::Relaxed);
            let resp = Response::json(status, error_body(err));
            let _ = write_response(conn, &resp, false);
        }
        None => {
            if !matches!(err, ServeError::Closed) {
                stats.faults_silent.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The WebSocket frame loop after a validated upgrade: answer the
/// handshake, then serve text messages until close, fault, or drain.
fn ws_loop(
    mut conn: TcpStream,
    mut carry: Vec<u8>,
    key: String,
    app: &dyn App,
    config: &ServerConfig,
    stats: &ServerStats,
) {
    let handshake = format!(
        "HTTP/1.1 101 Switching Protocols\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Accept: {}\r\n\r\n",
        ws::accept_key(&key)
    );
    if conn.write_all(handshake.as_bytes()).and_then(|()| conn.flush()).is_err() {
        stats.faults_silent.fetch_add(1, Ordering::Relaxed);
        return;
    }

    loop {
        // A drain request ends the conversation politely between
        // messages (1001 = going away).
        if stop_requested() {
            let _ = ws::write_close(&mut conn, 1001);
            return;
        }
        match ws::read_frame(&mut conn, &mut carry, config.limits.max_body) {
            Ok(ws::Frame::Text(text)) => {
                stats.ws_messages.fetch_add(1, Ordering::Relaxed);
                for reply in app.ws_message(&text) {
                    if ws::write_text(&mut conn, &reply).is_err() {
                        stats.faults_silent.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
            }
            Ok(ws::Frame::Ping(payload)) => {
                if ws::write_pong(&mut conn, &payload).is_err() {
                    return;
                }
            }
            Ok(ws::Frame::Pong(_)) => {}
            Ok(ws::Frame::Close(code)) => {
                let _ = ws::write_close(&mut conn, code);
                return;
            }
            Ok(ws::Frame::Binary(_)) => {
                // The rank protocol is text-only; answer 1003
                // (unsupported data) and hang up.
                let _ = ws::write_close(&mut conn, 1003);
                return;
            }
            Err(ServeError::Closed) => return,
            Err(err) => {
                // Protocol faults get a 1002 close frame when the
                // socket is still writable; either way the worker is
                // free immediately.
                if !matches!(err, ServeError::Timeout) {
                    let _ = ws::write_close(&mut conn, 1002);
                }
                stats.faults_silent.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl App for Echo {
        fn handle(&self, req: &Request) -> Response {
            Response::text(200, &format!("{} {}", req.method, req.path()))
        }
        fn upgrade_allowed(&self, path: &str) -> bool {
            path == "/ws"
        }
        fn ws_message(&self, text: &str) -> Vec<String> {
            vec![format!("echo:{text}")]
        }
    }

    #[test]
    fn queue_sheds_above_capacity_and_drains_before_stopping() {
        reset_stop();
        let queue = ConnQueue::new(1);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let b = TcpStream::connect(addr).unwrap();
        assert!(queue.push(a).is_ok());
        assert!(queue.push(b).is_err(), "second connection must be refused at cap 1");

        // A queued connection is handed out even after a stop request.
        request_stop();
        assert!(queue.pop().is_some());
        assert!(queue.pop().is_none());
        reset_stop();
    }

    #[test]
    fn server_binds_ephemeral_ports_and_reports_them() {
        reset_stop();
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap();
        assert_ne!(addr.port(), 0);
        drop(server);
        reset_stop();
    }

    #[test]
    fn bind_failures_are_typed() {
        let first = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..ServerConfig::default()
        })
        .unwrap();
        let taken = first.local_addr().unwrap();
        let err = Server::bind(ServerConfig {
            addr: taken.to_string(),
            ..ServerConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, ServeError::Bind(_)), "{err:?}");
        reset_stop();
    }

    #[test]
    fn end_to_end_http_and_ws_roundtrip_then_graceful_stop() {
        reset_stop();
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap();

        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.run(&Echo));

            // Plain HTTP round trip.
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(b"GET /hello HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
            let mut raw = Vec::new();
            std::io::Read::read_to_end(&mut conn, &mut raw).unwrap();
            let text = String::from_utf8(raw).unwrap();
            assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
            assert!(text.ends_with("GET /hello"), "{text}");

            // WebSocket round trip on the allowed path.
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(
                b"GET /ws HTTP/1.1\r\nUpgrade: websocket\r\nConnection: Upgrade\r\n\
                  Sec-WebSocket-Version: 13\r\nSec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n\r\n",
            )
            .unwrap();
            let mut head = Vec::new();
            let mut byte = [0u8; 1];
            while !head.ends_with(b"\r\n\r\n") {
                std::io::Read::read_exact(&mut conn, &mut byte).unwrap();
                head.push(byte[0]);
            }
            let head = String::from_utf8(head).unwrap();
            assert!(head.starts_with("HTTP/1.1 101"), "{head}");
            assert!(head.contains("s3pPLMBiTxaQ9kYGzzhZRbK+xOo="), "{head}");
            ws::write_client_text(&mut conn, "ping", [9, 9, 9, 9]).unwrap();
            let mut carry = Vec::new();
            let frame = ws::read_server_frame(&mut conn, &mut carry, 1 << 20).unwrap();
            assert_eq!(frame, ws::Frame::Text("echo:ping".into()));
            let _ = ws::write_close(&mut conn, 1000);
            drop(conn);

            request_stop();
            handle.join().unwrap();
        });

        assert!(server.stats().requests.load(Ordering::Relaxed) >= 2);
        assert_eq!(server.stats().ws_upgrades.load(Ordering::Relaxed), 1);
        reset_stop();
    }
}
