//! End-to-end behaviour of the transport tier over real sockets:
//! keep-alive conversations, chunked responses, the WebSocket happy
//! path, and the graceful-drain contract.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

use rightcrowd_serve::server::{request_stop, reset_stop};
use rightcrowd_serve::ws;
use rightcrowd_serve::{App, Request, Response, Server, ServerConfig};

/// The stop latch is process-global, so tests that start servers must
/// not overlap within this binary.
static SERIAL: Mutex<()> = Mutex::new(());

struct Demo;

impl App for Demo {
    fn handle(&self, req: &Request) -> Response {
        match req.path() {
            "/big" => Response::text(200, &"z".repeat(10_000)).into_chunked(),
            "/slow" => {
                std::thread::sleep(Duration::from_millis(400));
                Response::text(200, "finished in-flight work")
            }
            path => Response::text(200, &format!("{} {}", req.method, path)),
        }
    }
    fn upgrade_allowed(&self, path: &str) -> bool {
        path == "/rank"
    }
    fn ws_message(&self, text: &str) -> Vec<String> {
        // One frame per comma-separated item: the streamed-batch shape.
        text.split(',').map(|item| format!("result:{item}")).collect()
    }
}

/// Requests a drain on drop, so a panicking assertion inside the scope
/// still stops the server instead of deadlocking the join.
struct StopOnDrop;
impl Drop for StopOnDrop {
    fn drop(&mut self) {
        request_stop();
    }
}

fn with_server(exercise: impl FnOnce(SocketAddr)) {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    reset_stop();
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();
    std::thread::scope(|scope| {
        let run = scope.spawn(|| server.run(&Demo));
        let stopper = StopOnDrop;
        exercise(addr);
        drop(stopper);
        run.join().unwrap();
    });
    reset_stop();
}

/// Reads one response off a keep-alive connection: head through
/// `\r\n\r\n`, then exactly `Content-Length` body bytes.
fn read_keep_alive_response(conn: &mut TcpStream) -> (String, Vec<u8>) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        conn.read_exact(&mut byte).unwrap();
        head.push(byte[0]);
    }
    let head = String::from_utf8(head).unwrap();
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("keep-alive responses carry Content-Length")
        .trim()
        .parse()
        .unwrap();
    let mut body = vec![0u8; length];
    conn.read_exact(&mut body).unwrap();
    (head, body)
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    with_server(|addr| {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        for i in 0..5 {
            conn.write_all(format!("GET /req{i} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
                .unwrap();
            let (head, body) = read_keep_alive_response(&mut conn);
            assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "{head}");
            assert!(head.contains("Connection: keep-alive\r\n"), "{head}");
            assert_eq!(String::from_utf8(body).unwrap(), format!("GET /req{i}"));
        }
        // An explicit close is honoured.
        conn.write_all(b"GET /bye HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let mut rest = Vec::new();
        conn.read_to_end(&mut rest).unwrap();
        let text = String::from_utf8_lossy(&rest);
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("GET /bye"), "{text}");
    });
}

#[test]
fn chunked_responses_reassemble_to_the_full_body() {
    with_server(|addr| {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        conn.write_all(b"GET /big HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let mut raw = Vec::new();
        conn.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8(raw).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"), "{text}");
        assert!(text.ends_with("0\r\n\r\n"), "{text}");

        // Reassemble the chunked body and compare to the app's output.
        let (_, mut rest) = text.split_once("\r\n\r\n").unwrap();
        let mut body = String::new();
        loop {
            let (size_line, after) = rest.split_once("\r\n").unwrap();
            let size = usize::from_str_radix(size_line, 16).unwrap();
            if size == 0 {
                break;
            }
            body.push_str(&after[..size]);
            rest = &after[size + 2..];
        }
        assert_eq!(body, "z".repeat(10_000));
    });
}

#[test]
fn websocket_batches_stream_one_frame_per_result() {
    with_server(|addr| {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        conn.write_all(
            b"GET /rank HTTP/1.1\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Version: 13\r\nSec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n\r\n",
        )
        .unwrap();
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            conn.read_exact(&mut byte).unwrap();
            head.push(byte[0]);
        }
        let head = String::from_utf8(head).unwrap();
        assert!(head.starts_with("HTTP/1.1 101 Switching Protocols\r\n"), "{head}");
        // The RFC 6455 §1.3 example key must produce the example accept.
        assert!(head.contains("Sec-WebSocket-Accept: s3pPLMBiTxaQ9kYGzzhZRbK+xOo=\r\n"), "{head}");

        ws::write_client_text(&mut conn, "a,b,c", [5, 6, 7, 8]).unwrap();
        let mut carry = Vec::new();
        for expect in ["result:a", "result:b", "result:c"] {
            let frame = ws::read_server_frame(&mut conn, &mut carry, 1 << 20).unwrap();
            assert_eq!(frame, ws::Frame::Text(expect.into()));
        }

        // Ping is answered with pong; close is answered with close.
        let mut ping = vec![0x89u8, 0x84, 0, 0, 0, 0];
        ping.extend_from_slice(b"beat");
        conn.write_all(&ping).unwrap();
        let frame = ws::read_server_frame(&mut conn, &mut carry, 1 << 20).unwrap();
        assert_eq!(frame, ws::Frame::Pong(b"beat".to_vec()));
        conn.write_all(&[0x88u8, 0x82, 0, 0, 0, 0, 0x03, 0xE8]).unwrap(); // masked close 1000
        let frame = ws::read_server_frame(&mut conn, &mut carry, 1 << 20).unwrap();
        assert_eq!(frame, ws::Frame::Close(1000));
    });
}

#[test]
fn graceful_drain_finishes_in_flight_requests_before_stopping() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    reset_stop();
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();
    std::thread::scope(|scope| {
        let run = scope.spawn(|| server.run(&Demo));

        // Put a slow request in flight, then request the drain while the
        // handler is still sleeping.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        conn.write_all(b"GET /slow HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(100));
        request_stop();

        // The in-flight response still arrives complete...
        let mut raw = Vec::new();
        conn.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.ends_with("finished in-flight work"), "{text}");

        // ...and the pool joins promptly afterwards.
        run.join().unwrap();
    });
    assert_eq!(server.stats().requests.load(std::sync::atomic::Ordering::Relaxed), 1);
    reset_stop();
}
