//! Wire-protocol fault injection over real TCP sockets.
//!
//! Every case drives a live server from the client side with malformed,
//! truncated, oversized, or mid-flight-abandoned traffic, and asserts
//! the contract from `err.rs`: a typed 4xx/5xx answer or a silent
//! close — never a panic, and never a wedged worker (each hostile
//! exchange is followed by a well-formed request that must still get a
//! 200 from the same server).

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

use rightcrowd_serve::server::{request_stop, reset_stop};
use rightcrowd_serve::ws;
use rightcrowd_serve::{App, Request, Response, Server, ServerConfig};

/// The stop latch is process-global, so tests that start servers must
/// not overlap within this binary.
static SERIAL: Mutex<()> = Mutex::new(());

struct Echo;

impl App for Echo {
    fn handle(&self, req: &Request) -> Response {
        Response::text(200, &format!("{} {}", req.method, req.path()))
    }
    fn upgrade_allowed(&self, path: &str) -> bool {
        path == "/rank"
    }
    fn ws_message(&self, text: &str) -> Vec<String> {
        vec![format!("ok:{text}")]
    }
}

/// Requests a drain on drop, so a panicking assertion inside the scope
/// still stops the server instead of deadlocking the join.
struct StopOnDrop;
impl Drop for StopOnDrop {
    fn drop(&mut self) {
        request_stop();
    }
}

/// Boots a server on an ephemeral port, runs `exercise` against it from
/// the calling thread, then drains and joins.
fn with_server(config: ServerConfig, exercise: impl FnOnce(SocketAddr)) {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    reset_stop();
    let server = Server::bind(ServerConfig { addr: "127.0.0.1:0".into(), ..config }).unwrap();
    let addr = server.local_addr().unwrap();
    std::thread::scope(|scope| {
        let run = scope.spawn(|| server.run(&Echo));
        let stopper = StopOnDrop;
        exercise(addr);
        drop(stopper);
        run.join().expect("the server must not panic under hostile traffic");
    });
    reset_stop();
}

/// Sends raw bytes, half-closes the write side, and returns whatever the
/// server answered (empty on a silent close).
fn exchange(addr: SocketAddr, raw: &[u8]) -> String {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    conn.write_all(raw).unwrap();
    conn.shutdown(Shutdown::Write).unwrap();
    let mut out = Vec::new();
    let _ = conn.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

/// The liveness probe: a well-formed request that must succeed.
fn assert_alive(addr: SocketAddr) {
    let answer = exchange(addr, b"GET /alive HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert!(answer.starts_with("HTTP/1.1 200 OK\r\n"), "worker wedged? got {answer:?}");
}

const GOOD_POST: &[u8] =
    b"POST /rank HTTP/1.1\r\nHost: t\r\nContent-Length: 15\r\nConnection: close\r\n\r\n{\"query\": \"ab\"}";

#[test]
fn split_reads_parse_identically_to_whole_requests() {
    with_server(ServerConfig::default(), |addr| {
        let whole = exchange(addr, GOOD_POST);
        assert!(whole.starts_with("HTTP/1.1 200 OK\r\n"), "{whole}");
        // Replay the same bytes one segment at a time: one byte per
        // write, then a few coarser segmentations.
        for step in [1usize, 3, 7, GOOD_POST.len() / 2] {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            for segment in GOOD_POST.chunks(step) {
                conn.write_all(segment).unwrap();
                conn.flush().unwrap();
            }
            conn.shutdown(Shutdown::Write).unwrap();
            let mut out = Vec::new();
            let _ = conn.read_to_end(&mut out);
            assert_eq!(
                String::from_utf8_lossy(&out),
                whole,
                "step {step} must parse identically"
            );
        }
        assert_alive(addr);
    });
}

#[test]
fn every_truncation_point_closes_cleanly_and_leaves_workers_alive() {
    with_server(ServerConfig::default(), |addr| {
        for cut in 1..GOOD_POST.len() {
            let answer = exchange(addr, &GOOD_POST[..cut]);
            // EOF mid-request is a silent close (nothing to answer);
            // a complete head with a short body is also truncation.
            assert!(
                answer.is_empty(),
                "cut at {cut}: expected silent close, got {answer:?}"
            );
        }
        assert_alive(addr);
    });
}

#[test]
fn malformed_requests_answer_typed_statuses() {
    with_server(ServerConfig::default(), |addr| {
        let cases: &[(&[u8], &str)] = &[
            (b"GARBAGE\r\n\r\n", "HTTP/1.1 400 "),
            (b"get /x HTTP/1.1\r\n\r\n", "HTTP/1.1 400 "),
            (b"GET /x HTTP/2.0\r\n\r\n", "HTTP/1.1 505 "),
            (b"GET /x HTTP/1.1\r\nNoColon\r\n\r\n", "HTTP/1.1 400 "),
            (b"GET /x HTTP/1.1\r\nContent-Length: many\r\n\r\n", "HTTP/1.1 400 "),
            (b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", "HTTP/1.1 400 "),
            (b"POST /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n", "HTTP/1.1 413 "),
        ];
        for (raw, expect) in cases {
            let answer = exchange(addr, raw);
            assert!(
                answer.starts_with(expect),
                "{:?} should answer {expect}, got {answer:?}",
                String::from_utf8_lossy(raw)
            );
            assert!(answer.contains("\"error\""), "{answer:?}");
        }

        // An unbounded header stream is cut off at the budget with 431.
        let mut oversized = b"GET /x HTTP/1.1\r\nX-Pad: ".to_vec();
        oversized.extend(std::iter::repeat_n(b'a', 64 * 1024));
        let answer = exchange(addr, &oversized);
        assert!(answer.starts_with("HTTP/1.1 431 "), "{answer:?}");

        assert_alive(addr);
    });
}

#[test]
fn invalid_websocket_handshakes_answer_400() {
    with_server(ServerConfig::default(), |addr| {
        let cases: &[&[u8]] = &[
            // Missing Sec-WebSocket-Key.
            b"GET /rank HTTP/1.1\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Version: 13\r\n\r\n",
            // Wrong version.
            b"GET /rank HTTP/1.1\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Version: 8\r\nSec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n\r\n",
            // Connection header missing the Upgrade token.
            b"GET /rank HTTP/1.1\r\nUpgrade: websocket\r\nConnection: keep-alive\r\nSec-WebSocket-Version: 13\r\nSec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n\r\n",
            // Key of the wrong length.
            b"GET /rank HTTP/1.1\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Version: 13\r\nSec-WebSocket-Key: short\r\n\r\n",
            // Upgrade attempt on a non-websocket path.
            b"GET /healthz HTTP/1.1\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Version: 13\r\nSec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n\r\n",
        ];
        for raw in cases {
            let answer = exchange(addr, raw);
            assert!(
                answer.starts_with("HTTP/1.1 400 "),
                "{:?} should answer 400, got {answer:?}",
                String::from_utf8_lossy(raw)
            );
        }
        assert_alive(addr);
    });
}

#[test]
fn protocol_violations_inside_a_websocket_close_the_socket_not_the_worker() {
    with_server(ServerConfig::default(), |addr| {
        let handshake = b"GET /rank HTTP/1.1\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Version: 13\r\nSec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n\r\n";

        // An unmasked client frame after a good handshake: the server
        // must fail the connection (RFC 6455 §5.1), ideally with a 1002
        // close frame, and survive.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        conn.write_all(handshake).unwrap();
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            conn.read_exact(&mut byte).unwrap();
            head.push(byte[0]);
        }
        assert!(String::from_utf8_lossy(&head).starts_with("HTTP/1.1 101"), "{head:?}");
        conn.write_all(&[0x81, 0x02, b'h', b'i']).unwrap(); // mask bit clear
        let mut rest = Vec::new();
        let _ = conn.read_to_end(&mut rest);
        // Whatever came back (a 1002 close frame or plain EOF), the
        // socket is closed and the server is still alive.
        drop(conn);
        assert_alive(addr);

        // A frame declaring a payload over budget is refused from its
        // header alone.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        conn.write_all(handshake).unwrap();
        let mut head = Vec::new();
        while !head.ends_with(b"\r\n\r\n") {
            conn.read_exact(&mut byte).unwrap();
            head.push(byte[0]);
        }
        let mut frame = vec![0x81u8, 0x80 | 127];
        frame.extend_from_slice(&(u64::MAX / 2).to_be_bytes());
        frame.extend_from_slice(&[0, 0, 0, 0]);
        conn.write_all(&frame).unwrap();
        let mut rest = Vec::new();
        let _ = conn.read_to_end(&mut rest);
        drop(conn);
        assert_alive(addr);
    });
}

#[test]
fn mid_response_disconnects_do_not_wedge_workers() {
    with_server(ServerConfig::default(), |addr| {
        for _ in 0..8 {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(b"GET /x HTTP/1.1\r\n\r\n").unwrap();
            // Hang up without reading a byte of the response.
            drop(conn);
        }
        assert_alive(addr);
    });
}

#[test]
fn slow_loris_peers_hit_the_read_deadline_and_answer_408() {
    let config = ServerConfig {
        read_timeout: Duration::from_millis(200),
        write_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    };
    with_server(config, |addr| {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // A forever-unfinished request line.
        conn.write_all(b"GET /slow HT").unwrap();
        let mut out = Vec::new();
        let _ = conn.read_to_end(&mut out);
        let answer = String::from_utf8_lossy(&out);
        assert!(answer.starts_with("HTTP/1.1 408 "), "{answer:?}");
        assert_alive(addr);
    });
}

#[test]
fn connections_above_queue_capacity_are_shed_with_503() {
    struct Slow;
    impl App for Slow {
        fn handle(&self, _req: &Request) -> Response {
            std::thread::sleep(Duration::from_millis(800));
            Response::text(200, "slow but served")
        }
    }

    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    reset_stop();
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 1,
        queue_cap: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();
    std::thread::scope(|scope| {
        let run = scope.spawn(|| server.run(&Slow));
        let stopper = StopOnDrop;

        // First connection occupies the only worker...
        let mut busy = TcpStream::connect(addr).unwrap();
        busy.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        busy.write_all(b"GET /a HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(200));

        // ...the second fills the queue...
        let mut queued = TcpStream::connect(addr).unwrap();
        queued.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        queued.write_all(b"GET /b HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(100));

        // ...and the third is shed on the spot.
        let mut shed = TcpStream::connect(addr).unwrap();
        shed.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut out = Vec::new();
        let _ = shed.read_to_end(&mut out);
        let answer = String::from_utf8_lossy(&out);
        assert!(answer.starts_with("HTTP/1.1 503 "), "{answer:?}");
        assert!(answer.contains("Retry-After: 1"), "{answer:?}");

        // The occupied and queued connections are still served in full.
        let mut out = Vec::new();
        let _ = busy.read_to_end(&mut out);
        assert!(String::from_utf8_lossy(&out).starts_with("HTTP/1.1 200 "), "{out:?}");
        let mut out = Vec::new();
        let _ = queued.read_to_end(&mut out);
        assert!(String::from_utf8_lossy(&out).starts_with("HTTP/1.1 200 "), "{out:?}");

        assert!(server.stats().shed.load(std::sync::atomic::Ordering::Relaxed) >= 1);
        drop(stopper);
        run.join().unwrap();
    });
    reset_stop();
}

#[test]
fn the_client_side_codec_agrees_with_the_server() {
    // Sanity-check the helper the soak client reuses: a masked frame the
    // server accepts must round-trip through its own decoder.
    let mut wire = Vec::new();
    ws::write_client_text(&mut wire, "probe", [1, 2, 3, 4]).unwrap();
    let mut carry = Vec::new();
    let frame = ws::read_frame(&mut wire.as_slice(), &mut carry, 1 << 20).unwrap();
    assert_eq!(frame, ws::Frame::Text("probe".into()));
}
