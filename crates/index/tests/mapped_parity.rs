//! Owned ↔ mapped backing parity: an index opened through zero-copy shard
//! views must be observably identical — bit for bit — to the flat owned
//! index it was exported from, on every accessor and every scoring path,
//! pinned against the definitional reference oracle.

use proptest::prelude::*;
use rightcrowd_index::mapped::views_from_index;
use rightcrowd_index::{reference, DocIdx, IndexBuilder, InvertedIndex, Query};
use rightcrowd_types::EntityId;

/// One generated document: its term list and entity attachments.
type Doc = (Vec<String>, Vec<(EntityId, f64)>);

fn doc_strategy() -> impl Strategy<Value = Doc> {
    let words = prop::collection::vec(
        prop::sample::select(vec!["swim", "pool", "code", "php", "song", "team", "city"]),
        0..12,
    )
    .prop_map(|ws| ws.into_iter().map(str::to_owned).collect::<Vec<String>>());
    let entities = prop::collection::vec((0u32..6, 0.0f64..1.0), 0..5)
        .prop_map(|es| es.into_iter().map(|(e, d)| (EntityId::new(e), d)).collect());
    (words, entities)
}

fn build(docs: &[Doc]) -> InvertedIndex {
    let mut b = IndexBuilder::new();
    for (terms, entities) in docs {
        b.add_document(terms, entities);
    }
    b.build()
}

fn doc_lens(idx: &InvertedIndex) -> Vec<u32> {
    (0..idx.doc_count() as u32).map(|d| idx.doc_len(DocIdx(d))).collect()
}

/// Reopens `idx` through owned-backed mapped shard views — the in-memory
/// equivalent of an `RCSHRD02` mmap open.
fn remap(idx: &InvertedIndex, shards: usize) -> InvertedIndex {
    InvertedIndex::from_mapped(views_from_index(idx, shards), doc_lens(idx)).unwrap()
}

fn query() -> Query {
    Query {
        terms: vec!["swim".into(), "php".into(), "city".into(), "unseen".into()],
        entities: vec![EntityId::new(0), EntityId::new(3), EntityId::new(99)],
    }
}

proptest! {
    #[test]
    fn scoring_paths_are_bit_identical(
        docs in prop::collection::vec(doc_strategy(), 1..20),
        shards in 1usize..5,
    ) {
        let owned = build(&docs);
        let mapped = remap(&owned, shards);
        prop_assert!(mapped.is_mapped());
        let q = query();
        for &alpha in &[0.0, 0.3, 0.6, 1.0] {
            let full = owned.score_all(&q, alpha);
            prop_assert_eq!(&full, &mapped.score_all(&q, alpha), "score_all alpha {}", alpha);
            prop_assert_eq!(
                &full,
                &reference::score_all(&mapped, &q, alpha),
                "reference oracle alpha {}",
                alpha
            );
            for &k in &[1usize, 3, 100] {
                prop_assert_eq!(
                    owned.score_top_k(&q, alpha, k, |_| true),
                    mapped.score_top_k(&q, alpha, k, |_| true),
                    "score_top_k alpha {} k {}",
                    alpha,
                    k
                );
            }
        }
        prop_assert_eq!(owned.score_components(&q), mapped.score_components(&q));
        let params = rightcrowd_index::Bm25Params::default();
        prop_assert_eq!(
            owned.score_all_bm25(&q, 0.6, params),
            mapped.score_all_bm25(&q, 0.6, params)
        );
    }

    #[test]
    fn accessors_and_export_agree(
        docs in prop::collection::vec(doc_strategy(), 1..15),
        shards in 1usize..4,
    ) {
        let owned = build(&docs);
        let mapped = remap(&owned, shards);

        prop_assert_eq!(owned.term_count(), mapped.term_count());
        prop_assert_eq!(owned.entity_count(), mapped.entity_count());
        for term in ["swim", "pool", "code", "php", "song", "team", "city", "unseen"] {
            prop_assert_eq!(owned.term_df(term), mapped.term_df(term), "df {}", term);
            prop_assert_eq!(owned.irf(term), mapped.irf(term), "irf {}", term);
            let a: Vec<_> = owned.term_postings(term).collect();
            let b: Vec<_> = mapped.term_postings(term).collect();
            prop_assert_eq!(a, b, "postings {}", term);
            for d in 0..owned.doc_count() as u32 {
                prop_assert_eq!(owned.tf(term, DocIdx(d)), mapped.tf(term, DocIdx(d)));
            }
        }
        for e in (0..7u32).map(EntityId::new) {
            prop_assert_eq!(owned.entity_df(e), mapped.entity_df(e));
            prop_assert_eq!(owned.eirf(e), mapped.eirf(e));
            let a: Vec<_> = owned.entity_postings(e).collect();
            let b: Vec<_> = mapped.entity_postings(e).collect();
            prop_assert_eq!(a, b);
            for d in 0..owned.doc_count() as u32 {
                prop_assert_eq!(owned.ef(e, DocIdx(d)), mapped.ef(e, DocIdx(d)));
                prop_assert_eq!(owned.entity_weight(e, DocIdx(d)), mapped.entity_weight(e, DocIdx(d)));
            }
        }

        // The canonical export round-trips and drives backing-independent
        // equality in both directions.
        prop_assert_eq!(owned.to_parts(), mapped.to_parts());
        prop_assert_eq!(&owned, &mapped);
        prop_assert_eq!(&mapped, &owned);
        let rebuilt = InvertedIndex::from_parts(mapped.to_parts()).unwrap();
        prop_assert!(!rebuilt.is_mapped());
        prop_assert_eq!(&rebuilt, &owned);
    }
}

#[test]
fn mapped_index_survives_resharding() {
    let mut b = IndexBuilder::new();
    let terms = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    b.add_document(&terms(&["swim", "pool", "swim"]), &[(EntityId::new(3), 0.7)]);
    b.add_document(&terms(&["cook", "pasta"]), &[(EntityId::new(1), 0.2)]);
    b.add_document(&terms(&["swim", "cook"]), &[(EntityId::new(3), 0.4)]);
    let owned = b.build();
    let mapped = remap(&owned, 2);
    // to_shards routes through to_parts, so a mapped index re-shards into
    // the same shards the owned one produces.
    let a = owned.to_shards(3);
    let b = mapped.to_shards(3);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.term_range, y.term_range);
        assert_eq!(x.terms, y.terms);
        assert_eq!(x.entities, y.entities);
    }
}
