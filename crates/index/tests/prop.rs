//! Property tests for the dual inverted index.

use proptest::prelude::*;
use rightcrowd_index::{DocIdx, IndexBuilder, Query};
use rightcrowd_types::EntityId;

/// A small random document: a bag of words over a closed vocabulary plus
/// entity annotations.
fn doc_strategy() -> impl Strategy<Value = (Vec<String>, Vec<(EntityId, f64)>)> {
    let words = prop::collection::vec(
        prop::sample::select(vec!["swim", "pool", "code", "php", "song", "team", "city"]),
        0..12,
    )
    .prop_map(|ws| ws.into_iter().map(str::to_owned).collect::<Vec<String>>());
    let entities = prop::collection::vec((0u32..6, 0.0f64..1.0), 0..5)
        .prop_map(|es| es.into_iter().map(|(e, d)| (EntityId::new(e), d)).collect());
    (words, entities)
}

proptest! {
    #[test]
    fn df_equals_documents_containing_term(docs in prop::collection::vec(doc_strategy(), 1..20)) {
        let mut builder = IndexBuilder::new();
        for (terms, entities) in &docs {
            builder.add_document(terms, entities);
        }
        let index = builder.build();
        prop_assert_eq!(index.doc_count(), docs.len());
        for term in ["swim", "code", "song"] {
            let expected = docs
                .iter()
                .filter(|(terms, _)| terms.iter().any(|t| t == term))
                .count();
            prop_assert_eq!(index.term_df(term), expected, "df of {}", term);
        }
    }

    #[test]
    fn tf_matches_occurrences(docs in prop::collection::vec(doc_strategy(), 1..15)) {
        let mut builder = IndexBuilder::new();
        for (terms, entities) in &docs {
            builder.add_document(terms, entities);
        }
        let index = builder.build();
        for (i, (terms, entities)) in docs.iter().enumerate() {
            let doc = DocIdx(i as u32);
            for term in ["pool", "php"] {
                let expected = terms.iter().filter(|t| *t == term).count() as u32;
                prop_assert_eq!(index.tf(term, doc), expected);
            }
            for e in 0..6u32 {
                let entity = EntityId::new(e);
                let expected = entities.iter().filter(|(x, _)| *x == entity).count() as u32;
                prop_assert_eq!(index.ef(entity, doc), expected);
            }
        }
    }

    #[test]
    fn scores_are_positive_finite_and_sorted(
        docs in prop::collection::vec(doc_strategy(), 1..20),
        alpha in 0.0f64..1.0,
    ) {
        let mut builder = IndexBuilder::new();
        for (terms, entities) in &docs {
            builder.add_document(terms, entities);
        }
        let index = builder.build();
        let query = Query {
            terms: vec!["swim".into(), "code".into()],
            entities: vec![EntityId::new(0), EntityId::new(3)],
        };
        let hits = index.score_all(&query, alpha);
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for h in &hits {
            prop_assert!(h.score > 0.0 && h.score.is_finite());
            prop_assert!(h.doc.index() < docs.len());
        }
    }

    #[test]
    fn matched_set_is_union_of_term_and_entity_matches(
        docs in prop::collection::vec(doc_strategy(), 1..20),
    ) {
        let mut builder = IndexBuilder::new();
        for (terms, entities) in &docs {
            builder.add_document(terms, entities);
        }
        let index = builder.build();
        let query = Query {
            terms: vec!["team".into()],
            entities: vec![EntityId::new(1)],
        };
        let hits = index.score_all(&query, 0.5);
        let expected: Vec<usize> = docs
            .iter()
            .enumerate()
            .filter(|(_, (terms, entities))| {
                terms.iter().any(|t| t == "team")
                    || entities.iter().any(|(e, _)| *e == EntityId::new(1))
            })
            .map(|(i, _)| i)
            .collect();
        let mut got: Vec<usize> = hits.iter().map(|h| h.doc.index()).collect();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn entity_weight_within_eq2_bounds(docs in prop::collection::vec(doc_strategy(), 1..15)) {
        let mut builder = IndexBuilder::new();
        for (terms, entities) in &docs {
            builder.add_document(terms, entities);
        }
        let index = builder.build();
        for (i, (_, entities)) in docs.iter().enumerate() {
            for (entity, _) in entities {
                let we = index.entity_weight(*entity, DocIdx(i as u32));
                // Eq. 2: we = 1 + dScore with dScore ∈ [0, 1].
                prop_assert!((1.0..=2.0).contains(&we), "we = {we}");
            }
        }
    }
}
