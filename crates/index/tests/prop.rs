//! Property tests for the dual inverted index.

use proptest::prelude::*;
use rightcrowd_index::{DocIdx, IndexBuilder, Query};
use rightcrowd_types::EntityId;

/// A small random document: a bag of words over a closed vocabulary plus
/// entity annotations.
fn doc_strategy() -> impl Strategy<Value = (Vec<String>, Vec<(EntityId, f64)>)> {
    let words = prop::collection::vec(
        prop::sample::select(vec!["swim", "pool", "code", "php", "song", "team", "city"]),
        0..12,
    )
    .prop_map(|ws| ws.into_iter().map(str::to_owned).collect::<Vec<String>>());
    let entities = prop::collection::vec((0u32..6, 0.0f64..1.0), 0..5)
        .prop_map(|es| es.into_iter().map(|(e, d)| (EntityId::new(e), d)).collect());
    (words, entities)
}

proptest! {
    #[test]
    fn df_equals_documents_containing_term(docs in prop::collection::vec(doc_strategy(), 1..20)) {
        let mut builder = IndexBuilder::new();
        for (terms, entities) in &docs {
            builder.add_document(terms, entities);
        }
        let index = builder.build();
        prop_assert_eq!(index.doc_count(), docs.len());
        for term in ["swim", "code", "song"] {
            let expected = docs
                .iter()
                .filter(|(terms, _)| terms.iter().any(|t| t == term))
                .count();
            prop_assert_eq!(index.term_df(term), expected, "df of {}", term);
        }
    }

    #[test]
    fn tf_matches_occurrences(docs in prop::collection::vec(doc_strategy(), 1..15)) {
        let mut builder = IndexBuilder::new();
        for (terms, entities) in &docs {
            builder.add_document(terms, entities);
        }
        let index = builder.build();
        for (i, (terms, entities)) in docs.iter().enumerate() {
            let doc = DocIdx(i as u32);
            for term in ["pool", "php"] {
                let expected = terms.iter().filter(|t| *t == term).count() as u32;
                prop_assert_eq!(index.tf(term, doc), expected);
            }
            for e in 0..6u32 {
                let entity = EntityId::new(e);
                let expected = entities.iter().filter(|(x, _)| *x == entity).count() as u32;
                prop_assert_eq!(index.ef(entity, doc), expected);
            }
        }
    }

    #[test]
    fn scores_are_positive_finite_and_sorted(
        docs in prop::collection::vec(doc_strategy(), 1..20),
        alpha in 0.0f64..1.0,
    ) {
        let mut builder = IndexBuilder::new();
        for (terms, entities) in &docs {
            builder.add_document(terms, entities);
        }
        let index = builder.build();
        let query = Query {
            terms: vec!["swim".into(), "code".into()],
            entities: vec![EntityId::new(0), EntityId::new(3)],
        };
        let hits = index.score_all(&query, alpha);
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for h in &hits {
            prop_assert!(h.score > 0.0 && h.score.is_finite());
            prop_assert!(h.doc.index() < docs.len());
        }
    }

    #[test]
    fn matched_set_is_union_of_term_and_entity_matches(
        docs in prop::collection::vec(doc_strategy(), 1..20),
    ) {
        let mut builder = IndexBuilder::new();
        for (terms, entities) in &docs {
            builder.add_document(terms, entities);
        }
        let index = builder.build();
        let query = Query {
            terms: vec!["team".into()],
            entities: vec![EntityId::new(1)],
        };
        let hits = index.score_all(&query, 0.5);
        let expected: Vec<usize> = docs
            .iter()
            .enumerate()
            .filter(|(_, (terms, entities))| {
                terms.iter().any(|t| t == "team")
                    || entities.iter().any(|(e, _)| *e == EntityId::new(1))
            })
            .map(|(i, _)| i)
            .collect();
        let mut got: Vec<usize> = hits.iter().map(|h| h.doc.index()).collect();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// ISSUE 4 satellite: the block-compressed top-k path is bit-identical
    /// to the definitional reference scorer — same documents, same order,
    /// same tie-breaks, bit-equal scores — across random corpora, αs, ks.
    #[test]
    fn top_k_is_bit_identical_to_the_reference(
        docs in prop::collection::vec(doc_strategy(), 1..25),
        alpha in 0.0f64..1.0,
        k in 1usize..12,
    ) {
        let mut builder = IndexBuilder::new();
        for (terms, entities) in &docs {
            builder.add_document(terms, entities);
        }
        let index = builder.build();
        let query = Query {
            terms: vec!["swim".into(), "code".into(), "city".into()],
            entities: vec![EntityId::new(0), EntityId::new(3)],
        };
        let oracle = rightcrowd_index::reference::score_top_k(&index, &query, alpha, k, |_| true);
        let fast = index.score_top_k(&query, alpha, k, |_| true);
        prop_assert_eq!(oracle.len(), fast.len());
        for (a, b) in oracle.iter().zip(&fast) {
            prop_assert_eq!(a.doc, b.doc);
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits(), "{} vs {}", a.score, b.score);
        }
    }

    /// ISSUE 4 satellite: the α-free explain factorisation recombines to
    /// the direct score within the 1e-12 contract, for every matched doc.
    #[test]
    fn explain_sums_recombine_to_score_all(
        docs in prop::collection::vec(doc_strategy(), 1..25),
        alpha in 0.0f64..1.0,
    ) {
        let mut builder = IndexBuilder::new();
        for (terms, entities) in &docs {
            builder.add_document(terms, entities);
        }
        let index = builder.build();
        let query = Query {
            terms: vec!["pool".into(), "team".into()],
            entities: vec![EntityId::new(1), EntityId::new(5)],
        };
        let direct = index.score_all(&query, alpha);
        let factored = rightcrowd_index::recombine(&index.score_components(&query), alpha);
        prop_assert_eq!(direct.len(), factored.len());
        for (a, b) in direct.iter().zip(&factored) {
            prop_assert_eq!(a.doc, b.doc);
            prop_assert!((a.score - b.score).abs() <= 1e-12 * a.score.max(1.0));
        }
    }

    #[test]
    fn entity_weight_within_eq2_bounds(docs in prop::collection::vec(doc_strategy(), 1..15)) {
        let mut builder = IndexBuilder::new();
        for (terms, entities) in &docs {
            builder.add_document(terms, entities);
        }
        let index = builder.build();
        for (i, (_, entities)) in docs.iter().enumerate() {
            for (entity, _) in entities {
                let we = index.entity_weight(*entity, DocIdx(i as u32));
                // Eq. 2: we = 1 + dScore with dScore ∈ [0, 1].
                prop_assert!((1.0..=2.0).contains(&we), "we = {we}");
            }
        }
    }
}

/// Hot lists spanning several 128-doc blocks (proptest corpora above stay
/// within one block): the Block-Max top-k path must still return the
/// reference ranking bit for bit, and its counters must account for every
/// block as either decoded or skipped whole.
#[test]
fn multi_block_top_k_is_bit_identical_and_counters_balance() {
    let vocab = ["swim", "pool", "code", "php", "song", "team", "city"];
    let mut builder = IndexBuilder::new();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 16
    };
    for _ in 0..400 {
        let n_terms = (next() % 7) as usize + 1;
        let terms: Vec<String> =
            (0..n_terms).map(|_| vocab[next() as usize % vocab.len()].to_owned()).collect();
        let mut entities = Vec::new();
        if next() % 3 != 0 {
            entities.push((EntityId::new((next() % 6) as u32), (next() % 1000) as f64 / 1000.0));
        }
        builder.add_document(&terms, &entities);
    }
    let index = builder.build();
    let query = Query {
        terms: vec!["swim".into(), "code".into(), "city".into()],
        entities: vec![EntityId::new(0), EntityId::new(3)],
    };
    for alpha in [0.0, 0.35, 0.8, 1.0] {
        for k in [1usize, 5, 40] {
            let oracle =
                rightcrowd_index::reference::score_top_k(&index, &query, alpha, k, |_| true);
            let _ = rightcrowd_index::take_traversal_stats();
            let fast = index.score_top_k(&query, alpha, k, |_| true);
            let stats = rightcrowd_index::take_traversal_stats();
            assert_eq!(oracle.len(), fast.len(), "alpha {alpha}, k {k}");
            for (a, b) in oracle.iter().zip(&fast) {
                assert_eq!(a.doc, b.doc, "alpha {alpha}, k {k}");
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "alpha {alpha}, k {k}");
            }
            if rightcrowd_obs::PROBES_ENABLED {
                assert_eq!(
                    stats.blocks_decoded + stats.blocks_skipped,
                    stats.blocks_total,
                    "alpha {alpha}, k {k}: every block is decoded or skipped whole"
                );
                assert!(stats.postings_skipped <= stats.pruned, "alpha {alpha}, k {k}");
                #[cfg(not(feature = "blocks-off"))]
                assert!(stats.blocks_total > 0, "400-doc lists must span blocks");
            }
        }
    }
}
