//! The zero-copy (mapped) index store: per-shard views whose arrays are
//! [`Seg`]s borrowed straight from `mmap`'d `RCSHRD02` files.
//!
//! A [`MappedShardView`] mirrors one on-disk shard: the term side keeps
//! its vocabulary as concatenated UTF-8 bytes addressed through a byte
//! offsets table (no `String` materialisation, no interning `HashMap`),
//! and both sides keep their postings exclusively in block-compressed
//! [`PackedPostings`] form — the flat CSR mirror of the owned store does
//! not exist here, so a warm open copies nothing.
//!
//! Lookups exploit the interning order pinned by the raw-parts export
//! (terms lexicographic, entity ids ascending): resolving a term is a
//! binary search over the global dense-id space, reading vocabulary
//! bytes in place. The shard for a given id is found by partition point
//! over the contiguous shard ranges.
//!
//! # Validation contract
//!
//! [`MappedStore::new`] runs the *memory-safety* checks only: array
//! lengths, offset monotonicity and bounds, block shapes
//! ([`crate::block`]'s `validate_shape`), doc ids inside the collection,
//! vocabulary order/UTF-8 and finite weights — everything needed so no
//! later access can panic, index out of bounds, or feed NaN into a score
//! comparison, all in O(vocab + blocks) without touching posting
//! payloads. Deep content verification (checksums, bit-exact block
//! maxima) is the snapshot store's job: it runs once on the first open
//! of a shard file and is then attested by the validity sidecar.

use crate::backing::Seg;
use crate::block::{validate_shape, PackedPostings, BLOCK_SIZE};
use crate::index::InvertedIndex;

/// Term side of one mapped shard (dense ids `[term_range.0, term_range.1)`).
#[derive(Debug, Clone, Default)]
pub struct MappedTermSide {
    /// Byte offsets into `vocab_bytes`: `n + 1` entries, ascending.
    pub vocab_offsets: Seg<u64>,
    /// Concatenated UTF-8 vocabulary, lexicographically ascending.
    pub vocab_bytes: Seg<u8>,
    /// Precomputed `irf(t)` per local id.
    pub irf: Seg<f64>,
    /// Max `tf` per list (MaxScore bound ingredient).
    pub max_tf: Seg<u32>,
    /// Block-compressed postings, list ids local to the shard.
    pub packed: PackedPostings,
}

/// Entity side of one mapped shard.
#[derive(Debug, Clone, Default)]
pub struct MappedEntitySide {
    /// Raw entity ids per local slot, strictly ascending.
    pub vocab: Seg<u32>,
    /// Precomputed `eirf(e)` per local slot.
    pub eirf: Seg<f64>,
    /// Max `ef · we` per list (MaxScore bound ingredient).
    pub max_contrib: Seg<f64>,
    /// Block-compressed postings, list ids local to the shard.
    pub packed: PackedPostings,
}

/// One shard of a mapped index: both posting families for a contiguous
/// dense-id slice of the vocabulary, arrays borrowed from the mapping.
#[derive(Debug, Clone, Default)]
pub struct MappedShardView {
    /// Dense term-id range `[lo, hi)` this shard carries.
    pub term_range: (u32, u32),
    /// Dense entity-slot range `[lo, hi)` this shard carries.
    pub entity_range: (u32, u32),
    /// The term side.
    pub terms: MappedTermSide,
    /// The entity side.
    pub entities: MappedEntitySide,
}

/// The shard sequence plus the global id-space sizes, validated once at
/// construction so every accessor below is panic-free.
#[derive(Debug, Clone)]
pub(crate) struct MappedStore {
    pub(crate) shards: Vec<MappedShardView>,
    pub(crate) term_count: u32,
    pub(crate) entity_count: u32,
}

fn check(ok: bool, msg: impl FnOnce() -> String) -> Result<(), String> {
    if ok {
        Ok(())
    } else {
        Err(msg())
    }
}

fn check_finite(side: &str, name: &str, values: &[f64]) -> Result<(), String> {
    check(values.iter().all(|v| v.is_finite()), || {
        format!("mapped {side}: non-finite value in {name}")
    })
}

/// Validates one side's per-list metadata arrays + packed block shape.
fn validate_side(
    side: &str,
    shard: usize,
    n: usize,
    packed: &PackedPostings,
    with_weights: bool,
    doc_count: usize,
) -> Result<(), String> {
    validate_shape(packed, n, with_weights)
        .map_err(|e| format!("mapped {side}: shard {shard}: {e}"))?;
    check(packed.last_doc.iter().all(|&d| (d as usize) < doc_count), || {
        format!("mapped {side}: shard {shard}: block last doc beyond doc count {doc_count}")
    })?;
    check_finite(side, "max_score", &packed.max_score)
        .map_err(|e| format!("{e} (shard {shard})"))
}

impl MappedStore {
    /// Builds and validates a mapped store over `shards`, which must tile
    /// both id spaces contiguously from 0 (the same contract as
    /// [`InvertedIndex::from_shards`]).
    pub(crate) fn new(shards: Vec<MappedShardView>, doc_count: usize) -> Result<Self, String> {
        check(!shards.is_empty(), || "mapped: empty shard sequence".into())?;
        let (mut t_next, mut e_next) = (0u32, 0u32);
        for (i, s) in shards.iter().enumerate() {
            for (side, (lo, hi), next) in [
                ("terms", s.term_range, &mut t_next),
                ("entities", s.entity_range, &mut e_next),
            ] {
                check(hi >= lo, || {
                    format!("mapped {side}: shard {i} range [{lo}, {hi}) is inverted")
                })?;
                check(lo == *next, || {
                    format!("mapped {side}: shard {i} range [{lo}, {hi}) does not tile (expected lo {next})")
                })?;
                *next = hi;
            }

            let t = &s.terms;
            let n_t = (s.term_range.1 - s.term_range.0) as usize;
            check(t.vocab_offsets.len() == n_t + 1, || {
                format!("mapped terms: shard {i} vocab_offsets length != range + 1")
            })?;
            check(t.vocab_offsets.first() == Some(&0), || {
                format!("mapped terms: shard {i} vocab_offsets[0] != 0")
            })?;
            check(t.vocab_offsets.windows(2).all(|w| w[0] <= w[1]), || {
                format!("mapped terms: shard {i} vocab_offsets not ascending")
            })?;
            check(t.vocab_offsets.last().copied() == Some(t.vocab_bytes.len() as u64), || {
                format!("mapped terms: shard {i} vocab_offsets end != vocab byte length")
            })?;
            check(t.irf.len() == n_t && t.max_tf.len() == n_t, || {
                format!("mapped terms: shard {i} irf/max_tf length != range")
            })?;
            check_finite("terms", "irf", &t.irf).map_err(|e| format!("{e} (shard {i})"))?;
            validate_side("terms", i, n_t, &t.packed, false, doc_count)?;

            let e = &s.entities;
            let n_e = (s.entity_range.1 - s.entity_range.0) as usize;
            check(e.vocab.len() == n_e, || {
                format!("mapped entities: shard {i} vocab length != range")
            })?;
            check(e.eirf.len() == n_e && e.max_contrib.len() == n_e, || {
                format!("mapped entities: shard {i} eirf/max_contrib length != range")
            })?;
            check_finite("entities", "eirf", &e.eirf).map_err(|e| format!("{e} (shard {i})"))?;
            check_finite("entities", "max_contrib", &e.max_contrib)
                .map_err(|e| format!("{e} (shard {i})"))?;
            validate_side("entities", i, n_e, &e.packed, true, doc_count)?;
        }

        let store = MappedStore { shards, term_count: t_next, entity_count: e_next };

        // Vocabulary order underpins the binary-search lookups; UTF-8 is
        // checked once here so `term_str` never has to fail later.
        for g in 0..store.term_count {
            let bytes = store.term_bytes(g);
            check(std::str::from_utf8(bytes).is_ok(), || {
                format!("mapped terms: vocabulary entry {g} is not UTF-8")
            })?;
            check(g == 0 || store.term_bytes(g - 1) < bytes, || {
                format!("mapped terms: vocabulary not strictly ascending at {g}")
            })?;
        }
        for g in 1..store.entity_count {
            check(store.entity_at(g - 1) < store.entity_at(g), || {
                format!("mapped entities: vocabulary not strictly ascending at {g}")
            })?;
        }
        Ok(store)
    }

    /// Size of the global dense term-id space.
    #[inline]
    pub(crate) fn term_count(&self) -> usize {
        self.term_count as usize
    }

    /// Size of the global dense entity-slot space.
    #[inline]
    pub(crate) fn entity_count(&self) -> usize {
        self.entity_count as usize
    }

    /// The shard holding global term id `g` (which must be `< term_count`).
    #[inline]
    fn term_shard(&self, g: u32) -> &MappedShardView {
        let i = self.shards.partition_point(|s| s.term_range.1 <= g);
        &self.shards[i]
    }

    /// The shard holding global entity slot `g`.
    #[inline]
    fn entity_shard(&self, g: u32) -> &MappedShardView {
        let i = self.shards.partition_point(|s| s.entity_range.1 <= g);
        &self.shards[i]
    }

    /// `(term side, local list id)` of global term id `g`.
    #[inline]
    pub(crate) fn term_side(&self, g: u32) -> (&MappedTermSide, u32) {
        let s = self.term_shard(g);
        (&s.terms, g - s.term_range.0)
    }

    /// `(entity side, local list id)` of global entity slot `g`.
    #[inline]
    pub(crate) fn entity_side(&self, g: u32) -> (&MappedEntitySide, u32) {
        let s = self.entity_shard(g);
        (&s.entities, g - s.entity_range.0)
    }

    /// Vocabulary bytes of global term id `g`, straight from the mapping.
    #[inline]
    fn term_bytes(&self, g: u32) -> &[u8] {
        let (t, local) = self.term_side(g);
        let (a, b) =
            (t.vocab_offsets[local as usize] as usize, t.vocab_offsets[local as usize + 1] as usize);
        &t.vocab_bytes[a..b]
    }

    /// Vocabulary entry `g` as a `&str` (UTF-8 was validated at open).
    #[inline]
    pub(crate) fn term_str(&self, g: u32) -> &str {
        std::str::from_utf8(self.term_bytes(g)).unwrap_or("")
    }

    /// Raw entity id interned at global slot `g`.
    #[inline]
    pub(crate) fn entity_at(&self, g: u32) -> u32 {
        let (e, local) = self.entity_side(g);
        e.vocab[local as usize]
    }

    /// Global dense id of `term`, by binary search over the mapped
    /// vocabulary (interning order is lexicographic — pinned by the
    /// raw-parts export tests).
    pub(crate) fn find_term(&self, term: &str) -> Option<u32> {
        let (mut lo, mut hi) = (0u32, self.term_count);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.term_bytes(mid) < term.as_bytes() {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo < self.term_count && self.term_bytes(lo) == term.as_bytes()).then_some(lo)
    }

    /// Global dense slot of raw entity id `e`, by binary search (slots
    /// are interned in ascending id order).
    pub(crate) fn find_entity(&self, e: u32) -> Option<u32> {
        let (mut lo, mut hi) = (0u32, self.entity_count);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.entity_at(mid) < e {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo < self.entity_count && self.entity_at(lo) == e).then_some(lo)
    }
}

/// Posting count of one packed list — the mapped store's `df` (the flat
/// store reads its CSR offsets instead).
#[inline]
pub(crate) fn list_len(packed: &PackedPostings, local: u32) -> usize {
    let (bs, be) = packed.list_blocks(local);
    packed.counts[bs..be].iter().map(|&c| c as usize).sum()
}

/// Point lookup of `doc` in a packed term list: binary-search the block
/// skip metadata, decode the one candidate block, binary-search inside.
pub(crate) fn lookup_freq(packed: &PackedPostings, local: u32, doc: u32) -> Option<u32> {
    let (bs, be) = packed.list_blocks(local);
    let b = bs + packed.last_doc[bs..be].partition_point(|&l| l < doc);
    if b >= be {
        return None;
    }
    let prev = if b == bs { -1 } else { i64::from(packed.last_doc[b - 1]) };
    let (mut docs, mut freqs) = ([0u32; BLOCK_SIZE], [0u32; BLOCK_SIZE]);
    let (n, _) = packed.decode_block(b, prev, &mut docs, &mut freqs);
    docs[..n].binary_search(&doc).ok().map(|i| freqs[i])
}

/// [`lookup_freq`] for an entity list, returning `(ef, we)`.
pub(crate) fn lookup_entity_freq(
    packed: &PackedPostings,
    local: u32,
    doc: u32,
) -> Option<(u32, f64)> {
    let (bs, be) = packed.list_blocks(local);
    let b = bs + packed.last_doc[bs..be].partition_point(|&l| l < doc);
    if b >= be {
        return None;
    }
    let prev = if b == bs { -1 } else { i64::from(packed.last_doc[b - 1]) };
    let (mut docs, mut freqs, mut wes) =
        ([0u32; BLOCK_SIZE], [0u32; BLOCK_SIZE], [0.0f64; BLOCK_SIZE]);
    let (n, _) = packed.decode_entity_block(b, prev, &mut docs, &mut freqs, &mut wes);
    docs[..n].binary_search(&doc).ok().map(|i| (freqs[i], wes[i]))
}

/// Converts an owned index into owned-backed mapped shard views — the
/// in-memory reference for what the snapshot store encodes into an
/// `RCSHRD02` file, and the workhorse of the owned↔mapped parity suites.
pub fn views_from_index(index: &InvertedIndex, shards: usize) -> Vec<MappedShardView> {
    index
        .to_shards(shards)
        .into_iter()
        .map(|sh| {
            let packed_t = crate::block::pack_term_parts(&sh.terms);
            let packed_e = crate::block::pack_entity_parts(&sh.entities);
            let mut vocab_bytes = Vec::new();
            let mut vocab_offsets = vec![0u64];
            for term in &sh.terms.vocab {
                vocab_bytes.extend_from_slice(term.as_bytes());
                vocab_offsets.push(vocab_bytes.len() as u64);
            }
            MappedShardView {
                term_range: sh.term_range,
                entity_range: sh.entity_range,
                terms: MappedTermSide {
                    vocab_offsets: vocab_offsets.into(),
                    vocab_bytes: vocab_bytes.into(),
                    irf: sh.terms.irf.into(),
                    max_tf: sh.terms.max_tf.into(),
                    packed: packed_t,
                },
                entities: MappedEntitySide {
                    vocab: sh.entities.vocab.iter().map(|e| e.0).collect::<Vec<_>>().into(),
                    eirf: sh.entities.eirf.into(),
                    max_contrib: sh.entities.max_contrib.into(),
                    packed: packed_e,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use rightcrowd_types::EntityId;

    fn sample() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        let terms = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        b.add_document(&terms(&["swim", "pool", "swim", "dive"]), &[(EntityId::new(3), 0.7)]);
        b.add_document(&terms(&["cook", "pasta", "boil"]), &[(EntityId::new(1), 0.2)]);
        b.add_document(&terms(&["swim", "cook", "train"]), &[(EntityId::new(3), 0.4)]);
        b.build()
    }

    #[test]
    fn store_resolves_every_vocab_entry() {
        let idx = sample();
        let parts = idx.to_parts();
        let store = MappedStore::new(views_from_index(&idx, 3), idx.doc_count()).unwrap();
        assert_eq!(store.term_count as usize, parts.terms.vocab.len());
        for (g, term) in parts.terms.vocab.iter().enumerate() {
            assert_eq!(store.find_term(term), Some(g as u32), "term {term}");
            assert_eq!(store.term_str(g as u32), term);
        }
        assert_eq!(store.find_term("zzz-unseen"), None);
        assert_eq!(store.find_term(""), None);
        for (g, e) in parts.entities.vocab.iter().enumerate() {
            assert_eq!(store.find_entity(e.0), Some(g as u32));
        }
        assert_eq!(store.find_entity(999), None);
    }

    #[test]
    fn rejects_untiled_or_misshapen_views() {
        let idx = sample();
        let n = idx.doc_count();

        let mut views = views_from_index(&idx, 2);
        views[1].term_range.0 += 1;
        assert!(MappedStore::new(views, n).unwrap_err().contains("tile"));

        let mut views = views_from_index(&idx, 2);
        views[0].terms.irf.to_mut().pop();
        assert!(MappedStore::new(views, n).unwrap_err().contains("irf"));

        let mut views = views_from_index(&idx, 2);
        views[0].terms.irf[0] = f64::NAN;
        assert!(MappedStore::new(views, n).unwrap_err().contains("non-finite"));

        let mut views = views_from_index(&idx, 1);
        let end = views[0].terms.vocab_offsets.len() - 1;
        views[0].terms.vocab_offsets[end] += 1;
        assert!(MappedStore::new(views, n).unwrap_err().contains("vocab"));

        // A block pointing past the collection.
        let mut views = views_from_index(&idx, 1);
        views[0].entities.packed.last_doc[0] = 1000;
        assert!(MappedStore::new(views, n).unwrap_err().contains("doc count"));

        assert!(MappedStore::new(Vec::new(), n).unwrap_err().contains("empty"));
    }

    #[test]
    fn point_lookups_match_flat_lists() {
        let idx = sample();
        let store = MappedStore::new(views_from_index(&idx, 2), idx.doc_count()).unwrap();
        let parts = idx.to_parts();
        for (g, term) in parts.terms.vocab.iter().enumerate() {
            let (a, b) = (parts.terms.offsets[g] as usize, parts.terms.offsets[g + 1] as usize);
            let (side, local) = store.term_side(g as u32);
            assert_eq!(list_len(&side.packed, local), b - a, "term {term}");
            for doc in 0..idx.doc_count() as u32 {
                let want = parts.terms.docs[a..b]
                    .iter()
                    .position(|&d| d == doc)
                    .map(|i| parts.terms.tfs[a + i]);
                assert_eq!(lookup_freq(&side.packed, local, doc), want, "term {term} doc {doc}");
            }
        }
    }
}
