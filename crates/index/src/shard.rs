//! Per-term-range sharding of the interned CSR state.
//!
//! A shard is a contiguous dense-id slice of both vocabularies — term ids
//! `[term_range.0, term_range.1)` and entity slots `[entity_range.0,
//! entity_range.1)` — carrying the CSR postings of exactly those lists
//! with their precomputed `irf`/`eirf` and MaxScore bounds, offsets
//! rebased to the shard. Because the term vocabulary is interned in
//! lexicographic order (and entity slots ascending), a contiguous id
//! range *is* a term range, so the snapshot store can partition a corpus
//! into N independently decodable files and splice them back.
//!
//! Partitioning balances postings mass, not vocabulary size: shard
//! boundaries are chosen so each shard holds ≈ `1/N` of the posting
//! entries of its side, which is what makes a parallel load divide the
//! decode work evenly. [`InvertedIndex::from_shards`] re-validates every
//! cross-shard invariant (coverage from 0, no gap, no overlap, declared
//! range ↔ slice shapes) before splicing, then runs the full
//! [`InvertedIndex::from_parts`] CSR validation on the reassembled state,
//! so a forged shard set is rejected with an error, never spliced into a
//! corrupt index.

use crate::index::InvertedIndex;
use crate::raw::{EntityParts, IndexParts, TermParts};

/// One contiguous slice of the index: the `index`-th of `count` shards.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexShard {
    /// Position of this shard in the sequence (0-based).
    pub index: u32,
    /// Dense term-id range `[lo, hi)` this shard carries.
    pub term_range: (u32, u32),
    /// Dense entity-slot range `[lo, hi)` this shard carries.
    pub entity_range: (u32, u32),
    /// Term-side slice: vocab/irf/max_tf for the range, offsets rebased
    /// to start at 0, postings of exactly these lists.
    pub terms: TermParts,
    /// Entity-side slice, same shape.
    pub entities: EntityParts,
}

/// Splits `[0, offsets.len() - 1)` into `n` contiguous ranges of roughly
/// equal postings mass (offsets are the CSR prefix sums, so
/// `offsets[i+1] - offsets[i]` is list `i`'s mass). Ranges may be empty
/// when `n` exceeds the vocabulary or the mass is very skewed; together
/// they always cover the id space exactly once, in order.
fn partition_by_mass(offsets: &[u64], n: usize) -> Vec<(u32, u32)> {
    let vocab = offsets.len().saturating_sub(1);
    let total = offsets.last().copied().unwrap_or(0);
    let mut bounds = Vec::with_capacity(n + 1);
    bounds.push(0u32);
    for k in 1..n {
        let bound = if total == 0 {
            // No postings to balance: fall back to an even vocab split.
            (vocab * k / n) as u32
        } else {
            // First id whose prefix mass reaches k/n of the total.
            let target = (total as u128 * k as u128 / n as u128) as u64;
            offsets[..=vocab].partition_point(|&o| o < target) as u32
        };
        let prev = *bounds.last().expect("bounds start non-empty");
        bounds.push(bound.clamp(prev, vocab as u32));
    }
    bounds.push(vocab as u32);
    bounds.windows(2).map(|w| (w[0], w[1])).collect()
}

/// The term-side slice of one shard, offsets rebased to 0.
fn slice_terms(t: &TermParts, lo: u32, hi: u32) -> TermParts {
    let (lo, hi) = (lo as usize, hi as usize);
    let base = t.offsets[lo];
    let end = t.offsets[hi];
    TermParts {
        vocab: t.vocab[lo..hi].to_vec(),
        offsets: t.offsets[lo..=hi].iter().map(|&o| o - base).collect(),
        docs: t.docs[base as usize..end as usize].to_vec(),
        tfs: t.tfs[base as usize..end as usize].to_vec(),
        irf: t.irf[lo..hi].to_vec(),
        max_tf: t.max_tf[lo..hi].to_vec(),
    }
}

/// The entity-side slice of one shard, offsets rebased to 0.
fn slice_entities(e: &EntityParts, lo: u32, hi: u32) -> EntityParts {
    let (lo, hi) = (lo as usize, hi as usize);
    let base = e.offsets[lo];
    let end = e.offsets[hi];
    EntityParts {
        vocab: e.vocab[lo..hi].to_vec(),
        offsets: e.offsets[lo..=hi].iter().map(|&o| o - base).collect(),
        docs: e.docs[base as usize..end as usize].to_vec(),
        efs: e.efs[base as usize..end as usize].to_vec(),
        we: e.we[base as usize..end as usize].to_vec(),
        eirf: e.eirf[lo..hi].to_vec(),
        max_contrib: e.max_contrib[lo..hi].to_vec(),
    }
}

fn check(ok: bool, msg: String) -> Result<(), String> {
    if ok {
        Ok(())
    } else {
        Err(msg)
    }
}

/// Validates that the declared ranges of a shard sequence tile an id
/// space exactly: start at 0, no gap, no overlap, ascending.
fn validate_tiling(side: &str, ranges: &[(u32, u32)]) -> Result<u32, String> {
    let mut expected = 0u32;
    for (i, &(lo, hi)) in ranges.iter().enumerate() {
        check(
            hi >= lo,
            format!("{side}: shard {i} range [{lo}, {hi}) is inverted"),
        )?;
        check(
            lo >= expected,
            format!(
                "{side}: shard {i} range [{lo}, {hi}) overlaps the previous shard (expected lo {expected})"
            ),
        )?;
        check(
            lo <= expected,
            format!(
                "{side}: gap before shard {i} — ids [{expected}, {lo}) are covered by no shard"
            ),
        )?;
        expected = hi;
    }
    Ok(expected)
}

impl InvertedIndex {
    /// Partitions the index into `shards` contiguous per-term-range (and
    /// per-entity-range) slices, each side balanced by postings mass.
    /// `shards` is clamped to at least 1. The output reassembles to an
    /// index `==` to `self` via [`InvertedIndex::from_shards`].
    pub fn to_shards(&self, shards: usize) -> Vec<IndexShard> {
        let n = shards.max(1);
        let parts = self.to_parts();
        let term_ranges = partition_by_mass(&parts.terms.offsets, n);
        let entity_ranges = partition_by_mass(&parts.entities.offsets, n);
        term_ranges
            .into_iter()
            .zip(entity_ranges)
            .enumerate()
            .map(|(i, (tr, er))| IndexShard {
                index: i as u32,
                term_range: tr,
                entity_range: er,
                terms: slice_terms(&parts.terms, tr.0, tr.1),
                entities: slice_entities(&parts.entities, er.0, er.1),
            })
            .collect()
    }

    /// Reassembles an index from a complete, in-order shard sequence plus
    /// the per-document term lengths.
    ///
    /// Cross-shard invariants are checked first — sequential shard
    /// indices, ranges tiling both id spaces from 0 with no gap or
    /// overlap, every slice shaped exactly as its declared range — then
    /// the spliced state runs the full [`InvertedIndex::from_parts`] CSR
    /// validation. Any violation is a descriptive `Err`, never a panic.
    pub fn from_shards(shards: Vec<IndexShard>, doc_lens: Vec<u32>) -> Result<Self, String> {
        check(!shards.is_empty(), "shards: empty shard sequence".to_string())?;
        for (i, s) in shards.iter().enumerate() {
            check(
                s.index == i as u32,
                format!("shards: shard at position {i} declares index {}", s.index),
            )?;
        }
        let term_ranges: Vec<_> = shards.iter().map(|s| s.term_range).collect();
        let entity_ranges: Vec<_> = shards.iter().map(|s| s.entity_range).collect();
        validate_tiling("terms", &term_ranges)?;
        validate_tiling("entities", &entity_ranges)?;

        for s in &shards {
            let i = s.index;
            let t_len = (s.term_range.1 - s.term_range.0) as usize;
            check(
                s.terms.vocab.len() == t_len && s.terms.offsets.len() == t_len + 1,
                format!(
                    "terms: shard {i} slice shape (vocab {}, offsets {}) disagrees with range [{}, {})",
                    s.terms.vocab.len(),
                    s.terms.offsets.len(),
                    s.term_range.0,
                    s.term_range.1
                ),
            )?;
            check(
                s.terms.offsets.first() == Some(&0),
                format!("terms: shard {i} offsets are not rebased to 0"),
            )?;
            let e_len = (s.entity_range.1 - s.entity_range.0) as usize;
            check(
                s.entities.vocab.len() == e_len && s.entities.offsets.len() == e_len + 1,
                format!(
                    "entities: shard {i} slice shape (vocab {}, offsets {}) disagrees with range [{}, {})",
                    s.entities.vocab.len(),
                    s.entities.offsets.len(),
                    s.entity_range.0,
                    s.entity_range.1
                ),
            )?;
            check(
                s.entities.offsets.first() == Some(&0),
                format!("entities: shard {i} offsets are not rebased to 0"),
            )?;
        }

        // Splice. Offsets re-base onto the running postings totals; the
        // leading 0 of every shard after the first is dropped.
        let mut terms = TermParts {
            vocab: Vec::new(),
            offsets: vec![0],
            docs: Vec::new(),
            tfs: Vec::new(),
            irf: Vec::new(),
            max_tf: Vec::new(),
        };
        let mut entities = EntityParts {
            vocab: Vec::new(),
            offsets: vec![0],
            docs: Vec::new(),
            efs: Vec::new(),
            we: Vec::new(),
            eirf: Vec::new(),
            max_contrib: Vec::new(),
        };
        for s in shards {
            let t_base = terms.docs.len() as u64;
            terms.offsets.extend(s.terms.offsets[1..].iter().map(|&o| o + t_base));
            terms.vocab.extend(s.terms.vocab);
            terms.docs.extend(s.terms.docs);
            terms.tfs.extend(s.terms.tfs);
            terms.irf.extend(s.terms.irf);
            terms.max_tf.extend(s.terms.max_tf);

            let e_base = entities.docs.len() as u64;
            entities.offsets.extend(s.entities.offsets[1..].iter().map(|&o| o + e_base));
            entities.vocab.extend(s.entities.vocab);
            entities.docs.extend(s.entities.docs);
            entities.efs.extend(s.entities.efs);
            entities.we.extend(s.entities.we);
            entities.eirf.extend(s.entities.eirf);
            entities.max_contrib.extend(s.entities.max_contrib);
        }
        InvertedIndex::from_parts(IndexParts { terms, entities, doc_lens })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use crate::query::Query;
    use rightcrowd_types::EntityId;

    fn sample() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        let terms = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        b.add_document(&terms(&["swim", "pool", "swim", "dive"]), &[(EntityId::new(3), 0.7)]);
        b.add_document(&terms(&["cook", "pasta", "boil"]), &[(EntityId::new(1), 0.2)]);
        b.add_document(&terms(&["swim", "cook", "train"]), &[(EntityId::new(3), 0.4), (EntityId::new(9), 0.1)]);
        b.add_document(&terms(&["pool", "train"]), &[(EntityId::new(9), 0.9)]);
        b.build()
    }

    fn doc_lens(idx: &InvertedIndex) -> Vec<u32> {
        idx.to_parts().doc_lens
    }

    #[test]
    fn roundtrip_is_identity_for_many_shard_counts() {
        let idx = sample();
        let lens = doc_lens(&idx);
        for n in [1, 2, 3, 5, 7, 64] {
            let shards = idx.to_shards(n);
            assert_eq!(shards.len(), n, "shard count {n}");
            let rebuilt = InvertedIndex::from_shards(shards, lens.clone()).unwrap();
            assert_eq!(idx, rebuilt, "shard count {n}");
            let q = Query {
                terms: vec!["swim".into(), "cook".into()],
                entities: vec![EntityId::new(3)],
            };
            assert_eq!(idx.score_all(&q, 0.6), rebuilt.score_all(&q, 0.6), "shard count {n}");
        }
    }

    #[test]
    fn ranges_tile_and_balance_mass() {
        let idx = sample();
        let parts = idx.to_parts();
        let shards = idx.to_shards(3);
        // Tiling: start at 0, contiguous, end at vocab length.
        let mut expected = 0u32;
        for s in &shards {
            assert_eq!(s.term_range.0, expected);
            expected = s.term_range.1;
        }
        assert_eq!(expected as usize, parts.terms.vocab.len());
        // Mass balance: no shard carries everything when 3 are requested
        // over 8 term lists.
        let masses: Vec<usize> = shards.iter().map(|s| s.terms.docs.len()).collect();
        assert_eq!(masses.iter().sum::<usize>(), parts.terms.docs.len());
        assert!(masses.iter().all(|&m| m < parts.terms.docs.len()), "{masses:?}");
    }

    #[test]
    fn more_shards_than_vocab_yields_empty_tail_shards() {
        let idx = sample();
        let shards = idx.to_shards(64);
        assert_eq!(shards.len(), 64);
        let non_empty = shards.iter().filter(|s| !s.terms.vocab.is_empty()).count();
        assert!(non_empty <= 8);
        let rebuilt = InvertedIndex::from_shards(shards, doc_lens(&idx)).unwrap();
        assert_eq!(idx, rebuilt);
    }

    #[test]
    fn rejects_gapped_overlapping_and_misordered_shards() {
        let idx = sample();
        let lens = doc_lens(&idx);

        // Dropping a middle shard leaves a gap.
        let mut shards = idx.to_shards(3);
        shards.remove(1);
        shards[1].index = 1;
        let err = InvertedIndex::from_shards(shards, lens.clone()).unwrap_err();
        assert!(err.contains("gap"), "{err}");

        // Duplicating a shard overlaps.
        let mut shards = idx.to_shards(3);
        let dup = shards[1].clone();
        shards.insert(1, dup);
        for (i, s) in shards.iter_mut().enumerate() {
            s.index = i as u32;
        }
        let err = InvertedIndex::from_shards(shards, lens.clone()).unwrap_err();
        assert!(err.contains("overlap"), "{err}");

        // Out-of-sequence indices are refused before any splicing.
        let mut shards = idx.to_shards(2);
        shards.swap(0, 1);
        let err = InvertedIndex::from_shards(shards, lens.clone()).unwrap_err();
        assert!(err.contains("declares index"), "{err}");

        // Empty input.
        let err = InvertedIndex::from_shards(Vec::new(), lens).unwrap_err();
        assert!(err.contains("empty"), "{err}");
    }

    #[test]
    fn rejects_malformed_slices() {
        let idx = sample();
        let lens = doc_lens(&idx);

        // A slice whose shape disagrees with its declared range.
        let mut shards = idx.to_shards(2);
        shards[0].terms.vocab.pop();
        shards[0].terms.irf.pop();
        shards[0].terms.max_tf.pop();
        let err = InvertedIndex::from_shards(shards, lens.clone()).unwrap_err();
        assert!(err.contains("slice shape"), "{err}");

        // Offsets not rebased to 0.
        let mut shards = idx.to_shards(2);
        for o in &mut shards[1].terms.offsets {
            *o += 5;
        }
        let err = InvertedIndex::from_shards(shards, lens.clone()).unwrap_err();
        assert!(err.contains("rebased"), "{err}");

        // Structural damage inside a shard is caught by the post-splice
        // from_parts validation.
        let mut shards = idx.to_shards(2);
        if let Some(tf) = shards[1].terms.tfs.first_mut() {
            *tf = 0;
        }
        let err = InvertedIndex::from_shards(shards, lens).unwrap_err();
        assert!(err.contains("zero term frequency"), "{err}");
    }

    #[test]
    fn partition_by_mass_handles_degenerate_inputs() {
        // Empty vocabulary: every range is empty but the tiling holds.
        assert_eq!(partition_by_mass(&[0], 3), vec![(0, 0), (0, 0), (0, 0)]);
        // Zero postings: falls back to an even vocabulary split.
        assert_eq!(partition_by_mass(&[0, 0, 0, 0, 0], 2), vec![(0, 2), (2, 4)]);
        // One heavy list cannot be split below list granularity.
        let ranges = partition_by_mass(&[0, 100, 101, 102], 3);
        assert_eq!(ranges.iter().map(|r| r.1).next_back(), Some(3));
        let mut expected = 0;
        for &(lo, hi) in &ranges {
            assert_eq!(lo, expected);
            assert!(hi >= lo);
            expected = hi;
        }
    }
}
