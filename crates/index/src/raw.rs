//! Raw-parts export/import of the interned CSR state.
//!
//! The snapshot store (`rightcrowd-store`) persists an [`InvertedIndex`]
//! verbatim: vocabularies in dense-id order, CSR offsets, posting arrays
//! and the precomputed `irf`/`eirf`/`we`/bound tables. [`IndexParts`] is
//! that wire-facing view. Exporting is loss-free and deterministic (the
//! interning `HashMap`s are inverted into id-ordered vectors, never
//! iterated), and importing re-validates every CSR invariant the scoring
//! paths rely on, so a corrupted snapshot that survives its checksums is
//! still rejected with an error instead of corrupting a query.

use crate::block::BLOCK_SIZE;
use crate::index::{EntityTable, InvertedIndex, TermTable};
use crate::mapped::MappedStore;
use rightcrowd_types::EntityId;
use std::collections::HashMap;

/// The term side of [`IndexParts`]: vocabulary in dense term-id order plus
/// the CSR arrays of [`TermTable`].
#[derive(Debug, Clone, PartialEq)]
pub struct TermParts {
    /// `vocab[id]` is the term interned as dense id `id`.
    pub vocab: Vec<String>,
    /// CSR offsets (`vocab.len() + 1` entries, ascending, last = docs.len()).
    pub offsets: Vec<u64>,
    /// Posting documents, ascending within each list.
    pub docs: Vec<u32>,
    /// Term frequencies, parallel to `docs`.
    pub tfs: Vec<u32>,
    /// Precomputed `irf(t)` per term id.
    pub irf: Vec<f64>,
    /// Max `tf` per list (the MaxScore bound ingredient).
    pub max_tf: Vec<u32>,
}

/// The entity side of [`IndexParts`], mirroring [`EntityTable`].
#[derive(Debug, Clone, PartialEq)]
pub struct EntityParts {
    /// `vocab[id]` is the entity interned as dense slot `id`.
    pub vocab: Vec<EntityId>,
    /// CSR offsets (`vocab.len() + 1` entries, ascending, last = docs.len()).
    pub offsets: Vec<u64>,
    /// Posting documents, ascending within each list.
    pub docs: Vec<u32>,
    /// Annotation frequencies, parallel to `docs`.
    pub efs: Vec<u32>,
    /// Precomputed Eq. 2 weights, parallel to `docs`.
    pub we: Vec<f64>,
    /// Precomputed `eirf(e)` per entity slot.
    pub eirf: Vec<f64>,
    /// Max `ef · we` per list (the MaxScore bound ingredient).
    pub max_contrib: Vec<f64>,
}

/// The complete interned state of an [`InvertedIndex`], exported for
/// serialisation and re-imported with full invariant validation.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexParts {
    /// The term side.
    pub terms: TermParts,
    /// The entity side.
    pub entities: EntityParts,
    /// Term length per document (the collection size `N` is its length).
    pub doc_lens: Vec<u32>,
}

fn check(ok: bool, msg: &str) -> Result<(), String> {
    if ok {
        Ok(())
    } else {
        Err(msg.to_owned())
    }
}

/// Validates one CSR family: offsets shape, per-list ascending docs in
/// range, and parallel-array lengths.
fn validate_csr(
    side: &str,
    vocab_len: usize,
    offsets: &[u64],
    docs: &[u32],
    parallel: &[(&str, usize)],
    doc_count: usize,
) -> Result<Vec<usize>, String> {
    check(
        offsets.len() == vocab_len + 1,
        &format!("{side}: offsets length {} != vocab length {} + 1", offsets.len(), vocab_len),
    )?;
    let mut out = Vec::with_capacity(offsets.len());
    let mut prev = 0u64;
    for (i, &o) in offsets.iter().enumerate() {
        if i == 0 {
            check(o == 0, &format!("{side}: offsets[0] must be 0, got {o}"))?;
        }
        check(o >= prev, &format!("{side}: offsets not ascending at {i}"))?;
        prev = o;
        out.push(usize::try_from(o).map_err(|_| format!("{side}: offset {o} overflows usize"))?);
    }
    check(
        prev == docs.len() as u64,
        &format!("{side}: final offset {prev} != postings length {}", docs.len()),
    )?;
    for &(name, len) in parallel {
        check(
            len == docs.len(),
            &format!("{side}: {name} length {len} != postings length {}", docs.len()),
        )?;
    }
    for w in out.windows(2) {
        let list = &docs[w[0]..w[1]];
        for pair in list.windows(2) {
            check(pair[0] < pair[1], &format!("{side}: postings not strictly ascending"))?;
        }
        if let Some(&last) = list.last() {
            check(
                (last as usize) < doc_count,
                &format!("{side}: posting doc {last} out of range (doc count {doc_count})"),
            )?;
        }
    }
    Ok(out)
}

fn check_finite(side: &str, name: &str, values: &[f64]) -> Result<(), String> {
    check(
        values.iter().all(|v| v.is_finite()),
        &format!("{side}: non-finite value in {name}"),
    )
}

impl InvertedIndex {
    /// Exports the full interned state in dense-id order. The output is a
    /// pure function of the index (no hash-iteration order leaks through),
    /// so two equal indexes always export identical parts.
    pub fn to_parts(&self) -> IndexParts {
        if let Some(m) = self.mapped.as_deref() {
            return self.mapped_to_parts(m);
        }
        let mut term_vocab = vec![String::new(); self.terms.irf.len()];
        for (term, &id) in &self.terms.ids {
            term_vocab[id as usize] = term.clone();
        }
        let mut entity_vocab = vec![EntityId::new(0); self.entities.eirf.len()];
        for (&entity, &id) in &self.entities.ids {
            entity_vocab[id as usize] = entity;
        }
        IndexParts {
            terms: TermParts {
                vocab: term_vocab,
                offsets: self.terms.offsets.iter().map(|&o| o as u64).collect(),
                docs: self.terms.docs.clone(),
                tfs: self.terms.tfs.clone(),
                irf: self.terms.irf.clone(),
                max_tf: self.terms.max_tf.clone(),
            },
            entities: EntityParts {
                vocab: entity_vocab,
                offsets: self.entities.offsets.iter().map(|&o| o as u64).collect(),
                docs: self.entities.docs.clone(),
                efs: self.entities.efs.clone(),
                we: self.entities.we.clone(),
                eirf: self.entities.eirf.clone(),
                max_contrib: self.entities.max_contrib.clone(),
            },
            doc_lens: self.doc_lens.clone(),
        }
    }

    /// The mapped-store half of [`Self::to_parts`]: walks the shard views
    /// in global id order, decoding every packed list back into CSR form.
    /// The export is byte-identical to what the original flat index
    /// produced — block packing is loss-free — so backing-independent
    /// equality and re-sharding both route through here.
    fn mapped_to_parts(&self, m: &MappedStore) -> IndexParts {
        let mut terms = TermParts {
            vocab: Vec::with_capacity(m.term_count()),
            offsets: vec![0],
            docs: Vec::new(),
            tfs: Vec::new(),
            irf: Vec::with_capacity(m.term_count()),
            max_tf: Vec::with_capacity(m.term_count()),
        };
        let mut dbuf = [0u32; BLOCK_SIZE];
        let mut fbuf = [0u32; BLOCK_SIZE];
        let mut wbuf = [0.0f64; BLOCK_SIZE];
        for g in 0..m.term_count() as u32 {
            let (t, local) = m.term_side(g);
            terms.vocab.push(m.term_str(g).to_owned());
            terms.irf.push(t.irf[local as usize]);
            terms.max_tf.push(t.max_tf[local as usize]);
            let (bs, be) = t.packed.list_blocks(local);
            let mut prev = -1i64;
            for b in bs..be {
                let (n, _) = t.packed.decode_block(b, prev, &mut dbuf, &mut fbuf);
                terms.docs.extend_from_slice(&dbuf[..n]);
                terms.tfs.extend_from_slice(&fbuf[..n]);
                prev = i64::from(t.packed.last_doc[b]);
            }
            terms.offsets.push(terms.docs.len() as u64);
        }
        let mut entities = EntityParts {
            vocab: Vec::with_capacity(m.entity_count()),
            offsets: vec![0],
            docs: Vec::new(),
            efs: Vec::new(),
            we: Vec::new(),
            eirf: Vec::with_capacity(m.entity_count()),
            max_contrib: Vec::with_capacity(m.entity_count()),
        };
        for g in 0..m.entity_count() as u32 {
            let (e, local) = m.entity_side(g);
            entities.vocab.push(EntityId::new(m.entity_at(g)));
            entities.eirf.push(e.eirf[local as usize]);
            entities.max_contrib.push(e.max_contrib[local as usize]);
            let (bs, be) = e.packed.list_blocks(local);
            let mut prev = -1i64;
            for b in bs..be {
                let (n, _) =
                    e.packed.decode_entity_block(b, prev, &mut dbuf, &mut fbuf, &mut wbuf);
                entities.docs.extend_from_slice(&dbuf[..n]);
                entities.efs.extend_from_slice(&fbuf[..n]);
                entities.we.extend_from_slice(&wbuf[..n]);
                prev = i64::from(e.packed.last_doc[b]);
            }
            entities.offsets.push(entities.docs.len() as u64);
        }
        IndexParts { terms, entities, doc_lens: self.doc_lens.clone() }
    }

    /// Rebuilds an index from exported parts, re-validating every CSR
    /// invariant (offset shape, ascending in-range postings, parallel
    /// array lengths, finite weights, duplicate-free vocabularies). The
    /// result is `==` to the index the parts were exported from.
    pub fn from_parts(parts: IndexParts) -> Result<Self, String> {
        let doc_count = parts.doc_lens.len();
        let t = &parts.terms;
        let term_offsets = validate_csr(
            "terms",
            t.vocab.len(),
            &t.offsets,
            &t.docs,
            &[("tfs", t.tfs.len())],
            doc_count,
        )?;
        check(
            t.irf.len() == t.vocab.len() && t.max_tf.len() == t.vocab.len(),
            "terms: irf/max_tf length != vocab length",
        )?;
        check_finite("terms", "irf", &t.irf)?;
        check(t.tfs.iter().all(|&tf| tf > 0), "terms: zero term frequency")?;

        let e = &parts.entities;
        let entity_offsets = validate_csr(
            "entities",
            e.vocab.len(),
            &e.offsets,
            &e.docs,
            &[("efs", e.efs.len()), ("we", e.we.len())],
            doc_count,
        )?;
        check(
            e.eirf.len() == e.vocab.len() && e.max_contrib.len() == e.vocab.len(),
            "entities: eirf/max_contrib length != vocab length",
        )?;
        check_finite("entities", "we", &e.we)?;
        check_finite("entities", "eirf", &e.eirf)?;
        check_finite("entities", "max_contrib", &e.max_contrib)?;
        check(e.efs.iter().all(|&ef| ef > 0), "entities: zero entity frequency")?;

        let mut term_ids: HashMap<String, u32> = HashMap::with_capacity(t.vocab.len());
        for (id, term) in t.vocab.iter().enumerate() {
            if term_ids.insert(term.clone(), id as u32).is_some() {
                return Err(format!("terms: duplicate vocabulary entry {term:?}"));
            }
        }
        let mut entity_ids: HashMap<EntityId, u32> = HashMap::with_capacity(e.vocab.len());
        for (id, &entity) in e.vocab.iter().enumerate() {
            if entity_ids.insert(entity, id as u32).is_some() {
                return Err(format!("entities: duplicate vocabulary entry {entity}"));
            }
        }

        Ok(InvertedIndex::assemble(
            TermTable {
                ids: term_ids,
                offsets: term_offsets,
                docs: parts.terms.docs,
                tfs: parts.terms.tfs,
                irf: parts.terms.irf,
                max_tf: parts.terms.max_tf,
            },
            EntityTable {
                ids: entity_ids,
                offsets: entity_offsets,
                docs: parts.entities.docs,
                efs: parts.entities.efs,
                we: parts.entities.we,
                eirf: parts.entities.eirf,
                max_contrib: parts.entities.max_contrib,
            },
            parts.doc_lens,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use crate::query::Query;

    fn sample() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        let terms = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        b.add_document(&terms(&["swim", "pool", "swim"]), &[(EntityId::new(3), 0.7)]);
        b.add_document(&terms(&["cook", "pasta"]), &[(EntityId::new(1), 0.2)]);
        b.add_document(&terms(&["swim", "cook"]), &[(EntityId::new(3), 0.4)]);
        b.build()
    }

    #[test]
    fn roundtrip_is_identity() {
        let idx = sample();
        let rebuilt = InvertedIndex::from_parts(idx.to_parts()).unwrap();
        assert_eq!(idx, rebuilt);
        // Scoring parity, bit for bit.
        let q = Query { terms: vec!["swim".into(), "cook".into()], entities: vec![EntityId::new(3)] };
        assert_eq!(idx.score_all(&q, 0.6), rebuilt.score_all(&q, 0.6));
    }

    #[test]
    fn export_is_deterministic() {
        // HashMap iteration order varies run to run; the export must not.
        let a = sample().to_parts();
        let b = sample().to_parts();
        assert_eq!(a, b);
        assert!(a.terms.vocab.windows(2).all(|w| w[0] < w[1]), "terms interned lexicographically");
        assert!(a.entities.vocab.windows(2).all(|w| w[0] < w[1]), "entities interned ascending");
    }

    #[test]
    fn rejects_broken_invariants() {
        let good = sample().to_parts();

        let mut p = good.clone();
        p.terms.offsets[1] = 999;
        assert!(InvertedIndex::from_parts(p).unwrap_err().contains("offsets"));

        let mut p = good.clone();
        p.terms.docs.swap(0, 1);
        // Either ordering or range breaks, depending on the list layout.
        assert!(InvertedIndex::from_parts(p).is_err());

        let mut p = good.clone();
        p.entities.we[0] = f64::NAN;
        assert!(InvertedIndex::from_parts(p).unwrap_err().contains("non-finite"));

        let mut p = good.clone();
        p.terms.vocab[0] = p.terms.vocab[1].clone();
        assert!(InvertedIndex::from_parts(p).unwrap_err().contains("duplicate"));

        let mut p = good.clone();
        p.doc_lens.pop();
        assert!(InvertedIndex::from_parts(p).unwrap_err().contains("out of range"));

        let mut p = good.clone();
        p.terms.tfs[0] = 0;
        assert!(InvertedIndex::from_parts(p).unwrap_err().contains("zero term frequency"));

        let mut p = good;
        p.entities.eirf.pop();
        assert!(InvertedIndex::from_parts(p).is_err());
    }
}
