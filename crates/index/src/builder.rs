//! Incremental index construction.

use crate::index::{DocIdx, EntityTable, InvertedIndex, TermTable};
use rightcrowd_types::EntityId;
use std::collections::HashMap;

/// Term posting accumulated during building.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TermPosting {
    doc: u32,
    tf: u32,
}

/// Entity posting accumulated during building.
#[derive(Debug, Clone, Copy, PartialEq)]
struct EntityPosting {
    doc: u32,
    ef: u32,
    dscore_sum: f64,
}

/// Builds an [`InvertedIndex`] one document at a time.
///
/// Documents are assigned dense [`DocIdx`] handles in insertion order; the
/// caller keeps its own mapping from domain objects (resources, profiles,
/// containers) to these handles. [`IndexBuilder::build`] interns terms and
/// entities to dense ids (lexicographic / ascending order, so the result
/// depends only on the document set, never on hash iteration order) and
/// lays the postings out in CSR form with precomputed `irf`/`eirf` and
/// per-list bounds.
#[derive(Debug, Default)]
pub struct IndexBuilder {
    term_postings: HashMap<String, Vec<TermPosting>>,
    entity_postings: HashMap<EntityId, Vec<EntityPosting>>,
    doc_lens: Vec<u32>,
}

impl IndexBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of documents added so far.
    pub fn doc_count(&self) -> usize {
        self.doc_lens.len()
    }

    /// Adds one document.
    ///
    /// `terms` are the document's normalised term occurrences (duplicates
    /// are the term frequency); `entities` are its entity annotations as
    /// `(entity, dscore)` pairs — one pair per *annotation occurrence*, so
    /// a twice-mentioned entity appears twice (its `ef` becomes 2).
    pub fn add_document(&mut self, terms: &[String], entities: &[(EntityId, f64)]) -> DocIdx {
        let doc = DocIdx(self.doc_lens.len() as u32);
        self.doc_lens.push(terms.len() as u32);

        // Aggregate term frequencies locally before touching the postings.
        let mut tf: HashMap<&str, u32> = HashMap::new();
        for t in terms {
            *tf.entry(t.as_str()).or_insert(0) += 1;
        }
        for (term, freq) in tf {
            self.term_postings
                .entry(term.to_owned())
                .or_default()
                .push(TermPosting { doc: doc.0, tf: freq });
        }

        let mut ef: HashMap<EntityId, (u32, f64)> = HashMap::new();
        for &(entity, dscore) in entities {
            let slot = ef.entry(entity).or_insert((0, 0.0));
            slot.0 += 1;
            slot.1 += dscore.clamp(0.0, 1.0);
        }
        for (entity, (freq, dscore_sum)) in ef {
            self.entity_postings
                .entry(entity)
                .or_default()
                .push(EntityPosting { doc: doc.0, ef: freq, dscore_sum });
        }
        doc
    }

    /// Finalises the index: interns terms (lexicographic) and entities
    /// (ascending id), sorts each posting list by document, concatenates
    /// the lists into CSR arrays and precomputes the `irf`/`eirf` tables
    /// and per-list maxima for pruning.
    pub fn build(self) -> InvertedIndex {
        let _span = rightcrowd_obs::span!("index.build");
        let doc_count = self.doc_lens.len();
        let irf_of = |df: usize| (1.0 + doc_count as f64 / df as f64).ln();

        let mut term_entries: Vec<(String, Vec<TermPosting>)> =
            self.term_postings.into_iter().collect();
        term_entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let total: usize = term_entries.iter().map(|(_, l)| l.len()).sum();
        let mut terms = TermTable {
            ids: HashMap::with_capacity(term_entries.len()),
            offsets: Vec::with_capacity(term_entries.len() + 1),
            docs: Vec::with_capacity(total),
            tfs: Vec::with_capacity(total),
            irf: Vec::with_capacity(term_entries.len()),
            max_tf: Vec::with_capacity(term_entries.len()),
        };
        terms.offsets.push(0);
        for (id, (name, mut list)) in term_entries.into_iter().enumerate() {
            list.sort_unstable_by_key(|p| p.doc);
            terms.ids.insert(name, id as u32);
            terms.irf.push(irf_of(list.len()));
            terms.max_tf.push(list.iter().map(|p| p.tf).max().unwrap_or(0));
            for p in &list {
                terms.docs.push(p.doc);
                terms.tfs.push(p.tf);
            }
            terms.offsets.push(terms.docs.len());
        }

        let mut entity_entries: Vec<(EntityId, Vec<EntityPosting>)> =
            self.entity_postings.into_iter().collect();
        entity_entries.sort_unstable_by_key(|(e, _)| *e);
        let total: usize = entity_entries.iter().map(|(_, l)| l.len()).sum();
        let mut entities = EntityTable {
            ids: HashMap::with_capacity(entity_entries.len()),
            offsets: Vec::with_capacity(entity_entries.len() + 1),
            docs: Vec::with_capacity(total),
            efs: Vec::with_capacity(total),
            we: Vec::with_capacity(total),
            eirf: Vec::with_capacity(entity_entries.len()),
            max_contrib: Vec::with_capacity(entity_entries.len()),
        };
        entities.offsets.push(0);
        for (id, (entity, mut list)) in entity_entries.into_iter().enumerate() {
            list.sort_unstable_by_key(|p| p.doc);
            entities.ids.insert(entity, id as u32);
            entities.eirf.push(irf_of(list.len()));
            let mut max_contrib = 0.0f64;
            for p in &list {
                let we = 1.0 + p.dscore_sum / p.ef as f64;
                max_contrib = max_contrib.max(p.ef as f64 * we);
                entities.docs.push(p.doc);
                entities.efs.push(p.ef);
                entities.we.push(we);
            }
            entities.max_contrib.push(max_contrib);
            entities.offsets.push(entities.docs.len());
        }

        InvertedIndex::assemble(terms, entities, self.doc_lens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn doc_indices_are_dense() {
        let mut b = IndexBuilder::new();
        let d0 = b.add_document(&terms(&["a"]), &[]);
        let d1 = b.add_document(&terms(&["b"]), &[]);
        assert_eq!(d0.0, 0);
        assert_eq!(d1.0, 1);
        assert_eq!(b.doc_count(), 2);
    }

    #[test]
    fn term_frequency_aggregated() {
        let mut b = IndexBuilder::new();
        b.add_document(&terms(&["swim", "swim", "pool"]), &[]);
        let idx = b.build();
        assert_eq!(idx.term_df("swim"), 1);
        assert_eq!(idx.tf("swim", DocIdx(0)), 2);
        assert_eq!(idx.tf("pool", DocIdx(0)), 1);
        assert_eq!(idx.tf("missing", DocIdx(0)), 0);
    }

    #[test]
    fn entity_frequency_and_dscore_aggregated() {
        let mut b = IndexBuilder::new();
        let e = EntityId::new(7);
        b.add_document(&[], &[(e, 0.4), (e, 0.8)]);
        let idx = b.build();
        assert_eq!(idx.entity_df(e), 1);
        assert_eq!(idx.ef(e, DocIdx(0)), 2);
        // Average dscore (0.4 + 0.8)/2 = 0.6 → we = 1.6.
        assert!((idx.entity_weight(e, DocIdx(0)) - 1.6).abs() < 1e-12);
    }

    #[test]
    fn dscore_clamped_into_unit_interval() {
        let mut b = IndexBuilder::new();
        let e = EntityId::new(1);
        b.add_document(&[], &[(e, 5.0), (e, -3.0)]);
        let idx = b.build();
        // Clamped to 1.0 and 0.0 → average 0.5 → we = 1.5.
        assert!((idx.entity_weight(e, DocIdx(0)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_document_is_allowed() {
        let mut b = IndexBuilder::new();
        let d = b.add_document(&[], &[]);
        let idx = b.build();
        assert_eq!(idx.doc_count(), 1);
        assert_eq!(idx.doc_len(d), 0);
    }

    #[test]
    fn interned_ids_are_independent_of_insertion_order() {
        // Two builders fed the same documents in different orders (doc ids
        // permuted) must intern identical vocabularies.
        let mut a = IndexBuilder::new();
        a.add_document(&terms(&["zebra", "ant"]), &[(EntityId::new(9), 0.5)]);
        a.add_document(&terms(&["mole"]), &[(EntityId::new(2), 0.5)]);
        let a = a.build();

        let mut b = IndexBuilder::new();
        b.add_document(&terms(&["mole"]), &[(EntityId::new(2), 0.5)]);
        b.add_document(&terms(&["zebra", "ant"]), &[(EntityId::new(9), 0.5)]);
        let b = b.build();

        assert_eq!(a.term_count(), b.term_count());
        assert_eq!(a.entity_count(), b.entity_count());
        for t in ["ant", "mole", "zebra"] {
            assert_eq!(a.irf(t), b.irf(t), "{t}");
        }
    }
}
