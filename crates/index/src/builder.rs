//! Incremental index construction.

use crate::index::{DocIdx, EntityPosting, InvertedIndex, TermPosting};
use rightcrowd_types::EntityId;
use std::collections::HashMap;

/// Builds an [`InvertedIndex`] one document at a time.
///
/// Documents are assigned dense [`DocIdx`] handles in insertion order; the
/// caller keeps its own mapping from domain objects (resources, profiles,
/// containers) to these handles.
#[derive(Debug, Default)]
pub struct IndexBuilder {
    term_postings: HashMap<String, Vec<TermPosting>>,
    entity_postings: HashMap<EntityId, Vec<EntityPosting>>,
    doc_lens: Vec<u32>,
}

impl IndexBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of documents added so far.
    pub fn doc_count(&self) -> usize {
        self.doc_lens.len()
    }

    /// Adds one document.
    ///
    /// `terms` are the document's normalised term occurrences (duplicates
    /// are the term frequency); `entities` are its entity annotations as
    /// `(entity, dscore)` pairs — one pair per *annotation occurrence*, so
    /// a twice-mentioned entity appears twice (its `ef` becomes 2).
    pub fn add_document(&mut self, terms: &[String], entities: &[(EntityId, f64)]) -> DocIdx {
        let doc = DocIdx(self.doc_lens.len() as u32);
        self.doc_lens.push(terms.len() as u32);

        // Aggregate term frequencies locally before touching the postings.
        let mut tf: HashMap<&str, u32> = HashMap::new();
        for t in terms {
            *tf.entry(t.as_str()).or_insert(0) += 1;
        }
        for (term, freq) in tf {
            self.term_postings
                .entry(term.to_owned())
                .or_default()
                .push(TermPosting { doc: doc.0, tf: freq });
        }

        let mut ef: HashMap<EntityId, (u32, f64)> = HashMap::new();
        for &(entity, dscore) in entities {
            let slot = ef.entry(entity).or_insert((0, 0.0));
            slot.0 += 1;
            slot.1 += dscore.clamp(0.0, 1.0);
        }
        for (entity, (freq, dscore_sum)) in ef {
            self.entity_postings
                .entry(entity)
                .or_default()
                .push(EntityPosting { doc: doc.0, ef: freq, dscore_sum });
        }
        doc
    }

    /// Finalises the index: sorts postings by document for deterministic,
    /// cache-friendly scans.
    pub fn build(self) -> InvertedIndex {
        let mut term_postings = self.term_postings;
        for list in term_postings.values_mut() {
            list.sort_unstable_by_key(|p| p.doc);
        }
        let mut entity_postings = self.entity_postings;
        for list in entity_postings.values_mut() {
            list.sort_unstable_by_key(|p| p.doc);
        }
        InvertedIndex {
            term_postings,
            entity_postings,
            doc_lens: self.doc_lens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn doc_indices_are_dense() {
        let mut b = IndexBuilder::new();
        let d0 = b.add_document(&terms(&["a"]), &[]);
        let d1 = b.add_document(&terms(&["b"]), &[]);
        assert_eq!(d0.0, 0);
        assert_eq!(d1.0, 1);
        assert_eq!(b.doc_count(), 2);
    }

    #[test]
    fn term_frequency_aggregated() {
        let mut b = IndexBuilder::new();
        b.add_document(&terms(&["swim", "swim", "pool"]), &[]);
        let idx = b.build();
        assert_eq!(idx.term_df("swim"), 1);
        assert_eq!(idx.tf("swim", DocIdx(0)), 2);
        assert_eq!(idx.tf("pool", DocIdx(0)), 1);
        assert_eq!(idx.tf("missing", DocIdx(0)), 0);
    }

    #[test]
    fn entity_frequency_and_dscore_aggregated() {
        let mut b = IndexBuilder::new();
        let e = EntityId::new(7);
        b.add_document(&[], &[(e, 0.4), (e, 0.8)]);
        let idx = b.build();
        assert_eq!(idx.entity_df(e), 1);
        assert_eq!(idx.ef(e, DocIdx(0)), 2);
        // Average dscore (0.4 + 0.8)/2 = 0.6 → we = 1.6.
        assert!((idx.entity_weight(e, DocIdx(0)) - 1.6).abs() < 1e-12);
    }

    #[test]
    fn dscore_clamped_into_unit_interval() {
        let mut b = IndexBuilder::new();
        let e = EntityId::new(1);
        b.add_document(&[], &[(e, 5.0), (e, -3.0)]);
        let idx = b.build();
        // Clamped to 1.0 and 0.0 → average 0.5 → we = 1.5.
        assert!((idx.entity_weight(e, DocIdx(0)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_document_is_allowed() {
        let mut b = IndexBuilder::new();
        let d = b.add_document(&[], &[]);
        let idx = b.build();
        assert_eq!(idx.doc_count(), 1);
        assert_eq!(idx.doc_len(d), 0);
    }
}
