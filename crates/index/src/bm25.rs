//! BM25 scoring — the standard probabilistic alternative to the paper's
//! `tf·irf²` vector-space model.
//!
//! The paper adopts a deliberately simple VSM (Eq. 1) for its uniform
//! term/entity representation; BM25 is the obvious "what if" and is
//! provided for the retrieval-model ablation (`exp_rankers`). Entities are
//! scored with the same saturation curve over `ef`, preserving the Eq. 2
//! `we = 1 + dScore` multiplier.

use crate::index::{DocIdx, InvertedIndex, ScoredDoc};
use crate::query::Query;
use std::collections::HashMap;

/// BM25 hyper-parameters (classic defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25Params {
    /// Term-frequency saturation (`k1`).
    pub k1: f64,
    /// Length normalisation strength (`b`).
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// BM25 idf in the Lucene formulation
/// `ln(1 + (N − df + 0.5)/(df + 0.5))` — strictly positive for any term
/// that occurs, monotonically decreasing in df.
fn bm25_idf(n: usize, df: usize) -> f64 {
    if df == 0 {
        return 0.0;
    }
    let num = (n as f64 - df as f64 + 0.5).max(0.0);
    (1.0 + num / (df as f64 + 0.5)).ln()
}

impl InvertedIndex {
    /// Mean term length of the documents in the collection.
    pub fn avg_doc_len(&self) -> f64 {
        if self.doc_count() == 0 {
            return 0.0;
        }
        self.doc_lens.iter().map(|&l| l as f64).sum::<f64>() / self.doc_count() as f64
    }

    /// Scores the collection with BM25 over terms and a saturated-entity
    /// analogue, mixed by `alpha` like Eq. 1. Results are sorted like
    /// [`InvertedIndex::score_all`].
    pub fn score_all_bm25(&self, query: &Query, alpha: f64, params: Bm25Params) -> Vec<ScoredDoc> {
        let _span = rightcrowd_obs::span!("index.score_all_bm25");
        let alpha = alpha.clamp(0.0, 1.0);
        let n = self.doc_count();
        let avg_len = self.avg_doc_len().max(1.0);
        let mut acc: HashMap<u32, f64> = HashMap::new();
        let mut traversed = 0u64;

        if alpha > 0.0 {
            for term in &query.terms {
                let Some(r) = self.resolve_term(term) else {
                    continue;
                };
                traversed += r.df as u64;
                let idf = bm25_idf(n, r.df);
                self.visit_term_list(&r, |doc, tf| {
                    let tf = tf as f64;
                    let len = self.doc_lens[doc as usize] as f64;
                    let denom = tf + params.k1 * (1.0 - params.b + params.b * len / avg_len);
                    *acc.entry(doc).or_insert(0.0) += alpha * idf * tf * (params.k1 + 1.0) / denom;
                });
            }
        }
        if alpha < 1.0 {
            for &entity in &query.entities {
                let Some(r) = self.resolve_entity(entity) else {
                    continue;
                };
                traversed += r.df as u64;
                let idf = bm25_idf(n, r.df);
                self.visit_entity_list(&r, |doc, ef, we| {
                    let ef = ef as f64;
                    // Entities are sparse; saturation without length
                    // normalisation (annotation counts don't scale with
                    // document length the way terms do).
                    let sat = ef * (params.k1 + 1.0) / (ef + params.k1);
                    *acc.entry(doc).or_insert(0.0) += (1.0 - alpha) * idf * sat * we;
                });
            }
        }

        crate::stats::publish(crate::stats::TraversalStats {
            traversed,
            ..crate::stats::TraversalStats::default()
        });
        let mut scored: Vec<ScoredDoc> = acc
            .into_iter()
            .filter(|&(_, s)| s > 0.0)
            .map(|(doc, score)| ScoredDoc { doc: DocIdx(doc), score })
            .collect();
        scored.sort_unstable_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then_with(|| a.doc.cmp(&b.doc))
        });
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use rightcrowd_types::EntityId;

    fn terms(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn sample() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_document(&terms(&["swim", "pool", "swim"]), &[(EntityId::new(1), 0.9)]);
        b.add_document(&terms(&["swim"]), &[]);
        b.add_document(&terms(&["cook", "pasta", "cook", "cook", "cook"]), &[(EntityId::new(2), 0.5)]);
        b.build()
    }

    #[test]
    fn idf_behaviour() {
        assert_eq!(bm25_idf(10, 0), 0.0);
        assert!(bm25_idf(10, 1) > bm25_idf(10, 5));
        // Floored at zero for df > n/2-ish.
        assert!(bm25_idf(2, 2) >= 0.0);
    }

    #[test]
    fn avg_doc_len() {
        let idx = sample();
        assert!((idx.avg_doc_len() - 3.0).abs() < 1e-12); // (3+1+5)/3
    }

    #[test]
    fn ranks_matching_docs() {
        let idx = sample();
        let hits = idx.score_all_bm25(&Query::from_terms(["swim"]), 1.0, Bm25Params::default());
        assert_eq!(hits.len(), 2);
        // Doc 0 has tf 2 in a short doc → ranks above doc 1 (tf 1).
        assert_eq!(hits[0].doc, DocIdx(0));
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn saturation_dampens_high_tf() {
        let idx = sample();
        let vsm = idx.score_all(&Query::from_terms(["cook"]), 1.0);
        let bm25 = idx.score_all_bm25(&Query::from_terms(["cook"]), 1.0, Bm25Params::default());
        // With tf = 4 in one doc, VSM's linear tf gives it 4× the weight
        // of a tf-1 doc; BM25's ratio must be far below 4 (saturation).
        assert_eq!(vsm.len(), 1);
        assert_eq!(bm25.len(), 1);
        // BM25 score is bounded by idf × (k1 + 1).
        let bound = bm25_idf(3, 1) * 2.2;
        assert!(bm25[0].score <= bound + 1e-9);
    }

    #[test]
    fn entity_side_respects_eq2_weight(){
        let idx = sample();
        let q = Query { terms: vec![], entities: vec![EntityId::new(1)] };
        let hits = idx.score_all_bm25(&q, 0.0, Bm25Params::default());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, DocIdx(0));
        assert!(hits[0].score > 0.0);
    }

    #[test]
    fn alpha_mixing() {
        let idx = sample();
        let q = Query { terms: terms(&["pasta"]), entities: vec![EntityId::new(1)] };
        let mixed = idx.score_all_bm25(&q, 0.5, Bm25Params::default());
        assert_eq!(mixed.len(), 2); // term matches doc 2, entity matches doc 0
        let text_only = idx.score_all_bm25(&q, 1.0, Bm25Params::default());
        assert_eq!(text_only.len(), 1);
    }
}
