//! Per-thread traversal-counter deltas for the flight recorder.
//!
//! The global obs counters answer "how much work has the process done";
//! a flight record needs "how much work did *this query* do". Every
//! scoring path publishes through [`publish`], which feeds the global
//! counters **and** a thread-local accumulator; callers bracket a query
//! with [`take_traversal_stats`] (read-and-zero) to obtain the per-query
//! delta without touching any shared state. Under feature `obs-off` on
//! `rightcrowd-obs` the whole mechanism compiles to nothing.

use std::cell::Cell;

/// Counter deltas accumulated by the calling thread's scoring traversals
/// since the last [`take_traversal_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Postings visited (term + entity sides, all scoring paths).
    pub postings_traversed: u64,
    /// Documents admitted into the MaxScore top-k accumulator.
    pub maxscore_admitted: u64,
    /// First-appearance documents skipped by the MaxScore bound.
    pub maxscore_pruned: u64,
}

thread_local! {
    static DELTA: Cell<TraversalStats> = const {
        Cell::new(TraversalStats {
            postings_traversed: 0,
            maxscore_admitted: 0,
            maxscore_pruned: 0,
        })
    };
}

/// Publishes one traversal's tallies: global counters plus the calling
/// thread's delta. Compiled to nothing under `obs-off`.
#[inline]
pub(crate) fn publish(traversed: u64, admitted: u64, pruned: u64) {
    if !rightcrowd_obs::PROBES_ENABLED {
        return;
    }
    rightcrowd_obs::add(rightcrowd_obs::CounterId::PostingsTraversed, traversed);
    rightcrowd_obs::add(rightcrowd_obs::CounterId::MaxscoreAdmitted, admitted);
    rightcrowd_obs::add(rightcrowd_obs::CounterId::MaxscorePruned, pruned);
    DELTA.with(|d| {
        let mut v = d.get();
        v.postings_traversed += traversed;
        v.maxscore_admitted += admitted;
        v.maxscore_pruned += pruned;
        d.set(v);
    });
}

/// Reads and zeroes the calling thread's traversal delta. Call once
/// before scoring (to discard unrelated history) and once after, on the
/// same thread; the second read is the query's own counter delta.
pub fn take_traversal_stats() -> TraversalStats {
    DELTA.with(|d| d.replace(TraversalStats::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_read_and_zero_per_thread() {
        let _ = take_traversal_stats();
        publish(10, 3, 2);
        publish(5, 0, 1);
        let stats = take_traversal_stats();
        if rightcrowd_obs::PROBES_ENABLED {
            assert_eq!(
                stats,
                TraversalStats {
                    postings_traversed: 15,
                    maxscore_admitted: 3,
                    maxscore_pruned: 3
                }
            );
        } else {
            assert_eq!(stats, TraversalStats::default());
        }
        assert_eq!(take_traversal_stats(), TraversalStats::default());
    }

    #[test]
    fn deltas_are_thread_local() {
        let _ = take_traversal_stats();
        publish(7, 0, 0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                assert_eq!(take_traversal_stats(), TraversalStats::default());
            });
        });
        let stats = take_traversal_stats();
        if rightcrowd_obs::PROBES_ENABLED {
            assert_eq!(stats.postings_traversed, 7);
        }
    }
}
