//! Per-thread traversal-counter deltas for the flight recorder.
//!
//! The global obs counters answer "how much work has the process done";
//! a flight record needs "how much work did *this query* do". Every
//! scoring path publishes through [`publish`], which feeds the global
//! counters **and** a thread-local accumulator; callers bracket a query
//! with [`take_traversal_stats`] (read-and-zero) to obtain the per-query
//! delta without touching any shared state. Under feature `obs-off` on
//! `rightcrowd-obs` the whole mechanism compiles to nothing.

use std::cell::Cell;

/// Counter deltas accumulated by the calling thread's scoring traversals
/// since the last [`take_traversal_stats`].
///
/// The block fields obey two invariants the `rc regress` gate checks:
/// `blocks_decoded + blocks_skipped == blocks_total`, and postings inside
/// skipped blocks never enter `postings_traversed` (they are tallied under
/// `maxscore_pruned` *and* `postings_skipped`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Postings visited (term + entity sides, all scoring paths). On the
    /// block-compressed path, only postings in *decoded* blocks count.
    pub traversed: u64,
    /// Documents admitted into the MaxScore top-k accumulator.
    pub admitted: u64,
    /// First-appearance documents skipped by the MaxScore bound — both
    /// individually (decoded but not admitted) and via whole skipped
    /// blocks.
    pub pruned: u64,
    /// Compressed blocks owned by the posting lists the top-k path walked.
    pub blocks_total: u64,
    /// Compressed blocks decompressed by the top-k path.
    pub blocks_decoded: u64,
    /// Compressed blocks skipped whole by their block-max bound.
    pub blocks_skipped: u64,
    /// Compressed payload bytes decompressed by the top-k path.
    pub postings_bytes_decoded: u64,
    /// Postings inside skipped blocks (a subset of `pruned`).
    pub postings_skipped: u64,
}

thread_local! {
    static DELTA: Cell<TraversalStats> = const { Cell::new(TraversalStats::zero()) };
}

impl TraversalStats {
    /// All-zero stats (`Default`, usable in const position).
    pub const fn zero() -> Self {
        TraversalStats {
            traversed: 0,
            admitted: 0,
            pruned: 0,
            blocks_total: 0,
            blocks_decoded: 0,
            blocks_skipped: 0,
            postings_bytes_decoded: 0,
            postings_skipped: 0,
        }
    }

    fn absorb(&mut self, d: &TraversalStats) {
        self.traversed += d.traversed;
        self.admitted += d.admitted;
        self.pruned += d.pruned;
        self.blocks_total += d.blocks_total;
        self.blocks_decoded += d.blocks_decoded;
        self.blocks_skipped += d.blocks_skipped;
        self.postings_bytes_decoded += d.postings_bytes_decoded;
        self.postings_skipped += d.postings_skipped;
    }
}

/// Publishes one traversal's tallies: global counters plus the calling
/// thread's delta. Compiled to nothing under `obs-off`.
#[inline]
pub(crate) fn publish(delta: TraversalStats) {
    if !rightcrowd_obs::PROBES_ENABLED {
        return;
    }
    use rightcrowd_obs::CounterId;
    rightcrowd_obs::add(CounterId::PostingsTraversed, delta.traversed);
    rightcrowd_obs::add(CounterId::MaxscoreAdmitted, delta.admitted);
    rightcrowd_obs::add(CounterId::MaxscorePruned, delta.pruned);
    rightcrowd_obs::add(CounterId::BlocksTotal, delta.blocks_total);
    rightcrowd_obs::add(CounterId::BlocksDecoded, delta.blocks_decoded);
    rightcrowd_obs::add(CounterId::BlocksSkipped, delta.blocks_skipped);
    rightcrowd_obs::add(CounterId::PostingsBytesDecoded, delta.postings_bytes_decoded);
    rightcrowd_obs::add(CounterId::PostingsSkipped, delta.postings_skipped);
    DELTA.with(|d| {
        let mut v = d.get();
        v.absorb(&delta);
        d.set(v);
    });
}

/// Reads and zeroes the calling thread's traversal delta. Call once
/// before scoring (to discard unrelated history) and once after, on the
/// same thread; the second read is the query's own counter delta.
pub fn take_traversal_stats() -> TraversalStats {
    DELTA.with(|d| d.replace(TraversalStats::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(traversed: u64, admitted: u64, pruned: u64) -> TraversalStats {
        TraversalStats { traversed, admitted, pruned, ..TraversalStats::default() }
    }

    #[test]
    fn take_is_read_and_zero_per_thread() {
        let _ = take_traversal_stats();
        publish(TraversalStats {
            blocks_total: 4,
            blocks_decoded: 3,
            blocks_skipped: 1,
            postings_bytes_decoded: 640,
            postings_skipped: 2,
            ..sample(10, 3, 2)
        });
        publish(sample(5, 0, 1));
        let stats = take_traversal_stats();
        if rightcrowd_obs::PROBES_ENABLED {
            assert_eq!(
                stats,
                TraversalStats {
                    traversed: 15,
                    admitted: 3,
                    pruned: 3,
                    blocks_total: 4,
                    blocks_decoded: 3,
                    blocks_skipped: 1,
                    postings_bytes_decoded: 640,
                    postings_skipped: 2,
                }
            );
        } else {
            assert_eq!(stats, TraversalStats::default());
        }
        assert_eq!(take_traversal_stats(), TraversalStats::default());
    }

    #[test]
    fn deltas_are_thread_local() {
        let _ = take_traversal_stats();
        publish(sample(7, 0, 0));
        std::thread::scope(|scope| {
            scope.spawn(|| {
                assert_eq!(take_traversal_stats(), TraversalStats::default());
            });
        });
        let stats = take_traversal_stats();
        if rightcrowd_obs::PROBES_ENABLED {
            assert_eq!(stats.traversed, 7);
        }
    }
}
