//! The definitional Eq. 1 scorer, retained as the parity oracle for the
//! CSR fast path.
//!
//! This module reimplements scoring the way the paper states it — a
//! hash-map accumulator fed straight from the posting lists, no
//! interning, no factoring, no pruning. It is deliberately boring: every
//! optimisation in [`crate::index`] is validated against these functions
//! (`tests/parity.rs` at the workspace root runs the comparison over a
//! full synthetic corpus), so this code must stay a direct transcription
//! of Eq. 1/Eq. 2 and never acquire shortcuts of its own.
//!
//! The float-addition order per document (query terms in order, then
//! query entities in order, postings ascending by doc) matches the fast
//! path's accumulation order, so `score_all` here is *bit-identical* to
//! [`InvertedIndex::score_all`] — not merely close.

use crate::index::{DocIdx, InvertedIndex, ScoredDoc};
use crate::query::Query;
use std::collections::HashMap;

/// Eq. 1 score accumulation: document → score, unsorted.
fn accumulate(index: &InvertedIndex, query: &Query, alpha: f64) -> HashMap<u32, f64> {
    let mut acc: HashMap<u32, f64> = HashMap::new();
    if alpha > 0.0 {
        for term in &query.terms {
            let irf = index.irf(term);
            let w = alpha * irf * irf;
            for (doc, tf) in index.term_postings(term) {
                *acc.entry(doc.0).or_insert(0.0) += w * tf as f64;
            }
        }
    }
    if alpha < 1.0 {
        for &entity in &query.entities {
            let eirf = index.eirf(entity);
            let w = (1.0 - alpha) * eirf * eirf;
            for p in index.entity_postings(entity) {
                *acc.entry(p.doc.0).or_insert(0.0) += w * p.ef as f64 * p.we;
            }
        }
    }
    acc
}

fn sort_scored(scored: &mut [ScoredDoc]) {
    scored.sort_unstable_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then_with(|| a.doc.cmp(&b.doc))
    });
}

/// Scores the whole collection by the book: the reference for
/// [`InvertedIndex::score_all`].
pub fn score_all(index: &InvertedIndex, query: &Query, alpha: f64) -> Vec<ScoredDoc> {
    let alpha = alpha.clamp(0.0, 1.0);
    let mut scored: Vec<ScoredDoc> = accumulate(index, query, alpha)
        .into_iter()
        .filter(|&(_, s)| s > 0.0)
        .map(|(doc, score)| ScoredDoc { doc: DocIdx(doc), score })
        .collect();
    sort_scored(&mut scored);
    scored
}

/// Filters and truncates [`score_all`]: the reference for
/// [`InvertedIndex::score_top_k`] (which must agree on documents, scores
/// and tie-breaks despite its bounded heap and pruning).
pub fn score_top_k<F>(
    index: &InvertedIndex,
    query: &Query,
    alpha: f64,
    k: usize,
    filter: F,
) -> Vec<ScoredDoc>
where
    F: Fn(DocIdx) -> bool,
{
    let mut scored = score_all(index, query, alpha);
    scored.retain(|s| filter(s.doc));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use rightcrowd_types::EntityId;

    fn terms(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn sample() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_document(&terms(&["swim", "pool", "swim"]), &[(EntityId::new(1), 0.8)]);
        b.add_document(&terms(&["cook", "pasta"]), &[(EntityId::new(2), 0.4)]);
        b.add_document(&terms(&["swim", "cook"]), &[(EntityId::new(1), 0.2)]);
        b.build()
    }

    #[test]
    fn reference_is_bit_identical_to_fast_path() {
        let idx = sample();
        let q = Query {
            terms: terms(&["swim", "cook"]),
            entities: vec![EntityId::new(1), EntityId::new(2)],
        };
        for &alpha in &[0.0, 0.3, 0.6, 1.0] {
            let fast = idx.score_all(&q, alpha);
            let slow = score_all(&idx, &q, alpha);
            assert_eq!(fast.len(), slow.len());
            for (f, s) in fast.iter().zip(&slow) {
                assert_eq!(f.doc, s.doc, "alpha {alpha}");
                assert_eq!(
                    f.score.to_bits(),
                    s.score.to_bits(),
                    "alpha {alpha} doc {:?}",
                    f.doc
                );
            }
        }
    }

    #[test]
    fn reference_top_k_oracle_shape() {
        let idx = sample();
        let q = Query::from_terms(["swim"]);
        let top1 = score_top_k(&idx, &q, 1.0, 1, |_| true);
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0].doc, DocIdx(0));
        let filtered = score_top_k(&idx, &q, 1.0, 10, |d| d != DocIdx(0));
        assert!(filtered.iter().all(|s| s.doc != DocIdx(0)));
    }
}
