//! The immutable dual inverted index and the Eq. 1 scorer.

use crate::query::Query;
use rightcrowd_types::EntityId;
use std::collections::HashMap;

/// Dense handle of a document inside one [`InvertedIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocIdx(pub u32);

impl DocIdx {
    /// The raw arena offset.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// One (document, score) result of a match run, Eq. 1 applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredDoc {
    /// The matched document.
    pub doc: DocIdx,
    /// Its relevance score (strictly positive — zero-score documents are
    /// not retrieved).
    pub score: f64,
}

/// Term posting: a document and the term's frequency in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TermPosting {
    pub doc: u32,
    pub tf: u32,
}

/// Entity posting: a document, the entity's annotation frequency, and the
/// sum of the annotations' disambiguation scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct EntityPosting {
    pub doc: u32,
    pub ef: u32,
    pub dscore_sum: f64,
}

/// The immutable dual (term + entity) inverted index.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    pub(crate) term_postings: HashMap<String, Vec<TermPosting>>,
    pub(crate) entity_postings: HashMap<EntityId, Vec<EntityPosting>>,
    pub(crate) doc_lens: Vec<u32>,
}

impl InvertedIndex {
    /// Number of indexed documents (the collection size `N`).
    pub fn doc_count(&self) -> usize {
        self.doc_lens.len()
    }

    /// Term length of a document (number of term occurrences).
    pub fn doc_len(&self, doc: DocIdx) -> u32 {
        self.doc_lens[doc.index()]
    }

    /// Document frequency of a term.
    pub fn term_df(&self, term: &str) -> usize {
        self.term_postings.get(term).map_or(0, Vec::len)
    }

    /// Document frequency of an entity.
    pub fn entity_df(&self, entity: EntityId) -> usize {
        self.entity_postings.get(&entity).map_or(0, Vec::len)
    }

    /// Inverse resource frequency: `ln(1 + N / df)`. Zero for unseen terms
    /// (they can never contribute anyway).
    pub fn irf(&self, term: &str) -> f64 {
        let df = self.term_df(term);
        if df == 0 {
            return 0.0;
        }
        (1.0 + self.doc_count() as f64 / df as f64).ln()
    }

    /// Inverse resource frequency of an entity, same form as [`Self::irf`].
    pub fn eirf(&self, entity: EntityId) -> f64 {
        let df = self.entity_df(entity);
        if df == 0 {
            return 0.0;
        }
        (1.0 + self.doc_count() as f64 / df as f64).ln()
    }

    /// Term frequency of `term` in `doc` (0 when absent).
    pub fn tf(&self, term: &str, doc: DocIdx) -> u32 {
        self.term_postings
            .get(term)
            .and_then(|list| {
                list.binary_search_by_key(&doc.0, |p| p.doc)
                    .ok()
                    .map(|i| list[i].tf)
            })
            .unwrap_or(0)
    }

    /// Entity frequency of `entity` in `doc` (0 when absent).
    pub fn ef(&self, entity: EntityId, doc: DocIdx) -> u32 {
        self.entity_postings
            .get(&entity)
            .and_then(|list| {
                list.binary_search_by_key(&doc.0, |p| p.doc)
                    .ok()
                    .map(|i| list[i].ef)
            })
            .unwrap_or(0)
    }

    /// The Eq. 2 entity weight `we(e, doc) = 1 + dScore(e, doc)` (average
    /// dscore over the entity's annotations in the document); 0 when the
    /// entity is not annotated in the document.
    pub fn entity_weight(&self, entity: EntityId, doc: DocIdx) -> f64 {
        self.entity_postings
            .get(&entity)
            .and_then(|list| {
                list.binary_search_by_key(&doc.0, |p| p.doc).ok().map(|i| {
                    let p = &list[i];
                    1.0 + p.dscore_sum / p.ef as f64
                })
            })
            .unwrap_or(0.0)
    }

    /// Eq. 1 score accumulation: document → score, unsorted.
    fn accumulate(&self, query: &Query, alpha: f64) -> HashMap<u32, f64> {
        let alpha = alpha.clamp(0.0, 1.0);
        let mut acc: HashMap<u32, f64> = HashMap::new();

        if alpha > 0.0 {
            for term in &query.terms {
                let Some(postings) = self.term_postings.get(term) else {
                    continue;
                };
                let irf = self.irf(term);
                let w = alpha * irf * irf;
                for p in postings {
                    *acc.entry(p.doc).or_insert(0.0) += w * p.tf as f64;
                }
            }
        }
        if alpha < 1.0 {
            for &entity in &query.entities {
                let Some(postings) = self.entity_postings.get(&entity) else {
                    continue;
                };
                let eirf = self.eirf(entity);
                let w = (1.0 - alpha) * eirf * eirf;
                for p in postings {
                    let we = 1.0 + p.dscore_sum / p.ef as f64;
                    *acc.entry(p.doc).or_insert(0.0) += w * p.ef as f64 * we;
                }
            }
        }
        acc
    }

    /// Scores the whole collection against `query` with mixing weight
    /// `alpha` (Eq. 1) and returns every positive-scoring document, sorted
    /// by descending score (ties broken by ascending doc for determinism).
    pub fn score_all(&self, query: &Query, alpha: f64) -> Vec<ScoredDoc> {
        let mut scored: Vec<ScoredDoc> = self
            .accumulate(query, alpha)
            .into_iter()
            .filter(|&(_, s)| s > 0.0)
            .map(|(doc, score)| ScoredDoc { doc: DocIdx(doc), score })
            .collect();
        scored.sort_unstable_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then_with(|| a.doc.cmp(&b.doc))
        });
        scored
    }

    /// Like [`Self::score_all`] but returns only the `k` best matching
    /// documents among those accepted by `filter`, using a bounded
    /// min-heap instead of sorting the whole match set — O(n log k)
    /// rather than O(n log n), the right tool when the ranking window is
    /// much smaller than the match set.
    ///
    /// The result is identical (same documents, same order, same
    /// tie-breaking) to filtering and truncating [`Self::score_all`].
    pub fn score_top_k<F>(&self, query: &Query, alpha: f64, k: usize, filter: F) -> Vec<ScoredDoc>
    where
        F: Fn(DocIdx) -> bool,
    {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        if k == 0 {
            return Vec::new();
        }

        /// Heap entry ordered so the heap root is the *worst* kept doc:
        /// lower score first; among equal scores, larger doc id first
        /// (doc ids ascend in the final output, so the largest id is the
        /// first to evict).
        struct Worst(ScoredDoc);
        impl PartialEq for Worst {
            fn eq(&self, other: &Self) -> bool {
                self.cmp(other) == Ordering::Equal
            }
        }
        impl Eq for Worst {}
        impl PartialOrd for Worst {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Worst {
            fn cmp(&self, other: &Self) -> Ordering {
                other
                    .0
                    .score
                    .partial_cmp(&self.0.score)
                    .expect("scores are finite")
                    .then_with(|| self.0.doc.cmp(&other.0.doc))
            }
        }

        // Accumulate as in score_all, then keep only the top k in a
        // bounded heap (no full sort).
        // Capacity capped: k may be "effectively unbounded" (usize::MAX).
        let mut heap: BinaryHeap<Worst> = BinaryHeap::with_capacity(k.saturating_add(1).min(4096));
        for (doc, score) in self.accumulate(query, alpha) {
            if score <= 0.0 {
                continue;
            }
            let s = ScoredDoc { doc: DocIdx(doc), score };
            if !filter(s.doc) {
                continue;
            }
            heap.push(Worst(s));
            if heap.len() > k {
                heap.pop();
            }
        }
        let mut out: Vec<ScoredDoc> = heap.into_iter().map(|w| w.0).collect();
        out.sort_unstable_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then_with(|| a.doc.cmp(&b.doc))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;

    fn terms(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    /// Three docs: one about swimming, one about cooking, one mixed.
    fn sample() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_document(&terms(&["swim", "pool", "train", "swim"]), &[(EntityId::new(1), 0.8)]);
        b.add_document(&terms(&["cook", "pasta", "recipe"]), &[]);
        b.add_document(&terms(&["swim", "cook"]), &[(EntityId::new(1), 0.2), (EntityId::new(2), 0.5)]);
        b.build()
    }

    #[test]
    fn irf_decreases_with_df() {
        let idx = sample();
        // "pool" occurs in 1 doc, "swim" in 2 → rarer term has higher irf.
        assert!(idx.irf("pool") > idx.irf("swim"));
        assert_eq!(idx.irf("unseen"), 0.0);
        assert!(idx.eirf(EntityId::new(2)) > idx.eirf(EntityId::new(1)));
        assert_eq!(idx.eirf(EntityId::new(99)), 0.0);
    }

    #[test]
    fn pure_term_query_ranks_by_tf_irf() {
        let idx = sample();
        let hits = idx.score_all(&Query::from_terms(["swim"]), 1.0);
        assert_eq!(hits.len(), 2);
        // Doc 0 has tf=2, doc 2 has tf=1 → doc 0 first.
        assert_eq!(hits[0].doc, DocIdx(0));
        assert_eq!(hits[1].doc, DocIdx(2));
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn pure_entity_query_uses_dscore_weight() {
        let idx = sample();
        let q = Query { terms: vec![], entities: vec![EntityId::new(1)] };
        let hits = idx.score_all(&q, 0.0);
        assert_eq!(hits.len(), 2);
        // Same ef=1 in both docs, but doc 0 has higher dscore → we bigger.
        assert_eq!(hits[0].doc, DocIdx(0));
    }

    #[test]
    fn alpha_mixes_the_two_signals() {
        let idx = sample();
        let q = Query {
            terms: terms(&["cook"]),
            entities: vec![EntityId::new(1)],
        };
        let text_only = idx.score_all(&q, 1.0);
        let entity_only = idx.score_all(&q, 0.0);
        let mixed = idx.score_all(&q, 0.5);
        // Text matches docs 1, 2; entity matches docs 0, 2; the mix
        // matches the union.
        assert_eq!(text_only.len(), 2);
        assert_eq!(entity_only.len(), 2);
        assert_eq!(mixed.len(), 3);
        // Doc 2 gets both contributions in the mix.
        assert_eq!(mixed[0].doc, DocIdx(2));
    }

    #[test]
    fn alpha_is_clamped() {
        let idx = sample();
        let q = Query::from_terms(["swim"]);
        let clamped = idx.score_all(&q, 42.0);
        let one = idx.score_all(&q, 1.0);
        assert_eq!(clamped, one);
    }

    #[test]
    fn empty_query_matches_nothing() {
        let idx = sample();
        assert!(idx.score_all(&Query::default(), 0.5).is_empty());
    }

    #[test]
    fn repeated_query_terms_double_contribution() {
        let idx = sample();
        let once = idx.score_all(&Query::from_terms(["swim"]), 1.0);
        let twice = idx.score_all(&Query::from_terms(["swim", "swim"]), 1.0);
        assert!((twice[0].score - 2.0 * once[0].score).abs() < 1e-9);
    }

    #[test]
    fn top_k_matches_truncated_score_all() {
        let idx = sample();
        let q = Query {
            terms: terms(&["swim", "cook"]),
            entities: vec![EntityId::new(1)],
        };
        let full = idx.score_all(&q, 0.5);
        for k in 0..=full.len() + 2 {
            let topk = idx.score_top_k(&q, 0.5, k, |_| true);
            assert_eq!(topk.len(), k.min(full.len()));
            assert_eq!(&topk[..], &full[..topk.len()], "k = {k}");
        }
    }

    #[test]
    fn top_k_respects_filter() {
        let idx = sample();
        let q = Query::from_terms(["swim"]);
        let only_doc2 = idx.score_top_k(&q, 1.0, 10, |d| d == DocIdx(2));
        assert_eq!(only_doc2.len(), 1);
        assert_eq!(only_doc2[0].doc, DocIdx(2));
        let none = idx.score_top_k(&q, 1.0, 10, |_| false);
        assert!(none.is_empty());
    }

    #[test]
    fn top_k_tie_break_matches_full_sort() {
        let mut b = IndexBuilder::new();
        for _ in 0..6 {
            b.add_document(&terms(&["x"]), &[]);
        }
        let idx = b.build();
        let q = Query::from_terms(["x"]);
        let full = idx.score_all(&q, 1.0);
        let top3 = idx.score_top_k(&q, 1.0, 3, |_| true);
        assert_eq!(&top3[..], &full[..3]);
        assert_eq!(top3[0].doc, DocIdx(0));
        assert_eq!(top3[2].doc, DocIdx(2));
    }

    #[test]
    fn deterministic_tie_break_by_doc() {
        let mut b = IndexBuilder::new();
        b.add_document(&terms(&["x"]), &[]);
        b.add_document(&terms(&["x"]), &[]);
        let idx = b.build();
        let hits = idx.score_all(&Query::from_terms(["x"]), 1.0);
        assert_eq!(hits[0].doc, DocIdx(0));
        assert_eq!(hits[1].doc, DocIdx(1));
    }
}
