//! The immutable dual inverted index and the Eq. 1 scorer.
//!
//! # Storage layout
//!
//! Both posting families live in interned CSR (compressed sparse row)
//! form: [`IndexBuilder`](crate::builder::IndexBuilder) assigns every
//! distinct term and entity a dense id, and the per-id posting lists are
//! concatenated into flat parallel arrays addressed through an offsets
//! table. A query resolves each term/entity to its id once, then scans a
//! contiguous slice — no string hashing and no pointer chasing inside the
//! hot loop. The `irf`/`eirf` tables (and per-list maxima used for
//! pruning bounds) are precomputed at build time.
//!
//! # Scoring paths
//!
//! - [`InvertedIndex::score_all`] / [`InvertedIndex::score_top_k`] apply
//!   Eq. 1 for one `α` over a dense epoch-stamped accumulator. The
//!   accumulation order (query terms in order, postings in ascending doc
//!   order, term side before entity side) matches the definitional
//!   reference scorer in [`crate::reference`] bit for bit.
//! - [`InvertedIndex::score_top_k`] additionally prunes documents that
//!   provably cannot enter the top `k` (MaxScore-style upper bounds; see
//!   the method docs for the invariant).
//! - [`InvertedIndex::score_components`] factors Eq. 1 into its α-free
//!   term and entity sums so that an α sweep recombines the two numbers
//!   per document instead of re-traversing postings
//!   ([`recombine`] / [`recombine_top_k`]).

use crate::block::{self, PackedPostings, BLOCK_SIZE};
use crate::mapped::{self, MappedShardView, MappedStore};
use crate::query::Query;
use crate::stats::TraversalStats;
use rightcrowd_types::EntityId;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Dense handle of a document inside one [`InvertedIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocIdx(pub u32);

impl DocIdx {
    /// The raw arena offset.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// One (document, score) result of a match run, Eq. 1 applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredDoc {
    /// The matched document.
    pub doc: DocIdx,
    /// Its relevance score (strictly positive — zero-score documents are
    /// not retrieved).
    pub score: f64,
}

/// The α-free factorisation of Eq. 1 for one document: the final score is
/// `α · term_sum + (1 − α) · entity_sum` for any mixing weight α.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentScore {
    /// The matched document.
    pub doc: DocIdx,
    /// `Σ_t tf(t,doc) · irf(t)²` over the query terms.
    pub term_sum: f64,
    /// `Σ_e ef(e,doc) · eirf(e)² · we(e,doc)` over the query entities.
    pub entity_sum: f64,
}

/// One entity posting as seen through [`InvertedIndex::entity_postings`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntityPostingView {
    /// The annotated document.
    pub doc: DocIdx,
    /// Annotation occurrences of the entity in the document.
    pub ef: u32,
    /// The Eq. 2 weight `we = 1 + dScore` (average over the annotations).
    pub we: f64,
}

/// Interned CSR postings for the term side.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct TermTable {
    /// Term → dense term id.
    pub(crate) ids: HashMap<String, u32>,
    /// CSR offsets; list `i` spans `docs[offsets[i]..offsets[i+1]]`.
    pub(crate) offsets: Vec<usize>,
    /// Posting documents, ascending within each list.
    pub(crate) docs: Vec<u32>,
    /// Term frequencies, parallel to `docs`.
    pub(crate) tfs: Vec<u32>,
    /// Precomputed `irf(t) = ln(1 + N/df)` per term id.
    pub(crate) irf: Vec<f64>,
    /// Max `tf` in each list — the pruning upper-bound ingredient.
    pub(crate) max_tf: Vec<u32>,
}

impl TermTable {
    #[inline]
    fn list(&self, id: u32) -> (&[u32], &[u32]) {
        let (a, b) = (self.offsets[id as usize], self.offsets[id as usize + 1]);
        (&self.docs[a..b], &self.tfs[a..b])
    }
}

/// Interned CSR postings for the entity side.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct EntityTable {
    /// Entity → dense entity-slot id.
    pub(crate) ids: HashMap<EntityId, u32>,
    /// CSR offsets; list `i` spans `docs[offsets[i]..offsets[i+1]]`.
    pub(crate) offsets: Vec<usize>,
    /// Posting documents, ascending within each list.
    pub(crate) docs: Vec<u32>,
    /// Annotation frequencies, parallel to `docs`.
    pub(crate) efs: Vec<u32>,
    /// Precomputed Eq. 2 weights `1 + dscore_sum/ef`, parallel to `docs`.
    pub(crate) we: Vec<f64>,
    /// Precomputed `eirf(e)` per entity slot.
    pub(crate) eirf: Vec<f64>,
    /// Max `ef · we` in each list — the pruning upper-bound ingredient.
    pub(crate) max_contrib: Vec<f64>,
}

impl EntityTable {
    #[inline]
    fn list(&self, id: u32) -> (&[u32], &[u32], &[f64]) {
        let (a, b) = (self.offsets[id as usize], self.offsets[id as usize + 1]);
        (&self.docs[a..b], &self.efs[a..b], &self.we[a..b])
    }
}

/// A query term resolved against whichever store backs the index, carrying
/// everything the scorer needs: the precomputed weights, the document
/// frequency (known before traversal, e.g. for BM25's idf), and the list's
/// address. On the flat store `flat` is the dense CSR id and `packed` is
/// the whole-index mirror; on the mapped store `flat` is `None` and
/// `packed`/`local` address the owning shard view.
pub(crate) struct ResolvedTerm<'a> {
    pub(crate) irf: f64,
    pub(crate) max_tf: u32,
    pub(crate) df: usize,
    pub(crate) packed: &'a PackedPostings,
    pub(crate) local: u32,
    pub(crate) flat: Option<u32>,
}

/// Entity-side twin of [`ResolvedTerm`].
pub(crate) struct ResolvedEntity<'a> {
    pub(crate) eirf: f64,
    pub(crate) max_contrib: f64,
    pub(crate) df: usize,
    pub(crate) packed: &'a PackedPostings,
    pub(crate) local: u32,
    pub(crate) flat: Option<u32>,
}

/// The immutable dual (term + entity) inverted index.
///
/// The postings live in one of two stores: the *flat* store (interned
/// `HashMap` vocabularies + CSR arrays + block-compressed mirrors, all
/// owned) that the builder and the streamed snapshot decoder produce, or
/// the *mapped* store ([`crate::mapped`]) whose arrays are borrowed
/// zero-copy from `mmap`'d shard files. Every public accessor and every
/// scoring path dispatches on the store and produces bit-identical
/// results either way — the mapped store decodes the same blocks in the
/// same order with the same arithmetic.
///
/// `PartialEq` means the indexes are observably identical on every
/// scoring path: flat/flat comparisons check the interned state directly;
/// as soon as a mapped store is involved, both sides export their
/// canonical raw parts ([`InvertedIndex::to_parts`]) and compare those.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    pub(crate) terms: TermTable,
    pub(crate) entities: EntityTable,
    pub(crate) doc_lens: Vec<u32>,
    /// Block-compressed mirror of the term postings (empty when the
    /// compressed path is compiled out via `blocks-off`). Derived
    /// deterministically from the CSR arrays by [`InvertedIndex::assemble`],
    /// so it adds no degrees of freedom to `PartialEq`.
    pub(crate) packed_terms: PackedPostings,
    /// Block-compressed mirror of the entity postings.
    pub(crate) packed_entities: PackedPostings,
    /// The zero-copy store; when set, the flat tables above are empty and
    /// every access goes through the mapped shard views.
    pub(crate) mapped: Option<Box<MappedStore>>,
}

impl PartialEq for InvertedIndex {
    fn eq(&self, other: &Self) -> bool {
        if self.mapped.is_none() && other.mapped.is_none() {
            self.terms == other.terms
                && self.entities == other.entities
                && self.doc_lens == other.doc_lens
                && self.packed_terms == other.packed_terms
                && self.packed_entities == other.packed_entities
        } else {
            // Backing-independent equality: compare the canonical export.
            self.doc_lens == other.doc_lens && self.to_parts() == other.to_parts()
        }
    }
}

// ---------------------------------------------------------------------------
// Per-thread scoring scratch: a dense accumulator with epoch stamps, so a
// query touches only the slots its postings hit and nothing is re-zeroed
// between queries.

#[derive(Default)]
struct Scratch {
    epoch: u32,
    stamps: Vec<u32>,
    /// Combined score (plain paths) or the term sum (component path).
    acc: Vec<f64>,
    /// The entity sum (component path only).
    acc2: Vec<f64>,
    touched: Vec<u32>,
}

impl Scratch {
    fn begin(&mut self, doc_count: usize) {
        if self.stamps.len() != doc_count {
            self.stamps = vec![0; doc_count];
            self.acc = vec![0.0; doc_count];
            self.acc2 = vec![0.0; doc_count];
            self.epoch = 0;
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamps.fill(0);
            self.epoch = 1;
        }
        self.touched.clear();
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Sorts by descending score, ties broken by ascending doc — the output
/// order of every scoring path.
fn sort_scored(scored: &mut [ScoredDoc]) {
    scored.sort_unstable_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then_with(|| a.doc.cmp(&b.doc))
    });
}

/// Heap entry ordered so the heap root is the *worst* kept doc: lower
/// score first; among equal scores, larger doc id first (doc ids ascend
/// in the final output, so the largest id is the first to evict).
struct Worst(ScoredDoc);

impl PartialEq for Worst {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Worst {}
impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Worst {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .0
            .score
            .partial_cmp(&self.0.score)
            .expect("scores are finite")
            .then_with(|| self.0.doc.cmp(&other.0.doc))
    }
}

/// Bounded-heap top-k capacity: `k` may be "effectively unbounded"
/// (`usize::MAX`), so cap the initial allocation.
fn heap_capacity(k: usize) -> usize {
    k.saturating_add(1).min(4096)
}

impl InvertedIndex {
    /// Builds the final index from its interned tables, deriving the
    /// block-compressed posting mirror (unless compiled out). Every
    /// construction path — builder, snapshot decode, shard splice —
    /// funnels through here, so the packed state always agrees with the
    /// CSR arrays.
    pub(crate) fn assemble(terms: TermTable, entities: EntityTable, doc_lens: Vec<u32>) -> Self {
        #[cfg(not(feature = "blocks-off"))]
        let (packed_terms, packed_entities) = (
            block::pack_term_lists((0..terms.irf.len() as u32).map(|id| terms.list(id))),
            block::pack_entity_lists((0..entities.eirf.len() as u32).map(|id| entities.list(id))),
        );
        #[cfg(feature = "blocks-off")]
        let (packed_terms, packed_entities) =
            (PackedPostings::default(), PackedPostings::default());
        InvertedIndex { terms, entities, doc_lens, packed_terms, packed_entities, mapped: None }
    }

    /// Builds an index over zero-copy shard views (typically borrowed from
    /// `mmap`'d `RCSHRD02` files; see [`crate::mapped`]). The views must
    /// tile the global term/entity id spaces and pass the mapped store's
    /// shape validation — the memory-safety gate that makes subsequent
    /// unchecked block decodes sound.
    pub fn from_mapped(views: Vec<MappedShardView>, doc_lens: Vec<u32>) -> Result<Self, String> {
        let store = MappedStore::new(views, doc_lens.len())?;
        Ok(InvertedIndex {
            terms: TermTable::default(),
            entities: EntityTable::default(),
            doc_lens,
            packed_terms: PackedPostings::default(),
            packed_entities: PackedPostings::default(),
            mapped: Some(Box::new(store)),
        })
    }

    /// Whether this index reads through the zero-copy mapped store.
    pub fn is_mapped(&self) -> bool {
        self.mapped.is_some()
    }

    /// The block-compressed `(terms, entities)` posting mirrors of the
    /// *flat* store. Empty (zero lists) when the compressed path is
    /// disabled — check with [`PackedPostings::is_packed`] — and also on a
    /// mapped index, whose packed state lives per shard view.
    pub fn packed_postings(&self) -> (&PackedPostings, &PackedPostings) {
        (&self.packed_terms, &self.packed_entities)
    }

    /// Whether the scorer takes the block-compressed path. A mapped index
    /// always does: its postings only exist in packed form.
    #[inline]
    fn blocks_enabled(&self) -> bool {
        self.mapped.is_some() || self.packed_terms.is_packed()
    }

    /// Number of indexed documents (the collection size `N`).
    pub fn doc_count(&self) -> usize {
        self.doc_lens.len()
    }

    /// Term length of a document (number of term occurrences).
    pub fn doc_len(&self, doc: DocIdx) -> u32 {
        self.doc_lens[doc.index()]
    }

    /// Number of distinct interned terms.
    pub fn term_count(&self) -> usize {
        match self.mapped.as_deref() {
            None => self.terms.irf.len(),
            Some(m) => m.term_count(),
        }
    }

    /// Number of distinct interned entities.
    pub fn entity_count(&self) -> usize {
        match self.mapped.as_deref() {
            None => self.entities.eirf.len(),
            Some(m) => m.entity_count(),
        }
    }

    /// Document frequency of a term.
    pub fn term_df(&self, term: &str) -> usize {
        self.resolve_term(term).map_or(0, |r| r.df)
    }

    /// Document frequency of an entity.
    pub fn entity_df(&self, entity: EntityId) -> usize {
        self.resolve_entity(entity).map_or(0, |r| r.df)
    }

    /// Inverse resource frequency: `ln(1 + N / df)`. Zero for unseen terms
    /// (they can never contribute anyway).
    pub fn irf(&self, term: &str) -> f64 {
        self.resolve_term(term).map_or(0.0, |r| r.irf)
    }

    /// Inverse resource frequency of an entity, same form as [`Self::irf`].
    pub fn eirf(&self, entity: EntityId) -> f64 {
        self.resolve_entity(entity).map_or(0.0, |r| r.eirf)
    }

    /// Term frequency of `term` in `doc` (0 when absent).
    pub fn tf(&self, term: &str, doc: DocIdx) -> u32 {
        self.resolve_term(term).map_or(0, |r| match r.flat {
            Some(id) => {
                let (docs, tfs) = self.terms.list(id);
                docs.binary_search(&doc.0).map_or(0, |i| tfs[i])
            }
            None => mapped::lookup_freq(r.packed, r.local, doc.0).unwrap_or(0),
        })
    }

    /// Entity frequency of `entity` in `doc` (0 when absent).
    pub fn ef(&self, entity: EntityId, doc: DocIdx) -> u32 {
        self.resolve_entity(entity).map_or(0, |r| match r.flat {
            Some(id) => {
                let (docs, efs, _) = self.entities.list(id);
                docs.binary_search(&doc.0).map_or(0, |i| efs[i])
            }
            None => mapped::lookup_entity_freq(r.packed, r.local, doc.0).map_or(0, |(ef, _)| ef),
        })
    }

    /// The Eq. 2 entity weight `we(e, doc) = 1 + dScore(e, doc)` (average
    /// dscore over the entity's annotations in the document); 0 when the
    /// entity is not annotated in the document.
    pub fn entity_weight(&self, entity: EntityId, doc: DocIdx) -> f64 {
        self.resolve_entity(entity).map_or(0.0, |r| match r.flat {
            Some(id) => {
                let (docs, _, we) = self.entities.list(id);
                docs.binary_search(&doc.0).map_or(0.0, |i| we[i])
            }
            None => {
                mapped::lookup_entity_freq(r.packed, r.local, doc.0).map_or(0.0, |(_, we)| we)
            }
        })
    }

    /// The postings of `term` as `(doc, tf)` pairs in ascending doc order
    /// (empty for unseen terms).
    pub fn term_postings(&self, term: &str) -> impl Iterator<Item = (DocIdx, u32)> + '_ {
        let iter: Box<dyn Iterator<Item = (DocIdx, u32)> + '_> = match self.resolve_term(term) {
            None => Box::new(std::iter::empty()),
            Some(r) => match r.flat {
                Some(id) => {
                    let (docs, tfs) = self.terms.list(id);
                    Box::new(docs.iter().zip(tfs).map(|(&d, &tf)| (DocIdx(d), tf)))
                }
                None => {
                    let mut out = Vec::with_capacity(r.df);
                    self.visit_term_list(&r, |d, tf| out.push((DocIdx(d), tf)));
                    Box::new(out.into_iter())
                }
            },
        };
        iter
    }

    /// The postings of `entity` in ascending doc order (empty for unseen
    /// entities).
    pub fn entity_postings(&self, entity: EntityId) -> impl Iterator<Item = EntityPostingView> + '_ {
        let iter: Box<dyn Iterator<Item = EntityPostingView> + '_> =
            match self.resolve_entity(entity) {
                None => Box::new(std::iter::empty()),
                Some(r) => match r.flat {
                    Some(id) => {
                        let (docs, efs, we) = self.entities.list(id);
                        Box::new(docs.iter().zip(efs).zip(we).map(|((&d, &ef), &we)| {
                            EntityPostingView { doc: DocIdx(d), ef, we }
                        }))
                    }
                    None => {
                        let mut out = Vec::with_capacity(r.df);
                        self.visit_entity_list(&r, |d, ef, we| {
                            out.push(EntityPostingView { doc: DocIdx(d), ef, we });
                        });
                        Box::new(out.into_iter())
                    }
                },
            };
        iter
    }

    /// Resolves a term to its scoring ingredients on whichever store backs
    /// this index. `flat` carries the dense CSR id on the flat store (the
    /// packed mirror may be compiled out there); on the mapped store the
    /// postings only exist packed, so `flat` is `None` and `packed`/`local`
    /// address the owning shard view.
    pub(crate) fn resolve_term(&self, term: &str) -> Option<ResolvedTerm<'_>> {
        match self.mapped.as_deref() {
            None => {
                let &id = self.terms.ids.get(term)?;
                Some(ResolvedTerm {
                    irf: self.terms.irf[id as usize],
                    max_tf: self.terms.max_tf[id as usize],
                    df: self.terms.list(id).0.len(),
                    packed: &self.packed_terms,
                    local: id,
                    flat: Some(id),
                })
            }
            Some(m) => {
                let g = m.find_term(term)?;
                let (t, local) = m.term_side(g);
                Some(ResolvedTerm {
                    irf: t.irf[local as usize],
                    max_tf: t.max_tf[local as usize],
                    df: mapped::list_len(&t.packed, local),
                    packed: &t.packed,
                    local,
                    flat: None,
                })
            }
        }
    }

    /// Entity-side twin of [`Self::resolve_term`].
    pub(crate) fn resolve_entity(&self, entity: EntityId) -> Option<ResolvedEntity<'_>> {
        match self.mapped.as_deref() {
            None => {
                let &id = self.entities.ids.get(&entity)?;
                Some(ResolvedEntity {
                    eirf: self.entities.eirf[id as usize],
                    max_contrib: self.entities.max_contrib[id as usize],
                    df: self.entities.list(id).0.len(),
                    packed: &self.packed_entities,
                    local: id,
                    flat: Some(id),
                })
            }
            Some(m) => {
                let g = m.find_entity(entity.0)?;
                let (e, local) = m.entity_side(g);
                Some(ResolvedEntity {
                    eirf: e.eirf[local as usize],
                    max_contrib: e.max_contrib[local as usize],
                    df: mapped::list_len(&e.packed, local),
                    packed: &e.packed,
                    local,
                    flat: None,
                })
            }
        }
    }

    /// Streams the `(doc, tf)` pairs of a resolved term list in ascending
    /// doc order. The flat store walks its CSR slice; the mapped store
    /// decodes blocks sequentially — the same posting sequence either way,
    /// so downstream float accumulation is bit-identical.
    pub(crate) fn visit_term_list(&self, r: &ResolvedTerm<'_>, mut f: impl FnMut(u32, u32)) {
        if let Some(id) = r.flat {
            let (docs, tfs) = self.terms.list(id);
            for (&d, &tf) in docs.iter().zip(tfs) {
                f(d, tf);
            }
            return;
        }
        let (bs, be) = r.packed.list_blocks(r.local);
        let mut dbuf = [0u32; BLOCK_SIZE];
        let mut fbuf = [0u32; BLOCK_SIZE];
        let mut prev = -1i64;
        for b in bs..be {
            let (n, _) = r.packed.decode_block(b, prev, &mut dbuf, &mut fbuf);
            for (&d, &tf) in dbuf[..n].iter().zip(&fbuf[..n]) {
                f(d, tf);
            }
            prev = i64::from(r.packed.last_doc[b]);
        }
    }

    /// Entity-side twin of [`Self::visit_term_list`]: `(doc, ef, we)`.
    pub(crate) fn visit_entity_list(&self, r: &ResolvedEntity<'_>, mut f: impl FnMut(u32, u32, f64)) {
        if let Some(id) = r.flat {
            let (docs, efs, wes) = self.entities.list(id);
            for ((&d, &ef), &we) in docs.iter().zip(efs).zip(wes) {
                f(d, ef, we);
            }
            return;
        }
        let (bs, be) = r.packed.list_blocks(r.local);
        let mut dbuf = [0u32; BLOCK_SIZE];
        let mut fbuf = [0u32; BLOCK_SIZE];
        let mut wbuf = [0.0f64; BLOCK_SIZE];
        let mut prev = -1i64;
        for b in bs..be {
            let (n, _) = r.packed.decode_entity_block(b, prev, &mut dbuf, &mut fbuf, &mut wbuf);
            for ((&d, &ef), &we) in dbuf[..n].iter().zip(&fbuf[..n]).zip(&wbuf[..n]) {
                f(d, ef, we);
            }
            prev = i64::from(r.packed.last_doc[b]);
        }
    }

    /// Eq. 1 accumulation into the dense scratch: one combined score per
    /// touched document. The contribution order per document — query terms
    /// in order, then query entities in order, postings ascending by doc —
    /// reproduces the reference scorer's float-addition sequence exactly.
    ///
    /// Returns the number of postings traversed, accumulated locally so
    /// the hot loop carries no atomic traffic; the caller publishes it to
    /// the observability counters once.
    fn accumulate(&self, query: &Query, alpha: f64, s: &mut Scratch) -> u64 {
        let mut traversed = 0u64;
        s.begin(self.doc_count());
        if alpha > 0.0 {
            for term in &query.terms {
                let Some(r) = self.resolve_term(term) else {
                    continue;
                };
                let w = alpha * r.irf * r.irf;
                traversed += r.df as u64;
                self.visit_term_list(&r, |doc, tf| {
                    let d = doc as usize;
                    if s.stamps[d] != s.epoch {
                        s.stamps[d] = s.epoch;
                        s.acc[d] = 0.0;
                        s.touched.push(doc);
                    }
                    s.acc[d] += w * tf as f64;
                });
            }
        }
        if alpha < 1.0 {
            for &entity in &query.entities {
                let Some(r) = self.resolve_entity(entity) else {
                    continue;
                };
                let w = (1.0 - alpha) * r.eirf * r.eirf;
                traversed += r.df as u64;
                self.visit_entity_list(&r, |doc, ef, we| {
                    let d = doc as usize;
                    if s.stamps[d] != s.epoch {
                        s.stamps[d] = s.epoch;
                        s.acc[d] = 0.0;
                        s.touched.push(doc);
                    }
                    s.acc[d] += w * ef as f64 * we;
                });
            }
        }
        traversed
    }

    /// Scores the whole collection against `query` with mixing weight
    /// `alpha` (Eq. 1) and returns every positive-scoring document, sorted
    /// by descending score (ties broken by ascending doc for determinism).
    pub fn score_all(&self, query: &Query, alpha: f64) -> Vec<ScoredDoc> {
        let _span = rightcrowd_obs::span!("index.score_all");
        let alpha = alpha.clamp(0.0, 1.0);
        SCRATCH.with(|cell| {
            let s = &mut *cell.borrow_mut();
            let traversed = self.accumulate(query, alpha, s);
            crate::stats::publish(TraversalStats { traversed, ..TraversalStats::default() });
            let mut scored: Vec<ScoredDoc> = s
                .touched
                .iter()
                .filter_map(|&doc| {
                    let score = s.acc[doc as usize];
                    (score > 0.0).then_some(ScoredDoc { doc: DocIdx(doc), score })
                })
                .collect();
            sort_scored(&mut scored);
            scored
        })
    }

    /// Like [`Self::score_all`] but returns only the `k` best matching
    /// documents among those accepted by `filter`, using a bounded
    /// min-heap instead of sorting the whole match set — O(n log k)
    /// rather than O(n log n) — plus MaxScore-style pruning: once `k`
    /// eligible documents each hold a partial score that no unseen
    /// document can still reach (per-list upper bounds from the
    /// precomputed `irf`/`eirf` and per-list maxima), documents first
    /// appearing in the remaining lists are skipped without accumulation.
    ///
    /// Pruning invariant: a skipped document's best achievable score is
    /// strictly below the final `k`-th best eligible score, so pruning
    /// never changes which documents are returned, their scores (documents
    /// that survive accumulate every contribution), or their order.
    ///
    /// The result is identical (same documents, same order, same
    /// tie-breaking) to filtering and truncating [`Self::score_all`].
    pub fn score_top_k<F>(&self, query: &Query, alpha: f64, k: usize, filter: F) -> Vec<ScoredDoc>
    where
        F: Fn(DocIdx) -> bool,
    {
        if k == 0 {
            return Vec::new();
        }
        let _span = rightcrowd_obs::span!("index.score_top_k");
        let alpha = alpha.clamp(0.0, 1.0);

        // Observability tallies, accumulated locally (no atomics in the
        // hot loop) and published once on the way out.
        let mut st = TraversalStats::default();
        let blocks = self.blocks_enabled();

        // Active posting lists in accumulation order (terms before
        // entities, query order within each side), each resolved against
        // the backing store and paired with an upper bound on its
        // per-document contribution.
        enum ListRef<'a> {
            Term(ResolvedTerm<'a>),
            Entity(ResolvedEntity<'a>),
        }
        let mut lists: Vec<(ListRef<'_>, f64)> = Vec::new();
        if alpha > 0.0 {
            for term in &query.terms {
                if let Some(r) = self.resolve_term(term) {
                    let w = alpha * r.irf * r.irf;
                    let ub = w * r.max_tf as f64;
                    lists.push((ListRef::Term(r), ub));
                }
            }
        }
        if alpha < 1.0 {
            for &entity in &query.entities {
                if let Some(r) = self.resolve_entity(entity) {
                    let w = (1.0 - alpha) * r.eirf * r.eirf;
                    let ub = w * r.max_contrib;
                    lists.push((ListRef::Entity(r), ub));
                }
            }
        }

        // remaining[j] bounds what lists j.. can still add to any document.
        let mut remaining = vec![0.0f64; lists.len() + 1];
        for j in (0..lists.len()).rev() {
            remaining[j] = remaining[j + 1] + lists[j].1;
        }

        SCRATCH.with(|cell| {
            let s = &mut *cell.borrow_mut();
            s.begin(self.doc_count());

            // filter() results, memoised so the predicate (which may be an
            // attribution lookup) runs at most once per document.
            let mut filter_cache: HashMap<u32, bool> = HashMap::new();
            let mut eligible = |doc: u32| -> bool {
                *filter_cache
                    .entry(doc)
                    .or_insert_with(|| filter(DocIdx(doc)))
            };

            // Decoded-block staging buffers (block path only).
            let mut dbuf = [0u32; BLOCK_SIZE];
            let mut fbuf = [0u32; BLOCK_SIZE];
            let mut wbuf = [0.0f64; BLOCK_SIZE];

            let mut skip_new = false;
            for (j, (list, _)) in lists.iter().enumerate() {
                // θ = k-th best eligible partial score. Scores only grow,
                // so θ lower-bounds the final k-th best; a document first
                // seen now gains at most `remaining[j]`. The 1e-9 slack
                // absorbs float reassociation between the bound sum and a
                // document's actual accumulation order, keeping the skip
                // decision sound.
                let mut theta: Option<f64> = None;
                if !skip_new && j > 0 && s.touched.len() >= k {
                    let mut partials: Vec<f64> = s
                        .touched
                        .iter()
                        .filter(|&&doc| eligible(doc))
                        .map(|&doc| s.acc[doc as usize])
                        .collect();
                    if partials.len() >= k {
                        let nth = partials.len() - k;
                        let (_, &mut th, _) = partials.select_nth_unstable_by(nth, |a, b| {
                            a.partial_cmp(b).expect("scores are finite")
                        });
                        theta = Some(th);
                        if remaining[j] * (1.0 + 1e-9) < th {
                            skip_new = true;
                        }
                    }
                }

                // Sorted snapshot of the already-touched documents, built
                // lazily the first time this list considers skipping a
                // block. A document has at most one posting per list, so
                // documents admitted *during* this list can never recur in
                // a later block of it — the snapshot only has to cover
                // documents admitted up to the moment it is taken, which
                // it does by construction.
                let mut touched_sorted: Option<Vec<u32>> = None;
                let mut snapshot = |touched: &[u32], lo: u32, hi: u32| -> bool {
                    let ts = touched_sorted.get_or_insert_with(|| {
                        let mut v = touched.to_vec();
                        v.sort_unstable();
                        v
                    });
                    // Any touched doc inside [lo, hi]?
                    ts.partition_point(|&d| d < lo) < ts.partition_point(|&d| d <= hi)
                };

                match list {
                    ListRef::Term(r) => {
                        let w = alpha * r.irf * r.irf;
                        if blocks {
                            let packed = r.packed;
                            let (bs, be) = packed.list_blocks(r.local);
                            st.blocks_total += (be - bs) as u64;
                            let mut prev = -1i64;
                            for b in bs..be {
                                let last = packed.last_doc[b];
                                // A doc first seen in this block gains at
                                // most the block max from this list plus
                                // everything after it; below θ, the block
                                // can only matter through already-touched
                                // docs — skip it whole when none are in
                                // its doc range.
                                let prunable = skip_new
                                    || theta.is_some_and(|t| {
                                        (w * packed.max_score[b] + remaining[j + 1])
                                            * (1.0 + 1e-9)
                                            < t
                                    });
                                if prunable && !snapshot(&s.touched, (prev + 1) as u32, last) {
                                    let count = packed.counts[b] as u64;
                                    st.pruned += count;
                                    st.postings_skipped += count;
                                    st.blocks_skipped += 1;
                                    prev = i64::from(last);
                                    continue;
                                }
                                let (n, bytes) =
                                    packed.decode_block(b, prev, &mut dbuf, &mut fbuf);
                                st.blocks_decoded += 1;
                                st.postings_bytes_decoded += bytes;
                                st.traversed += n as u64;
                                for (&doc, &tf) in dbuf[..n].iter().zip(&fbuf[..n]) {
                                    let d = doc as usize;
                                    if s.stamps[d] != s.epoch {
                                        if skip_new {
                                            st.pruned += 1;
                                            continue;
                                        }
                                        s.stamps[d] = s.epoch;
                                        s.acc[d] = 0.0;
                                        s.touched.push(doc);
                                    }
                                    s.acc[d] += w * tf as f64;
                                }
                                prev = i64::from(last);
                            }
                        } else {
                            let (docs, tfs) =
                                self.terms.list(r.flat.expect("flat store when blocks are off"));
                            st.traversed += docs.len() as u64;
                            for (&doc, &tf) in docs.iter().zip(tfs) {
                                let d = doc as usize;
                                if s.stamps[d] != s.epoch {
                                    if skip_new {
                                        st.pruned += 1;
                                        continue;
                                    }
                                    s.stamps[d] = s.epoch;
                                    s.acc[d] = 0.0;
                                    s.touched.push(doc);
                                }
                                s.acc[d] += w * tf as f64;
                            }
                        }
                    }
                    ListRef::Entity(r) => {
                        let w = (1.0 - alpha) * r.eirf * r.eirf;
                        if blocks {
                            let packed = r.packed;
                            let (bs, be) = packed.list_blocks(r.local);
                            st.blocks_total += (be - bs) as u64;
                            let mut prev = -1i64;
                            for b in bs..be {
                                let last = packed.last_doc[b];
                                let prunable = skip_new
                                    || theta.is_some_and(|t| {
                                        (w * packed.max_score[b] + remaining[j + 1])
                                            * (1.0 + 1e-9)
                                            < t
                                    });
                                if prunable && !snapshot(&s.touched, (prev + 1) as u32, last) {
                                    let count = packed.counts[b] as u64;
                                    st.pruned += count;
                                    st.postings_skipped += count;
                                    st.blocks_skipped += 1;
                                    prev = i64::from(last);
                                    continue;
                                }
                                let (n, bytes) = packed.decode_entity_block(
                                    b, prev, &mut dbuf, &mut fbuf, &mut wbuf,
                                );
                                st.blocks_decoded += 1;
                                st.postings_bytes_decoded += bytes;
                                st.traversed += n as u64;
                                for ((&doc, &ef), &we) in
                                    dbuf[..n].iter().zip(&fbuf[..n]).zip(&wbuf[..n])
                                {
                                    let d = doc as usize;
                                    if s.stamps[d] != s.epoch {
                                        if skip_new {
                                            st.pruned += 1;
                                            continue;
                                        }
                                        s.stamps[d] = s.epoch;
                                        s.acc[d] = 0.0;
                                        s.touched.push(doc);
                                    }
                                    s.acc[d] += w * ef as f64 * we;
                                }
                                prev = i64::from(last);
                            }
                        } else {
                            let (docs, efs, wes) = self
                                .entities
                                .list(r.flat.expect("flat store when blocks are off"));
                            st.traversed += docs.len() as u64;
                            for ((&doc, &ef), &we) in docs.iter().zip(efs).zip(wes) {
                                let d = doc as usize;
                                if s.stamps[d] != s.epoch {
                                    if skip_new {
                                        st.pruned += 1;
                                        continue;
                                    }
                                    s.stamps[d] = s.epoch;
                                    s.acc[d] = 0.0;
                                    s.touched.push(doc);
                                }
                                s.acc[d] += w * ef as f64 * we;
                            }
                        }
                    }
                }
            }
            st.admitted = s.touched.len() as u64;
            crate::stats::publish(st);

            let mut heap: BinaryHeap<Worst> = BinaryHeap::with_capacity(heap_capacity(k));
            for &doc in &s.touched {
                let score = s.acc[doc as usize];
                if score <= 0.0 || !eligible(doc) {
                    continue;
                }
                heap.push(Worst(ScoredDoc { doc: DocIdx(doc), score }));
                if heap.len() > k {
                    heap.pop();
                }
            }
            let mut out: Vec<ScoredDoc> = heap.into_iter().map(|w| w.0).collect();
            sort_scored(&mut out);
            out
        })
    }

    /// One posting traversal yielding the α-free factorisation of Eq. 1
    /// per matching document, in ascending doc order. Feed the result to
    /// [`recombine`] / [`recombine_top_k`] to obtain the ranking for any
    /// α without touching the postings again.
    pub fn score_components(&self, query: &Query) -> Vec<ComponentScore> {
        let _span = rightcrowd_obs::span!("index.score_components");
        let mut traversed = 0u64;
        SCRATCH.with(|cell| {
            let s = &mut *cell.borrow_mut();
            s.begin(self.doc_count());
            for term in &query.terms {
                let Some(r) = self.resolve_term(term) else {
                    continue;
                };
                let w = r.irf * r.irf;
                traversed += r.df as u64;
                self.visit_term_list(&r, |doc, tf| {
                    let d = doc as usize;
                    if s.stamps[d] != s.epoch {
                        s.stamps[d] = s.epoch;
                        s.acc[d] = 0.0;
                        s.acc2[d] = 0.0;
                        s.touched.push(doc);
                    }
                    s.acc[d] += w * tf as f64;
                });
            }
            for &entity in &query.entities {
                let Some(r) = self.resolve_entity(entity) else {
                    continue;
                };
                let w = r.eirf * r.eirf;
                traversed += r.df as u64;
                self.visit_entity_list(&r, |doc, ef, we| {
                    let d = doc as usize;
                    if s.stamps[d] != s.epoch {
                        s.stamps[d] = s.epoch;
                        s.acc[d] = 0.0;
                        s.acc2[d] = 0.0;
                        s.touched.push(doc);
                    }
                    s.acc2[d] += w * ef as f64 * we;
                });
            }
            crate::stats::publish(TraversalStats { traversed, ..TraversalStats::default() });
            s.touched.sort_unstable();
            s.touched
                .iter()
                .map(|&doc| ComponentScore {
                    doc: DocIdx(doc),
                    term_sum: s.acc[doc as usize],
                    entity_sum: s.acc2[doc as usize],
                })
                .collect()
        })
    }
}

/// Applies the Eq. 1 mix `α · term_sum + (1 − α) · entity_sum` to factored
/// [`ComponentScore`]s and returns every positive-scoring document in the
/// [`InvertedIndex::score_all`] order (descending score, then ascending
/// doc).
pub fn recombine(components: &[ComponentScore], alpha: f64) -> Vec<ScoredDoc> {
    let alpha = alpha.clamp(0.0, 1.0);
    let mut scored: Vec<ScoredDoc> = components
        .iter()
        .filter_map(|c| {
            let score = alpha * c.term_sum + (1.0 - alpha) * c.entity_sum;
            (score > 0.0).then_some(ScoredDoc { doc: c.doc, score })
        })
        .collect();
    sort_scored(&mut scored);
    scored
}

/// Like [`recombine`] but keeps only the `k` best documents accepted by
/// `filter`, mirroring [`InvertedIndex::score_top_k`] semantics.
pub fn recombine_top_k<F>(
    components: &[ComponentScore],
    alpha: f64,
    k: usize,
    filter: F,
) -> Vec<ScoredDoc>
where
    F: Fn(DocIdx) -> bool,
{
    if k == 0 {
        return Vec::new();
    }
    let alpha = alpha.clamp(0.0, 1.0);
    let mut heap: BinaryHeap<Worst> = BinaryHeap::with_capacity(heap_capacity(k));
    for c in components {
        let score = alpha * c.term_sum + (1.0 - alpha) * c.entity_sum;
        if score <= 0.0 || !filter(c.doc) {
            continue;
        }
        heap.push(Worst(ScoredDoc { doc: c.doc, score }));
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut out: Vec<ScoredDoc> = heap.into_iter().map(|w| w.0).collect();
    sort_scored(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;

    fn terms(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    /// Three docs: one about swimming, one about cooking, one mixed.
    fn sample() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_document(&terms(&["swim", "pool", "train", "swim"]), &[(EntityId::new(1), 0.8)]);
        b.add_document(&terms(&["cook", "pasta", "recipe"]), &[]);
        b.add_document(&terms(&["swim", "cook"]), &[(EntityId::new(1), 0.2), (EntityId::new(2), 0.5)]);
        b.build()
    }

    #[test]
    fn irf_decreases_with_df() {
        let idx = sample();
        // "pool" occurs in 1 doc, "swim" in 2 → rarer term has higher irf.
        assert!(idx.irf("pool") > idx.irf("swim"));
        assert_eq!(idx.irf("unseen"), 0.0);
        assert!(idx.eirf(EntityId::new(2)) > idx.eirf(EntityId::new(1)));
        assert_eq!(idx.eirf(EntityId::new(99)), 0.0);
    }

    #[test]
    fn pure_term_query_ranks_by_tf_irf() {
        let idx = sample();
        let hits = idx.score_all(&Query::from_terms(["swim"]), 1.0);
        assert_eq!(hits.len(), 2);
        // Doc 0 has tf=2, doc 2 has tf=1 → doc 0 first.
        assert_eq!(hits[0].doc, DocIdx(0));
        assert_eq!(hits[1].doc, DocIdx(2));
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn pure_entity_query_uses_dscore_weight() {
        let idx = sample();
        let q = Query { terms: vec![], entities: vec![EntityId::new(1)] };
        let hits = idx.score_all(&q, 0.0);
        assert_eq!(hits.len(), 2);
        // Same ef=1 in both docs, but doc 0 has higher dscore → we bigger.
        assert_eq!(hits[0].doc, DocIdx(0));
    }

    #[test]
    fn alpha_mixes_the_two_signals() {
        let idx = sample();
        let q = Query {
            terms: terms(&["cook"]),
            entities: vec![EntityId::new(1)],
        };
        let text_only = idx.score_all(&q, 1.0);
        let entity_only = idx.score_all(&q, 0.0);
        let mixed = idx.score_all(&q, 0.5);
        // Text matches docs 1, 2; entity matches docs 0, 2; the mix
        // matches the union.
        assert_eq!(text_only.len(), 2);
        assert_eq!(entity_only.len(), 2);
        assert_eq!(mixed.len(), 3);
        // Doc 2 gets both contributions in the mix.
        assert_eq!(mixed[0].doc, DocIdx(2));
    }

    #[test]
    fn alpha_is_clamped() {
        let idx = sample();
        let q = Query::from_terms(["swim"]);
        let clamped = idx.score_all(&q, 42.0);
        let one = idx.score_all(&q, 1.0);
        assert_eq!(clamped, one);
    }

    #[test]
    fn empty_query_matches_nothing() {
        let idx = sample();
        assert!(idx.score_all(&Query::default(), 0.5).is_empty());
    }

    #[test]
    fn repeated_query_terms_double_contribution() {
        let idx = sample();
        let once = idx.score_all(&Query::from_terms(["swim"]), 1.0);
        let twice = idx.score_all(&Query::from_terms(["swim", "swim"]), 1.0);
        assert!((twice[0].score - 2.0 * once[0].score).abs() < 1e-9);
    }

    #[test]
    fn top_k_matches_truncated_score_all() {
        let idx = sample();
        let q = Query {
            terms: terms(&["swim", "cook"]),
            entities: vec![EntityId::new(1)],
        };
        let full = idx.score_all(&q, 0.5);
        for k in 0..=full.len() + 2 {
            let topk = idx.score_top_k(&q, 0.5, k, |_| true);
            assert_eq!(topk.len(), k.min(full.len()));
            assert_eq!(&topk[..], &full[..topk.len()], "k = {k}");
        }
    }

    #[test]
    fn top_k_respects_filter() {
        let idx = sample();
        let q = Query::from_terms(["swim"]);
        let only_doc2 = idx.score_top_k(&q, 1.0, 10, |d| d == DocIdx(2));
        assert_eq!(only_doc2.len(), 1);
        assert_eq!(only_doc2[0].doc, DocIdx(2));
        let none = idx.score_top_k(&q, 1.0, 10, |_| false);
        assert!(none.is_empty());
    }

    #[test]
    fn top_k_tie_break_matches_full_sort() {
        let mut b = IndexBuilder::new();
        for _ in 0..6 {
            b.add_document(&terms(&["x"]), &[]);
        }
        let idx = b.build();
        let q = Query::from_terms(["x"]);
        let full = idx.score_all(&q, 1.0);
        let top3 = idx.score_top_k(&q, 1.0, 3, |_| true);
        assert_eq!(&top3[..], &full[..3]);
        assert_eq!(top3[0].doc, DocIdx(0));
        assert_eq!(top3[2].doc, DocIdx(2));
    }

    #[test]
    fn deterministic_tie_break_by_doc() {
        let mut b = IndexBuilder::new();
        b.add_document(&terms(&["x"]), &[]);
        b.add_document(&terms(&["x"]), &[]);
        let idx = b.build();
        let hits = idx.score_all(&Query::from_terms(["x"]), 1.0);
        assert_eq!(hits[0].doc, DocIdx(0));
        assert_eq!(hits[1].doc, DocIdx(1));
    }

    /// A wider index where pruning actually activates: many single-term
    /// docs with spread-out tfs, so a small k lets θ beat the remaining
    /// upper bounds after the first list.
    fn wide() -> (InvertedIndex, Query) {
        let mut b = IndexBuilder::new();
        for i in 0..200u32 {
            // tf varies 1..=20; "rare" appears only in a few docs.
            let tf = (i % 20 + 1) as usize;
            let mut ts = vec!["common".to_string(); tf];
            if i % 37 == 0 {
                ts.push("rare".to_string());
            }
            let ents = if i % 11 == 0 {
                vec![(EntityId::new(1), (i % 10) as f64 / 10.0)]
            } else {
                vec![]
            };
            b.add_document(&ts, &ents);
        }
        let idx = b.build();
        let q = Query {
            terms: terms(&["common", "rare"]),
            entities: vec![EntityId::new(1)],
        };
        (idx, q)
    }

    #[test]
    fn pruned_top_k_matches_score_all_across_alphas_and_ks() {
        let (idx, q) = wide();
        for &alpha in &[0.0, 0.3, 0.6, 1.0] {
            let full = idx.score_all(&q, alpha);
            for &k in &[1usize, 3, 10, 50, 500] {
                let topk = idx.score_top_k(&q, alpha, k, |_| true);
                assert_eq!(&topk[..], &full[..k.min(full.len())], "alpha {alpha} k {k}");
            }
        }
    }

    #[test]
    fn pruned_top_k_matches_filtered_score_all() {
        let (idx, q) = wide();
        let filter = |d: DocIdx| !d.0.is_multiple_of(3);
        let full: Vec<ScoredDoc> = idx
            .score_all(&q, 0.6)
            .into_iter()
            .filter(|s| filter(s.doc))
            .collect();
        for &k in &[1usize, 5, 25] {
            let topk = idx.score_top_k(&q, 0.6, k, filter);
            assert_eq!(&topk[..], &full[..k.min(full.len())], "k {k}");
        }
    }

    #[test]
    fn components_recombine_to_score_all() {
        let (idx, q) = wide();
        let components = idx.score_components(&q);
        // Components arrive in ascending doc order.
        assert!(components.windows(2).all(|w| w[0].doc < w[1].doc));
        for &alpha in &[0.0, 0.25, 0.6, 1.0] {
            let direct = idx.score_all(&q, alpha);
            let factored = recombine(&components, alpha);
            assert_eq!(direct.len(), factored.len(), "alpha {alpha}");
            for (a, b) in direct.iter().zip(&factored) {
                assert_eq!(a.doc, b.doc, "alpha {alpha}");
                assert!((a.score - b.score).abs() <= 1e-12 * a.score.max(1.0));
            }
        }
    }

    #[test]
    fn recombine_top_k_matches_direct_top_k() {
        let (idx, q) = wide();
        let components = idx.score_components(&q);
        let filter = |d: DocIdx| d.0.is_multiple_of(2);
        for &alpha in &[0.0, 0.6, 1.0] {
            let direct = idx.score_top_k(&q, alpha, 10, filter);
            let factored = recombine_top_k(&components, alpha, 10, filter);
            assert_eq!(direct.len(), factored.len());
            for (a, b) in direct.iter().zip(&factored) {
                assert_eq!(a.doc, b.doc, "alpha {alpha}");
                assert!((a.score - b.score).abs() <= 1e-12 * a.score.max(1.0));
            }
        }
    }

    #[test]
    fn posting_iterators_expose_csr_lists() {
        let idx = sample();
        let swim: Vec<(DocIdx, u32)> = idx.term_postings("swim").collect();
        assert_eq!(swim, vec![(DocIdx(0), 2), (DocIdx(2), 1)]);
        assert_eq!(idx.term_postings("unseen").count(), 0);
        let e1: Vec<EntityPostingView> = idx.entity_postings(EntityId::new(1)).collect();
        assert_eq!(e1.len(), 2);
        assert_eq!(e1[0].doc, DocIdx(0));
        assert!((e1[0].we - 1.8).abs() < 1e-12);
        assert_eq!(idx.entity_postings(EntityId::new(99)).count(), 0);
    }

    #[test]
    fn interning_is_dense_and_counts_match() {
        let idx = sample();
        assert_eq!(idx.term_count(), 6); // swim pool train cook pasta recipe
        assert_eq!(idx.entity_count(), 2);
        assert_eq!(idx.doc_count(), 3);
    }
}
