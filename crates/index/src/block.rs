//! Block-compressed postings: fixed-size blocks of delta-encoded,
//! bit-packed doc ids with per-block skip metadata.
//!
//! Every CSR posting list is cut into blocks of up to [`BLOCK_SIZE`]
//! postings. A block stores its doc ids as deltas from the previous doc
//! (minus one — postings are strictly ascending, so every delta is
//! `≥ 1` and the encoded gap is `≥ 0`), bit-packed at the smallest fixed
//! width that fits the block's largest gap. Frequencies travel the same
//! way (as `tf − 1` / `ef − 1`, both `≥ 1` by construction); entity
//! blocks append their Eq. 2 weights as raw IEEE-754 bit patterns so the
//! decode is bit-exact. Each region starts byte-aligned, and every value
//! in a block shares one width — a branch-free, SIMD-friendly fixed-width
//! decode loop.
//!
//! Alongside the payload each block records the metadata the Block-Max
//! MaxScore pruner needs *without* decompressing anything: the block's
//! last doc id (to test whether an already-touched document can appear in
//! the block) and the block's maximum per-posting weight (`max tf` for
//! terms, `max ef·we` for entities — the same quantities the per-list
//! bounds are built from, so the per-block bound is exact, never an
//! estimate).
//!
//! Packing is a pure function of the CSR arrays: equal indexes always
//! pack to identical bytes, which keeps snapshot re-saves byte-identical.
//! [`unpack_terms`] / [`unpack_entities`] are the untrusted-input path
//! (snapshot decode): they re-validate every structural invariant —
//! block shapes, widths, payload spans, doc monotonicity, and that the
//! recorded block maxima match the decoded postings bit for bit — so
//! forged block metadata is rejected instead of silently unsoundly
//! pruning.

use crate::backing::Seg;
use crate::raw::{EntityParts, TermParts};

/// Postings per block. 128 keeps a whole decoded block (docs + freqs +
/// weights) inside two cache lines per array while leaving enough
/// postings per block for skipping to pay.
pub const BLOCK_SIZE: usize = 128;

/// One posting family (terms or entities) in block-compressed form.
///
/// Blocks are stored structure-of-arrays: `block_offsets` is a CSR over
/// blocks (list `i` owns blocks `block_offsets[i]..block_offsets[i+1]`),
/// and the per-block metadata arrays are indexed by block id. The
/// variable-width payloads live concatenated in `data`, addressed through
/// `data_offsets`.
/// Every array is a [`Seg`], so a packed side can either own its storage
/// (builder / streamed decode) or borrow it from an mmap'd `RCSHRD02`
/// shard — the decode loops below read through `Deref<[T]>` either way.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PackedPostings {
    /// CSR over blocks: `n_lists + 1` entries, ascending.
    pub block_offsets: Seg<u32>,
    /// Last doc id of each block — the skip test reads this, not the data.
    pub last_doc: Seg<u32>,
    /// Postings in each block (`1..=BLOCK_SIZE`).
    pub counts: Seg<u32>,
    /// Bit width of the block's doc-gap values (`0..=32`).
    pub doc_bits: Seg<u8>,
    /// Bit width of the block's frequency values (`0..=32`).
    pub aux_bits: Seg<u8>,
    /// Block-max weight: `max tf` (terms) or `max ef·we` (entities).
    pub max_score: Seg<f64>,
    /// Payload extents: `n_blocks + 1` entries into `data`.
    pub data_offsets: Seg<u64>,
    /// Concatenated block payloads.
    pub data: Seg<u8>,
}

/// Bits needed to represent `v` (0 for 0).
#[inline]
fn bits_for(v: u32) -> u8 {
    (32 - v.leading_zeros()) as u8
}

/// Appends `values` at a fixed `width` bits each, little-endian bit
/// order, padding the final byte with zeros.
fn pack_bits(values: &[u32], width: u8, out: &mut Vec<u8>) {
    if width == 0 {
        return;
    }
    let width = width as u32;
    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    for &v in values {
        acc |= (v as u64) << nbits;
        nbits += width;
        while nbits >= 8 {
            out.push((acc & 0xFF) as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push((acc & 0xFF) as u8);
    }
}

/// Decodes `out.len()` fixed-width values from `bytes`, returning the
/// bytes consumed (`⌈len·width/8⌉`). The caller guarantees `bytes` holds
/// at least that many bytes.
#[inline]
fn unpack_bits(bytes: &[u8], width: u8, out: &mut [u32]) -> usize {
    if width == 0 {
        out.fill(0);
        return 0;
    }
    let width = width as u32;
    let mask: u64 = if width == 32 { u64::from(u32::MAX) } else { (1u64 << width) - 1 };
    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    let mut pos = 0usize;
    for v in out.iter_mut() {
        while nbits < width {
            acc |= (bytes[pos] as u64) << nbits;
            pos += 1;
            nbits += 8;
        }
        *v = (acc & mask) as u32;
        acc >>= width;
        nbits -= width;
    }
    pos
}

/// The payload bytes a block occupies: gaps, then frequencies, then (for
/// entity blocks) `count` raw `f64` weights. Every region byte-aligned.
#[inline]
fn block_payload_len(count: usize, doc_bits: u8, aux_bits: u8, with_weights: bool) -> usize {
    let docs = (count * doc_bits as usize).div_ceil(8);
    let aux = (count * aux_bits as usize).div_ceil(8);
    docs + aux + if with_weights { count * 8 } else { 0 }
}

// ----- packing ----------------------------------------------------------

struct Packer {
    p: PackedPostings,
}

impl Packer {
    fn new() -> Self {
        Packer {
            p: PackedPostings {
                block_offsets: vec![0].into(),
                data_offsets: vec![0].into(),
                ..PackedPostings::default()
            },
        }
    }

    /// Encodes one block's doc gaps (relative to `prev`, `-1` at a list
    /// start) and returns the running `prev` for the next block.
    fn push_docs(&mut self, docs: &[u32], mut prev: i64) -> (i64, u8) {
        let mut gaps = [0u32; BLOCK_SIZE];
        for (g, &d) in gaps.iter_mut().zip(docs) {
            debug_assert!(i64::from(d) > prev, "postings must be strictly ascending");
            *g = (i64::from(d) - prev - 1) as u32;
            prev = i64::from(d);
        }
        let n = docs.len();
        let width = bits_for(gaps[..n].iter().copied().max().unwrap_or(0));
        self.p.last_doc.to_mut().push(*docs.last().expect("blocks are never empty"));
        self.p.counts.to_mut().push(n as u32);
        self.p.doc_bits.to_mut().push(width);
        pack_bits(&gaps[..n], width, self.p.data.to_mut());
        (prev, width)
    }

    /// Encodes one block's frequencies as `freq − 1`.
    fn push_freqs(&mut self, freqs: &[u32]) {
        let mut aux = [0u32; BLOCK_SIZE];
        for (a, &f) in aux.iter_mut().zip(freqs) {
            debug_assert!(f > 0, "frequencies are always positive");
            *a = f - 1;
        }
        let n = freqs.len();
        let width = bits_for(aux[..n].iter().copied().max().unwrap_or(0));
        self.p.aux_bits.to_mut().push(width);
        pack_bits(&aux[..n], width, self.p.data.to_mut());
    }

    fn end_block(&mut self) {
        let len = self.p.data.len() as u64;
        self.p.data_offsets.to_mut().push(len);
    }

    fn end_list(&mut self) {
        let blocks = self.p.counts.len() as u32;
        self.p.block_offsets.to_mut().push(blocks);
    }
}

/// Packs term posting lists, given as `(docs, tfs)` slices in dense-id
/// order. Deterministic: equal inputs pack to identical bytes.
pub fn pack_term_lists<'a>(
    lists: impl Iterator<Item = (&'a [u32], &'a [u32])>,
) -> PackedPostings {
    let mut pk = Packer::new();
    for (docs, tfs) in lists {
        let mut prev = -1i64;
        for (db, tb) in docs.chunks(BLOCK_SIZE).zip(tfs.chunks(BLOCK_SIZE)) {
            (prev, _) = pk.push_docs(db, prev);
            pk.push_freqs(tb);
            pk.p.max_score.to_mut().push(tb.iter().copied().max().unwrap_or(0) as f64);
            pk.end_block();
        }
        pk.end_list();
    }
    pk.p
}

/// Packs entity posting lists, given as `(docs, efs, we)` slices in dense
/// slot order. Weights travel as raw bit patterns, so the round trip is
/// bit-exact.
pub fn pack_entity_lists<'a>(
    lists: impl Iterator<Item = (&'a [u32], &'a [u32], &'a [f64])>,
) -> PackedPostings {
    let mut pk = Packer::new();
    for (docs, efs, wes) in lists {
        let mut prev = -1i64;
        for ((db, eb), wb) in docs
            .chunks(BLOCK_SIZE)
            .zip(efs.chunks(BLOCK_SIZE))
            .zip(wes.chunks(BLOCK_SIZE))
        {
            (prev, _) = pk.push_docs(db, prev);
            pk.push_freqs(eb);
            pk.p.max_score.to_mut().push(entity_block_max(eb, wb));
            for &w in wb {
                pk.p.data.to_mut().extend_from_slice(&w.to_bits().to_le_bytes());
            }
            pk.end_block();
        }
        pk.end_list();
    }
    pk.p
}

/// Block-max entity contribution, folded left-to-right from the first
/// posting — the same selection `unpack_entities` recomputes, so the
/// stored and re-derived maxima are bit-identical.
#[inline]
fn entity_block_max(efs: &[u32], wes: &[f64]) -> f64 {
    let mut m = efs[0] as f64 * wes[0];
    for (&ef, &we) in efs.iter().zip(wes).skip(1) {
        m = m.max(ef as f64 * we);
    }
    m
}

/// [`pack_term_lists`] over a wire-facing [`TermParts`].
pub fn pack_term_parts(t: &TermParts) -> PackedPostings {
    pack_term_lists(t.offsets.windows(2).map(|w| {
        let (a, b) = (w[0] as usize, w[1] as usize);
        (&t.docs[a..b], &t.tfs[a..b])
    }))
}

/// [`pack_entity_lists`] over a wire-facing [`EntityParts`].
pub fn pack_entity_parts(e: &EntityParts) -> PackedPostings {
    pack_entity_lists(e.offsets.windows(2).map(|w| {
        let (a, b) = (w[0] as usize, w[1] as usize);
        (&e.docs[a..b], &e.efs[a..b], &e.we[a..b])
    }))
}

// ----- trusted decode (query path) --------------------------------------

impl PackedPostings {
    /// The block-id range of list `id`.
    #[inline]
    pub fn list_blocks(&self, id: u32) -> (usize, usize) {
        (
            self.block_offsets[id as usize] as usize,
            self.block_offsets[id as usize + 1] as usize,
        )
    }

    /// Total number of blocks across every list.
    pub fn block_count(&self) -> usize {
        self.counts.len()
    }

    /// Whether any list has been packed (false for the empty default,
    /// i.e. when the compressed path is disabled).
    pub fn is_packed(&self) -> bool {
        !self.block_offsets.is_empty()
    }

    #[inline]
    fn payload(&self, b: usize) -> &[u8] {
        &self.data[self.data_offsets[b] as usize..self.data_offsets[b + 1] as usize]
    }

    /// Decodes block `b`'s doc ids and frequencies into the caller's
    /// buffers. `prev` is the previous block's last doc, or `-1` at a
    /// list start. Returns `(count, payload_bytes)`. Trusted-input path:
    /// the packed state was built (or fully validated) in this process.
    #[inline]
    pub fn decode_block(
        &self,
        b: usize,
        prev: i64,
        docs: &mut [u32; BLOCK_SIZE],
        freqs: &mut [u32; BLOCK_SIZE],
    ) -> (usize, u64) {
        let n = self.counts[b] as usize;
        let payload = self.payload(b);
        let used = unpack_bits(payload, self.doc_bits[b], &mut docs[..n]);
        unpack_bits(&payload[used..], self.aux_bits[b], &mut freqs[..n]);
        let mut p = prev;
        for (d, f) in docs[..n].iter_mut().zip(&mut freqs[..n]) {
            p += i64::from(*d) + 1;
            *d = p as u32;
            *f += 1;
        }
        (n, payload.len() as u64)
    }

    /// [`Self::decode_block`] for an entity block: additionally decodes
    /// the trailing raw-bit-pattern Eq. 2 weights.
    #[inline]
    pub fn decode_entity_block(
        &self,
        b: usize,
        prev: i64,
        docs: &mut [u32; BLOCK_SIZE],
        freqs: &mut [u32; BLOCK_SIZE],
        wes: &mut [f64; BLOCK_SIZE],
    ) -> (usize, u64) {
        let (n, bytes) = self.decode_block(b, prev, docs, freqs);
        let payload = self.payload(b);
        let wstart = payload.len() - n * 8;
        for (i, chunk) in payload[wstart..].chunks_exact(8).enumerate() {
            wes[i] = f64::from_bits(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        (n, bytes)
    }
}

// ----- untrusted decode (snapshot path) ---------------------------------

fn check(ok: bool, msg: impl FnOnce() -> String) -> Result<(), String> {
    if ok {
        Ok(())
    } else {
        Err(msg())
    }
}

/// Validates the structure-of-arrays shape shared by both sides and
/// returns the block count. Also the memory-safety gate for mapped
/// stores (see [`crate::mapped`]): passing it guarantees every
/// `decode_block` stays in bounds.
pub(crate) fn validate_shape(
    p: &PackedPostings,
    n_lists: usize,
    with_weights: bool,
) -> Result<usize, String> {
    let nblocks = p.counts.len();
    check(p.block_offsets.len() == n_lists + 1, || {
        format!("blocks: block_offsets length {} != lists {} + 1", p.block_offsets.len(), n_lists)
    })?;
    check(p.block_offsets.first() == Some(&0), || "blocks: block_offsets[0] != 0".into())?;
    check(p.block_offsets.windows(2).all(|w| w[0] <= w[1]), || {
        "blocks: block_offsets not ascending".into()
    })?;
    check(p.block_offsets.last().copied() == Some(nblocks as u32), || {
        format!("blocks: block_offsets end {:?} != block count {nblocks}", p.block_offsets.last())
    })?;
    for (name, len) in [
        ("last_doc", p.last_doc.len()),
        ("doc_bits", p.doc_bits.len()),
        ("aux_bits", p.aux_bits.len()),
        ("max_score", p.max_score.len()),
    ] {
        check(len == nblocks, || {
            format!("blocks: {name} length {len} != block count {nblocks}")
        })?;
    }
    check(p.data_offsets.len() == nblocks + 1, || {
        format!("blocks: data_offsets length {} != block count {nblocks} + 1", p.data_offsets.len())
    })?;
    check(p.data_offsets.first() == Some(&0), || "blocks: data_offsets[0] != 0".into())?;
    check(p.data_offsets.windows(2).all(|w| w[0] <= w[1]), || {
        "blocks: data_offsets not ascending".into()
    })?;
    check(p.data_offsets.last().copied() == Some(p.data.len() as u64), || {
        format!("blocks: data_offsets end {:?} != data length {}", p.data_offsets.last(), p.data.len())
    })?;
    for b in 0..nblocks {
        let count = p.counts[b] as usize;
        check((1..=BLOCK_SIZE).contains(&count), || {
            format!("blocks: block {b} count {count} outside 1..={BLOCK_SIZE}")
        })?;
        check(p.doc_bits[b] <= 32 && p.aux_bits[b] <= 32, || {
            format!("blocks: block {b} bit width above 32")
        })?;
        let span = (p.data_offsets[b + 1] - p.data_offsets[b]) as usize;
        let expect = block_payload_len(count, p.doc_bits[b], p.aux_bits[b], with_weights);
        check(span == expect, || {
            format!("blocks: block {b} payload spans {span} bytes, layout needs {expect}")
        })?;
    }
    Ok(nblocks)
}

/// Shared untrusted decode: walks every list's blocks, re-deriving docs
/// and frequencies with full monotonicity/overflow checking, and hands
/// each verified block to `on_block(block_id, docs, freqs)`.
fn decode_validated(
    p: &PackedPostings,
    n_lists: usize,
    with_weights: bool,
    mut on_block: impl FnMut(usize, &[u32], &[u32]) -> Result<(), String>,
) -> Result<Vec<u64>, String> {
    validate_shape(p, n_lists, with_weights)?;
    let mut offsets = Vec::with_capacity(n_lists + 1);
    offsets.push(0u64);
    let mut docs = [0u32; BLOCK_SIZE];
    let mut freqs = [0u32; BLOCK_SIZE];
    let mut postings = 0u64;
    for list in 0..n_lists {
        let (bs, be) = (p.block_offsets[list] as usize, p.block_offsets[list + 1] as usize);
        let mut prev = -1i64;
        for b in bs..be {
            let count = p.counts[b] as usize;
            let payload = p.payload(b);
            let used = unpack_bits(payload, p.doc_bits[b], &mut docs[..count]);
            unpack_bits(&payload[used..], p.aux_bits[b], &mut freqs[..count]);
            for i in 0..count {
                prev += i64::from(docs[i]) + 1;
                check(prev <= i64::from(u32::MAX), || {
                    format!("blocks: block {b} decodes a doc id beyond u32")
                })?;
                docs[i] = prev as u32;
                freqs[i] = freqs[i].checked_add(1).ok_or_else(|| {
                    format!("blocks: block {b} frequency overflows u32")
                })?;
            }
            check(prev as u32 == p.last_doc[b], || {
                format!(
                    "blocks: block {b} decodes last doc {prev} but metadata says {}",
                    p.last_doc[b]
                )
            })?;
            postings += count as u64;
            on_block(b, &docs[..count], &freqs[..count])?;
        }
        offsets.push(postings);
    }
    Ok(offsets)
}

/// Decompresses and fully validates a term-side [`PackedPostings`] back
/// into CSR arrays: `(offsets, docs, tfs, max_tf)`. The per-list `max_tf`
/// is re-derived from the verified block maxima, so it is exactly the
/// value the builder would have computed.
#[allow(clippy::type_complexity)]
pub fn unpack_terms(
    p: &PackedPostings,
    n_lists: usize,
) -> Result<(Vec<u64>, Vec<u32>, Vec<u32>, Vec<u32>), String> {
    let mut docs = Vec::with_capacity(p.data_offsets.len().saturating_sub(1) * 4);
    let mut tfs = Vec::with_capacity(docs.capacity());
    let mut block_maxes = Vec::with_capacity(p.counts.len());
    let offsets = decode_validated(p, n_lists, false, |b, bdocs, btfs| {
        let block_max = btfs.iter().copied().max().unwrap_or(0);
        check(p.max_score[b].to_bits() == (block_max as f64).to_bits(), || {
            format!(
                "blocks: block {b} max weight {} disagrees with decoded max tf {block_max}",
                p.max_score[b]
            )
        })?;
        block_maxes.push(block_max);
        docs.extend_from_slice(bdocs);
        tfs.extend_from_slice(btfs);
        Ok(())
    })?;
    let max_tf = (0..n_lists)
        .map(|l| {
            let (bs, be) = (p.block_offsets[l] as usize, p.block_offsets[l + 1] as usize);
            block_maxes[bs..be].iter().copied().max().unwrap_or(0)
        })
        .collect();
    Ok((offsets, docs, tfs, max_tf))
}

/// Decompresses and fully validates an entity-side [`PackedPostings`]
/// back into CSR arrays: `(offsets, docs, efs, we, max_contrib)`. Weights
/// come back bit-exact; `max_contrib` is re-derived from the verified
/// block maxima.
#[allow(clippy::type_complexity)]
pub fn unpack_entities(
    p: &PackedPostings,
    n_lists: usize,
) -> Result<(Vec<u64>, Vec<u32>, Vec<u32>, Vec<f64>, Vec<f64>), String> {
    let mut docs = Vec::with_capacity(p.data_offsets.len().saturating_sub(1) * 4);
    let mut efs = Vec::with_capacity(docs.capacity());
    let mut we = Vec::with_capacity(docs.capacity());
    let offsets = decode_validated(p, n_lists, true, |b, bdocs, befs| {
        let payload = p.payload(b);
        let wstart = payload.len() - befs.len() * 8;
        let mut block_max = 0f64;
        for (i, (&ef, chunk)) in befs.iter().zip(payload[wstart..].chunks_exact(8)).enumerate() {
            let w = f64::from_bits(u64::from_le_bytes(chunk.try_into().expect("8-byte weight")));
            let contrib = ef as f64 * w;
            block_max = if i == 0 { contrib } else { block_max.max(contrib) };
            we.push(w);
        }
        check(p.max_score[b].to_bits() == block_max.to_bits(), || {
            format!(
                "blocks: block {b} max weight {} disagrees with decoded max contribution {block_max}",
                p.max_score[b]
            )
        })?;
        docs.extend_from_slice(bdocs);
        efs.extend_from_slice(befs);
        Ok(())
    })?;
    let max_contrib = (0..n_lists)
        .map(|l| {
            let (bs, be) = (p.block_offsets[l] as usize, p.block_offsets[l + 1] as usize);
            p.max_score[bs..be].iter().copied().fold(0.0f64, f64::max)
        })
        .collect();
    Ok((offsets, docs, efs, we, max_contrib))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn term_roundtrip(lists: &[(Vec<u32>, Vec<u32>)]) {
        let packed = pack_term_lists(lists.iter().map(|(d, t)| (&d[..], &t[..])));
        let n = lists.len();
        let (offsets, docs, tfs, max_tf) = unpack_terms(&packed, n).expect("roundtrip");
        let mut want_offsets = vec![0u64];
        let (mut want_docs, mut want_tfs, mut want_max) = (Vec::new(), Vec::new(), Vec::new());
        for (d, t) in lists {
            want_docs.extend_from_slice(d);
            want_tfs.extend_from_slice(t);
            want_offsets.push(want_docs.len() as u64);
            want_max.push(t.iter().copied().max().unwrap_or(0));
        }
        assert_eq!(offsets, want_offsets);
        assert_eq!(docs, want_docs);
        assert_eq!(tfs, want_tfs);
        assert_eq!(max_tf, want_max);
    }

    /// A list of `len` postings with spread-out docs and cycling tfs.
    fn synth_list(len: usize) -> (Vec<u32>, Vec<u32>) {
        let docs: Vec<u32> = (0..len as u32).map(|i| i * 7 + (i % 3)).collect();
        let tfs: Vec<u32> = (0..len as u32).map(|i| i % 19 + 1).collect();
        (docs, tfs)
    }

    #[test]
    fn boundary_lengths_roundtrip() {
        // ISSUE 6 satellite: lengths 0, 1, exactly one block, block ± 1.
        for len in [0, 1, BLOCK_SIZE - 1, BLOCK_SIZE, BLOCK_SIZE + 1, 3 * BLOCK_SIZE + 5] {
            term_roundtrip(&[synth_list(len)]);
        }
    }

    #[test]
    fn multiple_lists_roundtrip() {
        term_roundtrip(&[
            synth_list(0),
            synth_list(BLOCK_SIZE + 3),
            synth_list(2),
            synth_list(0),
            synth_list(BLOCK_SIZE),
        ]);
    }

    #[test]
    fn all_equal_weights_use_zero_width() {
        // Degenerate block max: every tf identical → aux width 0, and the
        // block max equals that weight.
        let docs: Vec<u32> = (0..BLOCK_SIZE as u32).map(|i| i * 2).collect();
        let tfs = vec![5u32; BLOCK_SIZE];
        let packed = pack_term_lists(std::iter::once((&docs[..], &tfs[..])));
        assert_eq!(packed.aux_bits, vec![bits_for(4)]);
        assert_eq!(packed.max_score, vec![5.0]);
        // Dense consecutive docs after the first gap: width driven by max gap.
        term_roundtrip(&[(docs, tfs)]);
        // Truly consecutive docs pack gaps at width 0.
        let docs: Vec<u32> = (10..10 + BLOCK_SIZE as u32).collect();
        let tfs = vec![1u32; BLOCK_SIZE];
        let packed = pack_term_lists(std::iter::once((&docs[..], &tfs[..])));
        // First gap is 10, so width is driven by it; a second block of the
        // same list would be width 0. Check via a 2-block list.
        let docs: Vec<u32> = (0..2 * BLOCK_SIZE as u32).collect();
        let tfs = vec![1u32; 2 * BLOCK_SIZE];
        let p2 = pack_term_lists(std::iter::once((&docs[..], &tfs[..])));
        assert_eq!(p2.doc_bits, vec![0, 0]);
        assert_eq!(p2.aux_bits, vec![0, 0]);
        assert_eq!(p2.data_offsets, vec![0, 0, 0]);
        let _ = packed;
    }

    #[test]
    fn entity_roundtrip_is_bit_exact() {
        let docs: Vec<u32> = (0..BLOCK_SIZE as u32 + 9).map(|i| i * 13 + 1).collect();
        let efs: Vec<u32> = (0..docs.len() as u32).map(|i| i % 4 + 1).collect();
        let wes: Vec<f64> = (0..docs.len()).map(|i| 1.0 + (i as f64 * 0.07).fract()).collect();
        let packed = pack_entity_lists(std::iter::once((&docs[..], &efs[..], &wes[..])));
        let (offsets, d2, e2, w2, max_contrib) = unpack_entities(&packed, 1).unwrap();
        assert_eq!(offsets, vec![0, docs.len() as u64]);
        assert_eq!(d2, docs);
        assert_eq!(e2, efs);
        assert_eq!(w2.len(), wes.len());
        for (a, b) in w2.iter().zip(&wes) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let want = efs.iter().zip(&wes).map(|(&e, &w)| e as f64 * w).fold(0.0f64, f64::max);
        assert_eq!(max_contrib[0].to_bits(), want.to_bits());
    }

    #[test]
    fn packing_is_deterministic() {
        let lists = [synth_list(300), synth_list(7)];
        let a = pack_term_lists(lists.iter().map(|(d, t)| (&d[..], &t[..])));
        let b = pack_term_lists(lists.iter().map(|(d, t)| (&d[..], &t[..])));
        assert_eq!(a, b);
    }

    #[test]
    fn trusted_block_decode_matches_unpack() {
        let (docs, tfs) = synth_list(2 * BLOCK_SIZE + 17);
        let packed = pack_term_lists(std::iter::once((&docs[..], &tfs[..])));
        let (bs, be) = packed.list_blocks(0);
        let mut dbuf = [0u32; BLOCK_SIZE];
        let mut fbuf = [0u32; BLOCK_SIZE];
        let mut prev = -1i64;
        let (mut got_docs, mut got_tfs, mut bytes) = (Vec::new(), Vec::new(), 0u64);
        for b in bs..be {
            let (n, nbytes) = packed.decode_block(b, prev, &mut dbuf, &mut fbuf);
            got_docs.extend_from_slice(&dbuf[..n]);
            got_tfs.extend_from_slice(&fbuf[..n]);
            bytes += nbytes;
            prev = i64::from(packed.last_doc[b]);
        }
        assert_eq!(got_docs, docs);
        assert_eq!(got_tfs, tfs);
        assert_eq!(bytes, packed.data.len() as u64);
    }

    #[test]
    fn forged_metadata_is_rejected() {
        let (docs, tfs) = synth_list(BLOCK_SIZE + 40);
        let good = pack_term_lists(std::iter::once((&docs[..], &tfs[..])));

        // Forged block max (would unsoundly weaken or tighten pruning).
        let mut p = good.clone();
        p.max_score[0] += 1.0;
        assert!(unpack_terms(&p, 1).unwrap_err().contains("max"));

        // Forged last doc id (would break the skip test).
        let mut p = good.clone();
        p.last_doc[1] ^= 1;
        assert!(unpack_terms(&p, 1).unwrap_err().contains("last doc"));

        // Count outside the block size.
        let mut p = good.clone();
        p.counts[0] = BLOCK_SIZE as u32 + 1;
        assert!(unpack_terms(&p, 1).is_err());

        // Payload span disagreeing with the declared widths.
        let mut p = good.clone();
        p.doc_bits[0] += 1;
        assert!(unpack_terms(&p, 1).unwrap_err().contains("payload"));

        // Width beyond 32 bits.
        let mut p = good.clone();
        p.doc_bits[0] = 33;
        assert!(unpack_terms(&p, 1).unwrap_err().contains("width"));

        // Broken block CSR.
        let mut p = good.clone();
        p.block_offsets[1] = 99;
        assert!(unpack_terms(&p, 1).is_err());

        // Wrong list count.
        assert!(unpack_terms(&good, 2).is_err());
    }

    #[test]
    fn wide_gaps_and_large_tfs_survive() {
        let docs = vec![0u32, 1, u32::MAX - 1];
        let tfs = vec![1u32, u32::MAX, 2];
        term_roundtrip(&[(docs, tfs)]);
    }
}
