//! # rightcrowd-index
//!
//! The dual inverted index (terms + entities) and the vector-space scorer
//! of the paper's §2.4. Resources are represented *both* as bags of
//! (stemmed) words and as sets of recognised entities; a query is scored
//! against a resource by the weighted linear combination of Eq. 1:
//!
//! ```text
//! score(q,r) = α · Σ_{t∈q}    tf(t,r) · irf(t)²
//!           + (1−α) · Σ_{e∈E(q)} ef(e,r) · eirf(e)² · we(e,r)
//! ```
//!
//! with the entity weight of Eq. 2, `we(e,r) = 1 + dScore(e,r)` for
//! annotated entities. `irf`/`eirf` are inverse *resource* frequencies over
//! the whole collection, as the paper prescribes.
//!
//! Postings are stored in interned CSR form with precomputed `irf`/`eirf`
//! tables (see [`index`]); the factored scorer
//! [`InvertedIndex::score_components`] + [`recombine`] evaluates an α
//! sweep with a single posting traversal, and [`reference`] retains the
//! definitional scorer as the parity oracle.

pub mod backing;
pub mod block;
pub mod bm25;
pub mod builder;
pub mod index;
pub mod mapped;
pub mod query;
pub mod raw;
pub mod reference;
pub mod shard;
pub mod stats;

pub use backing::Seg;
pub use block::{
    pack_entity_parts, pack_term_parts, unpack_entities, unpack_terms, PackedPostings, BLOCK_SIZE,
};
pub use bm25::Bm25Params;
pub use builder::IndexBuilder;
pub use index::{
    recombine, recombine_top_k, ComponentScore, DocIdx, EntityPostingView, InvertedIndex,
    ScoredDoc,
};
pub use mapped::{MappedEntitySide, MappedShardView, MappedTermSide};
pub use query::Query;
pub use raw::{EntityParts, IndexParts, TermParts};
pub use shard::IndexShard;
pub use stats::{take_traversal_stats, TraversalStats};
