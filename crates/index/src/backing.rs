//! `Cow`-style array backing: owned `Vec<T>` or a borrowed view into a
//! memory-mapped file.
//!
//! Every array the query path reads — CSR offsets, packed posting-block
//! payloads, per-list statistics — is stored as a [`Seg<T>`]. The owned
//! variant is what the builder and the streamed snapshot decoder produce;
//! the mapped variant points straight into an `mmap(2)`'d shard file, so
//! a warm open borrows the page cache instead of re-copying megabytes
//! into fresh allocations, and N processes mapping the same file share
//! one physical copy.
//!
//! `Seg<T>` derefs to `&[T]`, so consumers index it exactly like the
//! `Vec` it replaces. Mutation goes through [`Seg::to_mut`] (or
//! `DerefMut`), which copies a mapped segment into an owned one first —
//! the same copy-on-write contract as [`std::borrow::Cow`]. The scorer
//! never mutates, so the hot path stays zero-copy.

use std::any::Any;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An array of plain-old-data values, either owned or borrowed from a
/// reference-counted memory mapping.
pub enum Seg<T: Copy + 'static> {
    /// Heap-allocated storage (builder output, streamed snapshot decode).
    Owned(Vec<T>),
    /// A view into memory kept alive by `owner` (an `Arc` over the mmap).
    /// Invariant (upheld by [`Seg::from_owner`]): `ptr` is aligned for
    /// `T`, valid for `len` elements, and outlives every clone of
    /// `owner`.
    Mapped {
        /// Keeps the mapping alive; dropping the last clone unmaps.
        owner: Arc<dyn Any + Send + Sync>,
        /// First element (aligned, non-null even when `len == 0`).
        ptr: *const T,
        /// Element count.
        len: usize,
    },
}

// SAFETY: a mapped segment is an immutable view of read-only memory whose
// lifetime is pinned by the `Arc` owner; `T` is plain old data (`Copy`),
// so sharing the view across threads is sound.
unsafe impl<T: Copy + Send + Sync> Send for Seg<T> {}
unsafe impl<T: Copy + Send + Sync> Sync for Seg<T> {}

impl<T: Copy> Seg<T> {
    /// Wraps a raw view whose memory is owned by `owner`.
    ///
    /// # Safety
    /// `ptr` must be aligned for `T` and valid for reads of `len`
    /// elements for as long as any clone of `owner` is alive, and the
    /// memory must never be mutated while mapped.
    pub unsafe fn from_owner(owner: Arc<dyn Any + Send + Sync>, ptr: *const T, len: usize) -> Self {
        debug_assert!(ptr.align_offset(std::mem::align_of::<T>()) == 0);
        Seg::Mapped { owner, ptr, len }
    }

    /// The segment as a slice — the only accessor the query path uses.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            Seg::Owned(v) => v.as_slice(),
            // SAFETY: the `from_owner` contract guarantees `ptr`/`len`
            // describe live, aligned, immutable memory.
            Seg::Mapped { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }

    /// Copy-on-write mutable access: a mapped segment is first copied
    /// into an owned `Vec` (the mapping itself is never written).
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        if let Seg::Mapped { .. } = self {
            *self = Seg::Owned(self.as_slice().to_vec());
        }
        match self {
            Seg::Owned(v) => v,
            Seg::Mapped { .. } => unreachable!("mapped segment was just converted to owned"),
        }
    }

    /// Extracts an owned `Vec`, copying when mapped.
    pub fn into_vec(self) -> Vec<T> {
        match self {
            Seg::Owned(v) => v,
            Seg::Mapped { .. } => self.as_slice().to_vec(),
        }
    }

    /// Whether this segment borrows from a mapping (no heap copy).
    pub fn is_mapped(&self) -> bool {
        matches!(self, Seg::Mapped { .. })
    }
}

impl<T: Copy> Deref for Seg<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy> DerefMut for Seg<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.to_mut().as_mut_slice()
    }
}

impl<T: Copy> Default for Seg<T> {
    fn default() -> Self {
        Seg::Owned(Vec::new())
    }
}

impl<T: Copy> From<Vec<T>> for Seg<T> {
    fn from(v: Vec<T>) -> Self {
        Seg::Owned(v)
    }
}

impl<T: Copy> Clone for Seg<T> {
    fn clone(&self) -> Self {
        match self {
            Seg::Owned(v) => Seg::Owned(v.clone()),
            Seg::Mapped { owner, ptr, len } => {
                Seg::Mapped { owner: Arc::clone(owner), ptr: *ptr, len: *len }
            }
        }
    }
}

impl<T: Copy + PartialEq> PartialEq for Seg<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + PartialEq> PartialEq<Vec<T>> for Seg<T> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + fmt::Debug> fmt::Debug for Seg<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_mapped() {
            write!(f, "Mapped")?;
        }
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapped_from(backing: Arc<Vec<u32>>) -> Seg<u32> {
        let ptr = backing.as_ptr();
        let len = backing.len();
        // SAFETY: the Arc keeps the Vec's buffer alive and unmoved.
        unsafe { Seg::from_owner(backing, ptr, len) }
    }

    #[test]
    fn owned_and_mapped_read_identically() {
        let data = vec![3u32, 1, 4, 1, 5];
        let owned: Seg<u32> = data.clone().into();
        let mapped = mapped_from(Arc::new(data.clone()));
        assert!(mapped.is_mapped() && !owned.is_mapped());
        assert_eq!(&owned[..], &data[..]);
        assert_eq!(&mapped[..], &data[..]);
        assert_eq!(owned, mapped);
        assert_eq!(mapped.clone(), mapped);
    }

    #[test]
    fn to_mut_copies_mapped_on_write() {
        let backing = Arc::new(vec![7u32, 8, 9]);
        let mut seg = mapped_from(Arc::clone(&backing));
        seg[1] = 80;
        assert!(!seg.is_mapped(), "write must detach from the mapping");
        assert_eq!(&seg[..], &[7, 80, 9]);
        assert_eq!(&backing[..], &[7, 8, 9], "the mapping is never written");
    }

    #[test]
    fn empty_default_and_into_vec() {
        let seg: Seg<u64> = Seg::default();
        assert!(seg.is_empty() && !seg.is_mapped());
        let backing = Arc::new(vec![1u64, 2]);
        let seg = mapped_from_u64(Arc::clone(&backing));
        assert_eq!(seg.into_vec(), vec![1, 2]);
    }

    fn mapped_from_u64(backing: Arc<Vec<u64>>) -> Seg<u64> {
        let ptr = backing.as_ptr();
        let len = backing.len();
        unsafe { Seg::from_owner(backing, ptr, len) }
    }
}
