//! The analysed form of an expertise need.

use rightcrowd_types::EntityId;

/// An expertise need after the analysis pipeline: normalised terms plus the
/// entities recognised in the query text (the paper's `E(q)`).
///
/// Terms may repeat — Eq. 1 sums over query-term *occurrences*, so a
/// repeated term contributes twice.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// Normalised (stemmed, stop-word-free) query terms.
    pub terms: Vec<String>,
    /// Entities recognised in the query.
    pub entities: Vec<EntityId>,
}

impl Query {
    /// A query with terms only (no recognised entities).
    pub fn from_terms<I, S>(terms: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Query {
            terms: terms.into_iter().map(Into::into).collect(),
            entities: Vec::new(),
        }
    }

    /// Whether the query carries no matchable evidence at all.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty() && self.entities.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_terms_builder() {
        let q = Query::from_terms(["copper", "conductor"]);
        assert_eq!(q.terms.len(), 2);
        assert!(q.entities.is_empty());
        assert!(!q.is_empty());
    }

    #[test]
    fn emptiness() {
        assert!(Query::default().is_empty());
        let q = Query { terms: vec![], entities: vec![EntityId::new(0)] };
        assert!(!q.is_empty());
    }
}
