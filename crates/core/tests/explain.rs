//! Property-style tests for the score-explain path: under *random* finder
//! configurations, [`rank_explained`] must agree with the production
//! ranker ([`rank_query`]) and its per-resource decomposition must sum to
//! the ranked score.
//!
//! The two paths accumulate floats in different association orders (the
//! production path mixes α per posting list, the explain path recombines
//! per-document sums), so scores are compared within 1e-9 relative — but
//! the *replay* of the decomposition is exact, because
//! [`ExplainedExpert::decomposed_score`] re-runs the identical
//! accumulation the explain ranker performed.
//!
//! [`ExplainedExpert::decomposed_score`]: rightcrowd_core::ExplainedExpert::decomposed_score

use proptest::{prop_assert, prop_assert_eq, run_cases, TestRng};
use rightcrowd_core::attribution::AttributionCache;
use rightcrowd_core::explain::rank_explained;
use rightcrowd_core::ranker::rank_query;
use rightcrowd_core::{AnalysisPipeline, FinderConfig, WindowSize};
use rightcrowd_index::Query;
use rightcrowd_types::{Distance, Platform, PlatformMask};
use std::sync::{Arc, Mutex, OnceLock};

/// The tiny corpus with its analysed queries, built once per process.
fn fixture() -> &'static (
    &'static rightcrowd_synth::SyntheticDataset,
    &'static rightcrowd_core::AnalyzedCorpus,
    Vec<Query>,
) {
    static CELL: OnceLock<(
        &'static rightcrowd_synth::SyntheticDataset,
        &'static rightcrowd_core::AnalyzedCorpus,
        Vec<Query>,
    )> = OnceLock::new();
    CELL.get_or_init(|| {
        let (ds, corpus) = rightcrowd_core::testkit::tiny();
        let pipeline = AnalysisPipeline::new(ds.kb());
        let queries =
            ds.queries().iter().map(|need| pipeline.analyze_query(&need.text)).collect();
        (ds, corpus, queries)
    })
}

/// Attributions memoised across property cases (many random configs share
/// a traversal shape; recomputing the evidence walk 64× would dominate).
fn attribution(config: &FinderConfig) -> Arc<rightcrowd_core::Attribution> {
    static CACHE: OnceLock<Mutex<AttributionCache>> = OnceLock::new();
    let (ds, corpus, _) = fixture();
    CACHE
        .get_or_init(|| Mutex::new(AttributionCache::new()))
        .lock()
        .expect("attribution cache poisoned")
        .get_or_compute(ds, corpus, config)
}

/// A random paper-shaped configuration: weighted-sum aggregation and the
/// paper's VSM (the decomposition's domain), everything else free.
fn random_config(rng: &mut TestRng) -> FinderConfig {
    let window = match rng.below(3) {
        0 => WindowSize::Count(1 + rng.below(150) as usize),
        1 => WindowSize::Fraction(rng.unit_f64()),
        _ => WindowSize::All,
    };
    let platforms = match rng.below(4) {
        0 => PlatformMask::only(Platform::Facebook),
        1 => PlatformMask::only(Platform::Twitter),
        2 => PlatformMask::only(Platform::LinkedIn),
        _ => PlatformMask::ALL,
    };
    FinderConfig {
        alpha: rng.unit_f64(),
        window,
        max_distance: Distance::from_level(rng.below(3) as usize).expect("level < 3"),
        include_friends: rng.below(2) == 1,
        platforms,
        distance_weights: [
            0.1 + 0.9 * rng.unit_f64(),
            0.1 + 0.9 * rng.unit_f64(),
            0.1 + 0.9 * rng.unit_f64(),
        ],
        normalize_by_evidence: rng.below(2) == 1,
        ..FinderConfig::default()
    }
}

#[test]
fn explained_ranking_matches_production_under_random_configs() {
    run_cases("explained_matches_production", |rng| {
        let (ds, corpus, queries) = fixture();
        let config = random_config(rng);
        let attribution = attribution(&config);
        let n = ds.candidates().len();
        // Two random queries per case keep the 64-case run fast while
        // still crossing configs with every query over the seeds.
        for _ in 0..2 {
            let query = &queries[rng.below(queries.len() as u64) as usize];
            let explained = rank_explained(corpus, &attribution, &config, query, n);
            let direct = rank_query(corpus, &attribution, &config, query, n);

            // Same expert set; scores within float-reassociation tolerance.
            prop_assert_eq!(
                explained.experts.len(),
                direct.len(),
                "expert counts diverge under {:?}",
                config
            );
            for d in &direct {
                let Some(e) = explained.expert(d.person) else {
                    return Err(format!("{:?} missing from explained ranking", d.person));
                };
                let tol = 1e-9 * d.score.abs().max(1.0);
                prop_assert!(
                    (e.score - d.score).abs() <= tol,
                    "score diverged for {:?}: explained {} vs direct {} under {:?}",
                    d.person,
                    e.score,
                    d.score,
                    config
                );
                // The decomposition replays the ranked score exactly.
                prop_assert_eq!(
                    e.decomposed_score(&config),
                    Some(e.score),
                    "Σ contributions must replay the score bit-for-bit"
                );
                // Only in-window rows carry weight; every row is consistent.
                for c in &e.contributions {
                    prop_assert!(c.rank >= 1 && c.rank <= explained.matches);
                    prop_assert_eq!(c.in_window, c.rank <= explained.window);
                    let product = c.doc_score * c.wr;
                    prop_assert!((c.contribution - product).abs() == 0.0);
                }
            }
        }
        Ok(())
    });
}

#[test]
fn window_cutoff_excludes_exactly_matches_minus_n() {
    run_cases("window_cutoff_exact", |rng| {
        let (ds, corpus, queries) = fixture();
        let config = random_config(rng);
        let attribution = attribution(&config);
        let query = &queries[rng.below(queries.len() as u64) as usize];
        let explained =
            rank_explained(corpus, &attribution, &config, query, ds.candidates().len());

        // The resolved window obeys the configuration…
        prop_assert_eq!(explained.window, config.window.resolve(explained.matches));
        // …and the cutoff flags match it exactly: the first `window`
        // resources are in, the remaining `matches − window` are out.
        let cut = explained.resources.iter().filter(|r| !r.in_window).count();
        prop_assert_eq!(cut, explained.cutoff());
        prop_assert_eq!(explained.cutoff(), explained.matches - explained.window);
        for (i, r) in explained.resources.iter().enumerate() {
            prop_assert_eq!(r.rank, i + 1);
            prop_assert_eq!(r.in_window, i < explained.window);
        }
        Ok(())
    });
}
