//! Question routing — the application layer of the paper's Fig. 1.
//!
//! Once the candidates are ranked, Anna still has to decide *how* to ask:
//! only the top expert, the top-k in parallel, or one at a time until an
//! answer arrives ("just to Alice, or to Alice and then Charlie, or to
//! both of them at the same time, and so on"). Social contacts are moved
//! by non-monetary incentives and respond probabilistically, so each
//! strategy trades answer quality against contact load and waiting time.
//!
//! [`simulate`] evaluates a [`RoutingStrategy`] against a response model:
//! each contacted candidate answers with probability `response_rate`, and
//! an answer is *good* when the candidate is a true domain expert.

use crate::ranker::RankedExpert;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rightcrowd_types::PersonId;
use std::collections::HashSet;

/// How a question is routed to the ranked crowd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingStrategy {
    /// Ask only the top-ranked candidate.
    Top1,
    /// Ask the top-k candidates in parallel.
    Parallel(usize),
    /// Ask one candidate at a time, in rank order, until one answers or
    /// the list (capped at the given depth) is exhausted.
    Sequential(usize),
}

/// The aggregate outcome of routing one question many times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingOutcome {
    /// Probability that at least one answer arrived.
    pub answer_rate: f64,
    /// Probability that at least one *expert* answer arrived.
    pub good_answer_rate: f64,
    /// Mean number of candidates contacted.
    pub mean_contacted: f64,
    /// Mean number of rounds until the first answer (sequential rounds;
    /// parallel strategies always take one round). Counts only runs that
    /// got an answer.
    pub mean_rounds_to_answer: f64,
}

/// Simulates `runs` independent routings of one question.
///
/// `ranking` is the system's ranked crowd; `experts` the ground-truth
/// expert set for the question's domain; `response_rate` the per-contact
/// probability of getting any answer. Deterministic in `seed`.
pub fn simulate(
    ranking: &[RankedExpert],
    experts: &HashSet<PersonId>,
    strategy: RoutingStrategy,
    response_rate: f64,
    runs: usize,
    seed: u64,
) -> RoutingOutcome {
    assert!((0.0..=1.0).contains(&response_rate), "response rate is a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut answered = 0usize;
    let mut good = 0usize;
    let mut contacted_total = 0usize;
    let mut rounds_total = 0usize;

    for _ in 0..runs.max(1) {
        let mut got_answer = false;
        let mut got_good = false;
        let mut contacted = 0usize;
        let mut rounds = 0usize;
        match strategy {
            RoutingStrategy::Top1 | RoutingStrategy::Parallel(_) => {
                let k = match strategy {
                    RoutingStrategy::Top1 => 1,
                    RoutingStrategy::Parallel(k) => k,
                    RoutingStrategy::Sequential(_) => unreachable!(),
                };
                rounds = 1;
                for expert in ranking.iter().take(k) {
                    contacted += 1;
                    if rng.gen_bool(response_rate) {
                        got_answer = true;
                        got_good |= experts.contains(&expert.person);
                    }
                }
            }
            RoutingStrategy::Sequential(depth) => {
                for expert in ranking.iter().take(depth) {
                    contacted += 1;
                    rounds += 1;
                    if rng.gen_bool(response_rate) {
                        got_answer = true;
                        got_good = experts.contains(&expert.person);
                        break;
                    }
                }
            }
        }
        if got_answer {
            answered += 1;
            rounds_total += rounds;
        }
        if got_good {
            good += 1;
        }
        contacted_total += contacted;
    }

    let runs = runs.max(1) as f64;
    RoutingOutcome {
        answer_rate: answered as f64 / runs,
        good_answer_rate: good as f64 / runs,
        mean_contacted: contacted_total as f64 / runs,
        mean_rounds_to_answer: if answered == 0 {
            0.0
        } else {
            rounds_total as f64 / answered as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranking(n: u32) -> Vec<RankedExpert> {
        (0..n)
            .map(|i| RankedExpert { person: PersonId::new(i), score: (n - i) as f64 })
            .collect()
    }

    fn experts(ids: &[u32]) -> HashSet<PersonId> {
        ids.iter().map(|&i| PersonId::new(i)).collect()
    }

    #[test]
    fn certain_responders_always_answer() {
        let out = simulate(&ranking(5), &experts(&[0]), RoutingStrategy::Top1, 1.0, 200, 1);
        assert_eq!(out.answer_rate, 1.0);
        assert_eq!(out.good_answer_rate, 1.0);
        assert_eq!(out.mean_contacted, 1.0);
        assert_eq!(out.mean_rounds_to_answer, 1.0);
    }

    #[test]
    fn unresponsive_crowd_never_answers() {
        let out = simulate(&ranking(5), &experts(&[0]), RoutingStrategy::Parallel(3), 0.0, 100, 2);
        assert_eq!(out.answer_rate, 0.0);
        assert_eq!(out.good_answer_rate, 0.0);
        assert_eq!(out.mean_contacted, 3.0);
        assert_eq!(out.mean_rounds_to_answer, 0.0);
    }

    #[test]
    fn parallel_beats_top1_on_answer_rate() {
        let e = experts(&[0, 1, 2]);
        let top1 = simulate(&ranking(10), &e, RoutingStrategy::Top1, 0.4, 4000, 3);
        let par3 = simulate(&ranking(10), &e, RoutingStrategy::Parallel(3), 0.4, 4000, 3);
        assert!(par3.answer_rate > top1.answer_rate);
        assert!(par3.mean_contacted > top1.mean_contacted);
    }

    #[test]
    fn sequential_contacts_fewer_than_parallel_at_same_depth() {
        let e = experts(&[0]);
        let par = simulate(&ranking(10), &e, RoutingStrategy::Parallel(5), 0.5, 4000, 4);
        let seq = simulate(&ranking(10), &e, RoutingStrategy::Sequential(5), 0.5, 4000, 4);
        assert!(seq.mean_contacted < par.mean_contacted);
        // Both eventually reach similar answer rates (1 - 0.5^5).
        assert!((seq.answer_rate - par.answer_rate).abs() < 0.05);
    }

    #[test]
    fn good_answers_require_experts_in_ranking() {
        let none = experts(&[]);
        let out = simulate(&ranking(5), &none, RoutingStrategy::Parallel(5), 1.0, 100, 5);
        assert_eq!(out.answer_rate, 1.0);
        assert_eq!(out.good_answer_rate, 0.0);
    }

    #[test]
    fn empty_ranking_is_harmless() {
        let out = simulate(&[], &experts(&[1]), RoutingStrategy::Sequential(4), 0.9, 50, 6);
        assert_eq!(out.answer_rate, 0.0);
        assert_eq!(out.mean_contacted, 0.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let e = experts(&[0, 2]);
        let a = simulate(&ranking(8), &e, RoutingStrategy::Sequential(8), 0.3, 500, 7);
        let b = simulate(&ranking(8), &e, RoutingStrategy::Sequential(8), 0.3, 500, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_response_rate_panics() {
        simulate(&ranking(1), &experts(&[]), RoutingStrategy::Top1, 1.5, 10, 8);
    }
}
