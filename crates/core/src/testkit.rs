//! Shared test fixtures.
//!
//! Generating a dataset and analysing its corpus is the expensive part of
//! every test; this module memoises the tiny and small presets process-wide
//! so that a test binary pays the cost once. Intended for `#[cfg(test)]`
//! modules, integration tests and benches — not for production call sites,
//! which should own their dataset lifetimes explicitly.

use crate::corpus::AnalyzedCorpus;
use rightcrowd_synth::{DatasetConfig, SyntheticDataset};
use std::sync::OnceLock;

/// The tiny preset dataset with its analysed corpus, built once per
/// process.
pub fn tiny() -> &'static (SyntheticDataset, AnalyzedCorpus) {
    static CELL: OnceLock<(SyntheticDataset, AnalyzedCorpus)> = OnceLock::new();
    CELL.get_or_init(|| {
        let ds = SyntheticDataset::generate(&DatasetConfig::tiny());
        let corpus = AnalyzedCorpus::build(&ds);
        (ds, corpus)
    })
}

/// The small preset dataset with its analysed corpus, built once per
/// process. Roughly 10× the tiny preset; used by integration tests that
/// need paper-shaped statistics.
pub fn small() -> &'static (SyntheticDataset, AnalyzedCorpus) {
    static CELL: OnceLock<(SyntheticDataset, AnalyzedCorpus)> = OnceLock::new();
    CELL.get_or_init(|| {
        let ds = SyntheticDataset::generate(&DatasetConfig::small());
        let corpus = AnalyzedCorpus::build(&ds);
        (ds, corpus)
    })
}
