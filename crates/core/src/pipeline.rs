//! The analysis pipeline of the paper's Fig. 4.
//!
//! `Resource Extraction → URL Content Extraction → Language Identification
//! → Text Processing → Entity Recognition and Disambiguation`, applied
//! symmetrically to social documents and to expertise needs.

use rightcrowd_annotate::Annotator;
use rightcrowd_index::Query;
use rightcrowd_kb::KnowledgeBase;
use rightcrowd_langid::LanguageIdentifier;
use rightcrowd_text::{sanitize, tokenize, TextProcessor};
use rightcrowd_types::{EntityId, Language};

/// The analysed form of one document.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedDoc {
    /// Normalised terms (stemmed, stop-word-free), including the enriched
    /// content of linked web pages.
    pub terms: Vec<String>,
    /// Entity annotations as `(entity, dScore)` occurrence pairs.
    pub entities: Vec<(EntityId, f64)>,
    /// The detected main language of the document's own text.
    pub language: Language,
}

impl AnalyzedDoc {
    /// Whether the paper's pipeline keeps this document (English only).
    pub fn retained(&self) -> bool {
        self.language.retained()
    }
}

/// The reusable analysis pipeline, bound to a knowledge base.
pub struct AnalysisPipeline<'kb> {
    identifier: LanguageIdentifier,
    processor: TextProcessor,
    annotator: Annotator<'kb>,
}

impl<'kb> AnalysisPipeline<'kb> {
    /// Builds the pipeline with the paper's default stages.
    pub fn new(kb: &'kb KnowledgeBase) -> Self {
        Self::with_config(kb, rightcrowd_annotate::AnnotatorConfig::default())
    }

    /// Builds the pipeline with a custom annotator configuration (used by
    /// the disambiguation ablations).
    pub fn with_config(kb: &'kb KnowledgeBase, annotator: rightcrowd_annotate::AnnotatorConfig) -> Self {
        AnalysisPipeline {
            identifier: LanguageIdentifier::new(),
            processor: TextProcessor::default(),
            annotator: Annotator::with_config(kb, annotator),
        }
    }

    /// Analyses one document: `raw` is the document's own text, `pages`
    /// the extracted texts of its linked web pages (URL enrichment).
    ///
    /// Language identification runs on the document's own text — a
    /// non-English post is dropped even when it links an English page.
    pub fn analyze_doc(&self, raw: &str, pages: &[&str]) -> AnalyzedDoc {
        let _span = rightcrowd_obs::span!("analyze.doc");
        rightcrowd_obs::incr(rightcrowd_obs::CounterId::DocsAnalyzed);
        let sanitized = sanitize(raw);
        let language = self.identifier.detect(&sanitized.text);
        if !language.retained() {
            rightcrowd_obs::incr(rightcrowd_obs::CounterId::DocsDroppedNonEnglish);
            return AnalyzedDoc { terms: Vec::new(), entities: Vec::new(), language };
        }
        self.extract(sanitized.text, pages, language)
    }

    /// Analyses a document *without* the language gate. Used for candidate
    /// profiles: they are too short for reliable language identification
    /// and the study population is English-speaking, so profiles are
    /// analysed unconditionally (like queries).
    pub fn analyze_doc_ungated(&self, raw: &str, pages: &[&str]) -> AnalyzedDoc {
        let _span = rightcrowd_obs::span!("analyze.doc");
        rightcrowd_obs::incr(rightcrowd_obs::CounterId::DocsAnalyzed);
        let sanitized = sanitize(raw);
        let language = self.identifier.detect(&sanitized.text);
        self.extract(sanitized.text, pages, language)
    }

    /// Shared term/entity extraction over sanitised, page-enriched text.
    fn extract(&self, mut enriched: String, pages: &[&str], language: Language) -> AnalyzedDoc {
        let _span = rightcrowd_obs::span!("analyze.enrich");
        for page in pages {
            enriched.push(' ');
            enriched.push_str(page);
        }
        // Entity recognition runs on the unstemmed token stream (anchors
        // are surface forms); term extraction applies the full normaliser.
        let tokens = tokenize(&enriched);
        let entities = self
            .annotator
            .annotate_tokens(&tokens)
            .into_iter()
            .map(|a| (a.entity, a.dscore))
            .collect();
        let terms = self.processor.process_clean(&enriched);
        AnalyzedDoc { terms, entities, language }
    }

    /// Analyses an expertise need into an index [`Query`]. Needs are
    /// assumed in-scope (the paper's workload is English); no language
    /// gate is applied.
    pub fn analyze_query(&self, text: &str) -> Query {
        let _span = rightcrowd_obs::span!("analyze.query");
        rightcrowd_obs::incr(rightcrowd_obs::CounterId::QueriesAnalyzed);
        let sanitized = sanitize(text);
        let tokens = tokenize(&sanitized.text);
        let entities = self
            .annotator
            .annotate_tokens(&tokens)
            .into_iter()
            .map(|a| a.entity)
            .collect();
        Query {
            terms: self.processor.process_clean(&sanitized.text),
            entities,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rightcrowd_kb::seed;

    fn pipeline(kb: &KnowledgeBase) -> AnalysisPipeline<'_> {
        AnalysisPipeline::new(kb)
    }

    #[test]
    fn english_doc_fully_analyzed() {
        let kb = seed::standard();
        let p = pipeline(&kb);
        let doc = p.analyze_doc(
            "Michael Phelps is the best! Great freestyle gold medal http://t.co/x",
            &[],
        );
        assert!(doc.retained());
        assert!(doc.terms.contains(&"freestyl".to_owned()));
        assert!(doc.terms.contains(&"medal".to_owned()));
        let phelps = kb.entity_by_title("Michael Phelps").unwrap().id;
        assert!(doc.entities.iter().any(|&(e, _)| e == phelps));
    }

    #[test]
    fn non_english_doc_dropped() {
        let kb = seed::standard();
        let p = pipeline(&kb);
        let doc = p.analyze_doc(
            "ho appena finito trenta minuti di allenamento in piscina con gli amici",
            &[],
        );
        assert!(!doc.retained());
        assert!(doc.terms.is_empty());
        assert!(doc.entities.is_empty());
    }

    #[test]
    fn url_enrichment_adds_page_evidence() {
        let kb = seed::standard();
        let p = pipeline(&kb);
        let bare = p.analyze_doc("interesting read about this", &[]);
        let enriched = p.analyze_doc(
            "interesting read about this",
            &["copper is an excellent electrical conductor for electricity experiments"],
        );
        assert!(enriched.terms.len() > bare.terms.len());
        assert!(enriched.terms.contains(&"copper".to_owned()));
        let copper = kb.entity_by_title("Copper").unwrap().id;
        assert!(enriched.entities.iter().any(|&(e, _)| e == copper));
    }

    #[test]
    fn query_analysis_is_symmetric() {
        let kb = seed::standard();
        let p = pipeline(&kb);
        let q = p.analyze_query("Can you list some famous songs of Michael Jackson?");
        assert!(q.terms.contains(&"song".to_owned()));
        assert!(q.terms.contains(&"famou".to_owned()));
        let mj = kb.entity_by_title("Michael Jackson").unwrap().id;
        assert!(q.entities.contains(&mj));
    }

    #[test]
    fn dscores_propagate_into_entity_pairs() {
        let kb = seed::standard();
        let p = pipeline(&kb);
        let doc = p.analyze_doc("milan won the champions league derby against inter", &[]);
        for &(_, d) in &doc.entities {
            assert!((0.0..=1.0).contains(&d));
        }
        assert!(!doc.entities.is_empty());
    }

    #[test]
    fn empty_input() {
        let kb = seed::standard();
        let p = pipeline(&kb);
        let doc = p.analyze_doc("", &[]);
        assert!(!doc.retained()); // too short to identify → Unknown
        let q = p.analyze_query("");
        assert!(q.is_empty());
    }
}
