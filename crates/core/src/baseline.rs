//! The paper's random baseline (§3.1): for each query, average the
//! metrics of 10 runs in which 20 users are selected uniformly at random.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rightcrowd_metrics::{mean_eval, MeanEval, QueryEval};
use rightcrowd_synth::SyntheticDataset;
use rightcrowd_types::PersonId;

/// Number of random runs per query (paper: 10).
pub const BASELINE_RUNS: usize = 10;
/// Users drawn per run (paper: 20).
pub const BASELINE_K: usize = 20;

/// Computes the random baseline over the dataset's full workload.
///
/// Deterministic in `seed`. The returned [`MeanEval`] has its DCG curve
/// summed over queries (averaged over runs), matching the experiment
/// harness's convention for the system rows.
pub fn random_baseline(ds: &SyntheticDataset, seed: u64) -> MeanEval {
    random_baseline_with(ds, seed, BASELINE_RUNS, BASELINE_K)
}

/// [`random_baseline`] with explicit run count and selection size.
pub fn random_baseline_with(ds: &SyntheticDataset, seed: u64, runs: usize, k: usize) -> MeanEval {
    let mut rng = StdRng::seed_from_u64(seed);
    let gt = ds.ground_truth();
    let population: Vec<PersonId> = ds.candidates().iter().map(|p| p.id).collect();
    let mut evals: Vec<QueryEval> = Vec::with_capacity(ds.queries().len() * runs);
    for need in ds.queries() {
        let relevant = gt.experts(need.domain).len();
        for _ in 0..runs {
            let mut pool = population.clone();
            pool.shuffle(&mut rng);
            pool.truncate(k);
            let rels: Vec<bool> = pool.iter().map(|&p| gt.is_expert(p, need.domain)).collect();
            evals.push(QueryEval::evaluate(&rels, relevant));
        }
    }
    let mut mean = mean_eval(&evals);
    // mean_eval averaged map/mrr/ndcg over query×run (correct) but summed
    // the DCG curve over all runs; renormalise to a per-run sum.
    if runs > 0 {
        for slot in mean.dcg_curve.iter_mut() {
            *slot /= runs as f64;
        }
    }
    mean.queries = ds.queries().len();
    mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use rightcrowd_synth::DatasetConfig;

    #[test]
    fn baseline_metrics_in_plausible_band() {
        let ds = SyntheticDataset::generate(&DatasetConfig::tiny());
        let b = random_baseline(&ds, 7);
        // With k=20 of 12 candidates (tiny config), every run selects all
        // users in random order; MAP must sit between 0 and 1 strictly.
        assert!(b.map > 0.0 && b.map < 1.0, "map {}", b.map);
        assert!(b.mrr > 0.0 && b.mrr <= 1.0);
        assert!(b.ndcg > 0.0 && b.ndcg <= 1.0);
        assert_eq!(b.queries, 30);
    }

    #[test]
    fn deterministic_in_seed() {
        let ds = SyntheticDataset::generate(&DatasetConfig::tiny());
        let a = random_baseline(&ds, 1);
        let b = random_baseline(&ds, 1);
        assert_eq!(a, b);
        let c = random_baseline(&ds, 2);
        assert!((a.map - c.map).abs() > 1e-9, "different seeds should differ");
    }

    #[test]
    fn more_runs_tightens_nothing_but_stays_in_band() {
        let ds = SyntheticDataset::generate(&DatasetConfig::tiny());
        let few = random_baseline_with(&ds, 3, 2, 5);
        let many = random_baseline_with(&ds, 3, 20, 5);
        for v in [few.map, many.map] {
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
