//! Corpus analysis and indexing.
//!
//! Runs the Fig. 4 pipeline over every document of a dataset's social
//! graph — profiles, resources, container descriptions, each enriched with
//! its linked web pages — and builds the dual inverted index. Non-English
//! documents are dropped, reproducing the paper's 330k → 230k reduction.

use crate::pipeline::AnalysisPipeline;
use rightcrowd_annotate::AnnotatorConfig;
use rightcrowd_graph::DocId;
use rightcrowd_index::{DocIdx, IndexBuilder, InvertedIndex};
use rightcrowd_synth::SyntheticDataset;
use std::collections::HashMap;

/// Ablation switches for corpus analysis. The defaults are the paper's
/// pipeline; the experiment harness flips individual stages off to measure
/// their contribution.
#[derive(Debug, Clone)]
pub struct CorpusOptions {
    /// Append the text of linked web pages to each document (the paper's
    /// URL-content-extraction stage).
    pub enrich_urls: bool,
    /// Annotator settings. `AnnotatorConfig { epsilon: 1.0, .. }` turns
    /// collective-agreement voting into commonness-only disambiguation —
    /// the classic ablation of TAGME's voting step.
    pub annotator: AnnotatorConfig,
    /// Number of analysis worker threads; `None` uses every available
    /// core. The produced corpus is identical for every value (see
    /// [`AnalyzedCorpus::build_with`]) — pinning it only matters for
    /// benchmarks and for the determinism test that proves the claim.
    pub worker_threads: Option<usize>,
}

impl Default for CorpusOptions {
    fn default() -> Self {
        CorpusOptions {
            enrich_urls: true,
            annotator: AnnotatorConfig::default(),
            worker_threads: None,
        }
    }
}

impl CorpusOptions {
    /// Commonness-only disambiguation (no context voting).
    pub fn commonness_only() -> Self {
        CorpusOptions {
            annotator: AnnotatorConfig { epsilon: 1.0, ..AnnotatorConfig::default() },
            ..Default::default()
        }
    }

    /// No URL-content enrichment.
    pub fn without_enrichment() -> Self {
        CorpusOptions { enrich_urls: false, ..Default::default() }
    }

    /// Pins the number of analysis worker threads.
    pub fn with_worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = Some(threads);
        self
    }
}

/// The analysed, indexed corpus of one dataset.
#[derive(Debug)]
pub struct AnalyzedCorpus {
    index: InvertedIndex,
    docs: Vec<DocId>,
    doc_of: HashMap<DocId, DocIdx>,
    dropped_non_english: usize,
}

impl AnalyzedCorpus {
    /// Analyses and indexes every document of `ds` with the paper's
    /// default pipeline.
    pub fn build(ds: &SyntheticDataset) -> Self {
        Self::build_with(ds, &CorpusOptions::default())
    }

    /// Analyses and indexes with explicit ablation options.
    ///
    /// Analysis is embarrassingly parallel and runs on scoped threads
    /// (one chunk per worker, every available core unless
    /// `options.worker_threads` pins a count); results are merged back in
    /// document order, so the produced index is byte-identical to a
    /// sequential build regardless of the thread count.
    pub fn build_with(ds: &SyntheticDataset, options: &CorpusOptions) -> Self {
        let _span = rightcrowd_obs::span!("corpus.build");
        let pipeline = AnalysisPipeline::with_config(ds.kb(), options.annotator.clone());

        // Work list: every document of the meta-model, profiles first
        // (ungated — see the pipeline docs), then resources, containers.
        enum Job {
            Ungated(DocId),
            Gated(DocId),
        }
        let mut jobs: Vec<Job> = Vec::with_capacity(
            ds.graph().profiles().len()
                + ds.graph().resources().len()
                + ds.graph().containers().len(),
        );
        jobs.extend(ds.graph().profiles().iter().map(|p| Job::Ungated(DocId::Profile(p.id))));
        jobs.extend(ds.graph().resources().iter().map(|r| Job::Gated(DocId::Res(r.id))));
        jobs.extend(ds.graph().containers().iter().map(|c| Job::Gated(DocId::Cont(c.id))));

        let web = ds.web();
        let enrich = options.enrich_urls;
        let analyze_one = |job: &Job| -> (DocId, Option<crate::pipeline::AnalyzedDoc>) {
            let (doc_id, raw, links, ungated) = match job {
                Job::Ungated(id @ DocId::Profile(u)) => {
                    let p = ds.graph().profile(*u);
                    (*id, p.text.as_str(), &p.links, true)
                }
                Job::Gated(id @ DocId::Res(r)) => {
                    let res = ds.graph().resource(*r);
                    (*id, res.text.as_str(), &res.links, false)
                }
                Job::Gated(id @ DocId::Cont(c)) => {
                    let cont = ds.graph().container(*c);
                    (*id, cont.text.as_str(), &cont.links, false)
                }
                _ => unreachable!("job kinds are fixed above"),
            };
            let pages: Vec<&str> = if enrich {
                links.iter().map(|&p| web.text(p)).collect()
            } else {
                Vec::new()
            };
            let _timer = rightcrowd_obs::time(rightcrowd_obs::HistId::AnalyzeDocLatency);
            let analyzed = if ungated {
                pipeline.analyze_doc_ungated(raw, &pages)
            } else {
                pipeline.analyze_doc(raw, &pages)
            };
            let keep = ungated || analyzed.retained();
            (doc_id, keep.then_some(analyzed))
        };

        let threads = options.worker_threads.unwrap_or_else(crate::par::default_threads);
        let analyzed = crate::par::par_map(&jobs, threads, analyze_one);

        // Sequential merge in job order keeps DocIdx assignment (and
        // therefore every downstream tie-break) deterministic.
        let mut builder = IndexBuilder::new();
        let mut docs = Vec::new();
        let mut doc_of = HashMap::new();
        let mut dropped = 0usize;
        for (doc_id, maybe_doc) in analyzed {
            match maybe_doc {
                Some(doc) => {
                    let idx = builder.add_document(&doc.terms, &doc.entities);
                    docs.push(doc_id);
                    doc_of.insert(doc_id, idx);
                }
                None => dropped += 1,
            }
        }

        AnalyzedCorpus {
            index: builder.build(),
            docs,
            doc_of,
            dropped_non_english: dropped,
        }
    }

    /// Reassembles a corpus from snapshot parts (see `rightcrowd-store`):
    /// the deserialized index plus the retained-document table in index
    /// order. The `DocId → DocIdx` map is rebuilt here rather than
    /// persisted — it is derived state.
    pub fn from_parts(
        index: InvertedIndex,
        docs: Vec<DocId>,
        dropped_non_english: usize,
    ) -> Result<Self, String> {
        if index.doc_count() != docs.len() {
            return Err(format!(
                "document table length {} != index document count {}",
                docs.len(),
                index.doc_count()
            ));
        }
        let mut doc_of = HashMap::with_capacity(docs.len());
        for (i, &id) in docs.iter().enumerate() {
            if doc_of.insert(id, DocIdx(i as u32)).is_some() {
                return Err(format!("duplicate document id {id:?} in document table"));
            }
        }
        Ok(AnalyzedCorpus { index, docs, doc_of, dropped_non_english })
    }

    /// The retained documents in index order (`doc_ids()[idx] = DocId`).
    pub fn doc_ids(&self) -> &[DocId] {
        &self.docs
    }

    /// The inverted index over retained documents.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The graph document behind an index handle.
    pub fn doc_id(&self, idx: DocIdx) -> DocId {
        self.docs[idx.index()]
    }

    /// The index handle of a graph document (absent when the document was
    /// dropped as non-English).
    pub fn doc_idx(&self, id: DocId) -> Option<DocIdx> {
        self.doc_of.get(&id).copied()
    }

    /// Number of retained (indexed) documents.
    pub fn retained(&self) -> usize {
        self.docs.len()
    }

    /// Number of documents dropped by the language gate.
    pub fn dropped_non_english(&self) -> usize {
        self.dropped_non_english
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> &'static (SyntheticDataset, AnalyzedCorpus) {
        crate::testkit::tiny()
    }

    #[test]
    fn corpus_indexes_most_english_documents() {
        let (ds, corpus) = tiny_corpus();
        let total = ds.graph().profiles().len()
            + ds.graph().resources().len()
            + ds.graph().containers().len();
        assert!(corpus.retained() > total / 2, "{} of {total}", corpus.retained());
        assert!(corpus.dropped_non_english() > 0, "language gate must drop something");
        assert_eq!(
            corpus.retained() + corpus.dropped_non_english(),
            total,
            "every document is either retained or dropped"
        );
    }

    #[test]
    fn doc_mapping_roundtrips() {
        let (_ds, corpus) = tiny_corpus();
        for raw in 0..corpus.retained().min(200) {
            let idx = DocIdx(raw as u32);
            let id = corpus.doc_id(idx);
            assert_eq!(corpus.doc_idx(id), Some(idx));
        }
    }

    #[test]
    fn candidate_profiles_always_indexed() {
        let (ds, corpus) = tiny_corpus();
        for person in ds.candidates() {
            for (_, account) in person.existing_accounts() {
                assert!(
                    corpus.doc_idx(DocId::Profile(account)).is_some(),
                    "profile of {} must be indexed",
                    person.name
                );
            }
        }
    }

    #[test]
    fn index_matches_domain_query() {
        let (ds, corpus) = tiny_corpus();
        let pipeline = AnalysisPipeline::new(ds.kb());
        let q = pipeline.analyze_query("freestyle swimming training at the pool");
        let hits = corpus.index().score_all(&q, 0.6);
        assert!(!hits.is_empty(), "sport query must match generated content");
    }
}
