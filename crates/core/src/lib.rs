//! # rightcrowd-core
//!
//! The paper's social expert finding system (Fig. 1): resource analysis,
//! expertise-need analysis, expertise-to-candidate matching, and expert
//! ranking.
//!
//! The flow mirrors §2 of the paper end to end:
//!
//! 1. **Analysis** ([`pipeline`]) — every social document (profile,
//!    resource, container description) runs through URL-content enrichment,
//!    language identification (non-English documents are dropped), text
//!    processing, and TAGME-style entity recognition & disambiguation.
//! 2. **Indexing** ([`corpus`]) — analysed documents enter a dual
//!    term+entity inverted index; inverse resource frequencies are computed
//!    over the whole retained collection.
//! 3. **Matching** — an expertise need is analysed symmetrically and scored
//!    against the collection with Eq. 1 (`α`-mix of `tf·irf²` and
//!    `ef·eirf²·we`, with `we = 1 + dScore` per Eq. 2).
//! 4. **Ranking** ([`ranker`]) — the top-window matching resources are
//!    attributed to candidate experts through the social graph (Table 1
//!    distances) and aggregated with Eq. 3
//!    (`score(q,ex) = Σ score(q,ri)·wr(ri,ex)`), with `wr` linearly
//!    decreasing in distance over `[0.5, 1]`.
//!
//! [`ExpertFinder`] packages the flow behind one call; [`eval`] adds the
//! evaluation harness (metrics vs. ground truth, the paper's random
//! baseline, per-user reliability, retrieved-expert deltas) that the
//! experiment binaries build on.

pub mod aggregation;
pub mod attribution;
pub mod baseline;
pub mod config;
pub mod corpus;
pub mod domain_aware;
pub mod eval;
pub mod explain;
pub mod finder;
pub mod par;
pub mod pipeline;
pub mod ranker;
pub mod routing;
pub mod testkit;

pub use aggregation::Aggregation;
pub use attribution::{Attribution, AttributionCache, CacheStats, TraversalShape};
pub use config::{FinderConfig, Retrieval, WindowSize};
pub use corpus::{AnalyzedCorpus, CorpusOptions};
pub use domain_aware::DomainPolicy;
pub use eval::{ConfigOutcome, EvalContext, UserReliability};
pub use explain::{
    rank_explained, ExplainedExpert, ExplainedRanking, ExplainedResource, ResourceContribution,
};
pub use finder::{ExpertFinder, RankedExpert};
pub use pipeline::{AnalysisPipeline, AnalyzedDoc};
pub use routing::{RoutingOutcome, RoutingStrategy};
