//! Expert ranking — Eq. 3 of the paper.
//!
//! Given the scored match set `RR` of a query, keep the top-window
//! resources that are attributable to at least one candidate, and
//! aggregate per candidate:
//!
//! ```text
//! score(q, ex) = Σ_{ri ∈ RR_window}  score(q, ri) · wr(ri, ex)
//! ```
//!
//! No normalisation by resource count is applied — the paper explicitly
//! assumes a direct correlation between the *number* of matching resources
//! and expertise (§2.4.1); the window bounds the sum instead.

use crate::attribution::Attribution;
use crate::config::FinderConfig;
use crate::corpus::AnalyzedCorpus;
use rightcrowd_index::{ComponentScore, Query, ScoredDoc};
use rightcrowd_types::PersonId;

/// One ranked candidate expert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedExpert {
    /// The candidate.
    pub person: PersonId,
    /// The Eq. 3 expertise score (strictly positive).
    pub score: f64,
}

/// Ranks the candidates of a dataset for one analysed query.
///
/// Returns only candidates with `score > 0`, best first (ties broken by
/// person id for determinism).
pub fn rank_query(
    corpus: &AnalyzedCorpus,
    attribution: &Attribution,
    config: &FinderConfig,
    query: &Query,
    candidate_count: usize,
) -> Vec<RankedExpert> {
    // RR: matching documents that are evidence for at least one candidate
    // under the active configuration. A fixed-count window under the
    // paper's VSM can use the bounded-heap retrieval path;
    // fractional/unbounded windows (and BM25) take the full-sort path.
    let (eligible, window) = match (config.retrieval, config.window) {
        (crate::config::Retrieval::PaperVsm, crate::config::WindowSize::Count(n)) => {
            let top = corpus
                .index()
                .score_top_k(query, config.alpha, n, |d| attribution.is_attributed(d));
            let window = top.len();
            (top, window)
        }
        (retrieval, window_size) => {
            let scored = match retrieval {
                crate::config::Retrieval::PaperVsm => {
                    corpus.index().score_all(query, config.alpha)
                }
                crate::config::Retrieval::Bm25(params) => {
                    corpus.index().score_all_bm25(query, config.alpha, params)
                }
            };
            let eligible: Vec<_> = scored
                .into_iter()
                .filter(|s| attribution.is_attributed(s.doc))
                .collect();
            let window = window_size.resolve(eligible.len());
            (eligible, window)
        }
    };

    rank_scored(attribution, config, &eligible, window, candidate_count)
}

/// Ranks candidates for an already-retrieved, attribution-filtered match
/// set (`RR`, best first): the Eq. 3 aggregation step shared by
/// [`rank_query`] and [`rank_components`].
///
/// The first `window` entries of `eligible` are aggregated; the rest are
/// the cut-off tail.
pub fn rank_scored(
    attribution: &Attribution,
    config: &FinderConfig,
    eligible: &[ScoredDoc],
    window: usize,
    candidate_count: usize,
) -> Vec<RankedExpert> {
    let mut acc = vec![crate::aggregation::FusionAcc::default(); candidate_count];
    for (rank0, s) in eligible[..window].iter().enumerate() {
        for &(person, distance) in attribution.owners(s.doc) {
            acc[person.index()].record(s.score * config.weight(distance), rank0 + 1);
        }
    }

    let mut ranked: Vec<RankedExpert> = acc
        .into_iter()
        .enumerate()
        .map(|(i, fusion)| {
            let mut score = fusion.fuse(config.aggregation);
            if config.normalize_by_evidence && fusion.votes > 0 {
                score /= fusion.votes as f64;
            }
            (i, score)
        })
        .filter(|&(_, score)| score > 0.0)
        .map(|(i, score)| RankedExpert { person: PersonId::new(i as u32), score })
        .collect();
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then_with(|| a.person.cmp(&b.person))
    });
    ranked
}

/// Filters a query's score components down to attributed documents — the
/// α-independent half of the `RR` eligibility test, hoisted out of the
/// per-α loop of [`rank_components`].
pub fn attributed_components(
    attribution: &Attribution,
    components: &[ComponentScore],
) -> Vec<ComponentScore> {
    components
        .iter()
        .filter(|c| attribution.is_attributed(c.doc))
        .copied()
        .collect()
}

/// Ranks candidates from a query's precomputed, attribution-filtered
/// Eq. 1 score components (see [`attributed_components`]).
///
/// `components` is the α-independent factoring of the paper's VSM
/// ([`InvertedIndex::score_components`]): one posting traversal produces
/// the term and entity sums of every matching document, and this function
/// recombines them for `config.alpha` without touching the index again.
/// An α sweep therefore costs one traversal (plus one attribution filter)
/// total instead of one per sweep point.
///
/// Mirrors [`rank_query`]'s retrieval paths for the paper's VSM (the
/// `retrieval` field is ignored — components *are* the VSM scores): a
/// fixed-count window recombines through the bounded-heap top-k, other
/// windows recombine fully and resolve the window on the eligible set.
/// Scores agree with [`rank_query`] to within float reassociation (ulps);
/// rankings agree wherever scores are not within an ulp of tied.
///
/// [`InvertedIndex::score_components`]: rightcrowd_index::InvertedIndex::score_components
pub fn rank_components(
    attribution: &Attribution,
    config: &FinderConfig,
    components: &[ComponentScore],
    candidate_count: usize,
) -> Vec<RankedExpert> {
    let (eligible, window) = match config.window {
        crate::config::WindowSize::Count(n) => {
            let top = rightcrowd_index::recombine_top_k(components, config.alpha, n, |_| true);
            let window = top.len();
            (top, window)
        }
        window_size => {
            let eligible = rightcrowd_index::recombine(components, config.alpha);
            let window = window_size.resolve(eligible.len());
            (eligible, window)
        }
    };
    rank_scored(attribution, config, &eligible, window, candidate_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::AnalysisPipeline;
    use rightcrowd_synth::SyntheticDataset;
    use rightcrowd_types::Distance;

    fn setup() -> &'static (SyntheticDataset, AnalyzedCorpus) {
        crate::testkit::tiny()
    }

    #[test]
    fn ranking_is_sorted_positive_and_bounded() {
        let (ds, corpus) = setup();
        let config = FinderConfig::default();
        let attribution = Attribution::compute(ds, corpus, &config);
        let pipeline = AnalysisPipeline::new(ds.kb());
        for need in ds.queries().iter().take(6) {
            let q = pipeline.analyze_query(&need.text);
            let ranked = rank_query(corpus, &attribution, &config, &q, ds.candidates().len());
            assert!(ranked.len() <= ds.candidates().len());
            for w in ranked.windows(2) {
                assert!(w[0].score >= w[1].score);
            }
            for r in &ranked {
                assert!(r.score > 0.0);
            }
        }
    }

    #[test]
    fn distance0_retrieves_fewer_candidates_than_distance2() {
        let (ds, corpus) = setup();
        let pipeline = AnalysisPipeline::new(ds.kb());
        let q = pipeline.analyze_query(&ds.queries()[5].text); // sport example
        let cfg0 = FinderConfig::default().with_distance(Distance::D0);
        let cfg2 = FinderConfig::default();
        let a0 = Attribution::compute(ds, corpus, &cfg0);
        let a2 = Attribution::compute(ds, corpus, &cfg2);
        let r0 = rank_query(corpus, &a0, &cfg0, &q, ds.candidates().len());
        let r2 = rank_query(corpus, &a2, &cfg2, &q, ds.candidates().len());
        assert!(r0.len() <= r2.len(), "d0 {} vs d2 {}", r0.len(), r2.len());
        assert!(!r2.is_empty());
    }

    #[test]
    fn zero_window_yields_empty_ranking() {
        let (ds, corpus) = setup();
        let config = FinderConfig::default().with_window(crate::config::WindowSize::Fraction(0.0));
        let attribution = Attribution::compute(ds, corpus, &config);
        let pipeline = AnalysisPipeline::new(ds.kb());
        let q = pipeline.analyze_query(&ds.queries()[0].text);
        let ranked = rank_query(corpus, &attribution, &config, &q, ds.candidates().len());
        assert!(ranked.is_empty());
    }

    #[test]
    fn bm25_and_alternative_fusions_produce_sane_rankings() {
        let (ds, corpus) = setup();
        let pipeline = AnalysisPipeline::new(ds.kb());
        let q = pipeline.analyze_query(&ds.queries()[5].text);
        let attribution = Attribution::compute(ds, corpus, &FinderConfig::default());
        for retrieval in [
            crate::config::Retrieval::PaperVsm,
            crate::config::Retrieval::Bm25(Default::default()),
        ] {
            for aggregation in crate::aggregation::Aggregation::ALL {
                let config = FinderConfig { retrieval, aggregation, ..FinderConfig::default() };
                let ranked = rank_query(corpus, &attribution, &config, &q, ds.candidates().len());
                assert!(!ranked.is_empty(), "{aggregation} retrieved nobody");
                for w in ranked.windows(2) {
                    assert!(w[0].score >= w[1].score, "{aggregation} unsorted");
                }
            }
        }
    }

    #[test]
    fn vsm_count_window_paths_agree() {
        // The heap path (Count window) and the sort path (Fraction window
        // resolving to the same n) must produce identical rankings.
        let (ds, corpus) = setup();
        let pipeline = AnalysisPipeline::new(ds.kb());
        let q = pipeline.analyze_query(&ds.queries()[2].text);
        let attribution = Attribution::compute(ds, corpus, &FinderConfig::default());
        let count_cfg = FinderConfig::default().with_window(crate::config::WindowSize::Count(50));
        let by_heap = rank_query(corpus, &attribution, &count_cfg, &q, ds.candidates().len());

        // Find the eligible size to build an equivalent fraction.
        let eligible = corpus
            .index()
            .score_all(&q, count_cfg.alpha)
            .into_iter()
            .filter(|s| attribution.is_attributed(s.doc))
            .count();
        if eligible < 50 {
            return;
        }
        let fraction = (50.0 - 0.5) / eligible as f64; // ceil(f·n) == 50
        let frac_cfg =
            FinderConfig::default().with_window(crate::config::WindowSize::Fraction(fraction));
        let by_sort = rank_query(corpus, &attribution, &frac_cfg, &q, ds.candidates().len());
        assert_eq!(by_heap, by_sort);
    }

    #[test]
    fn components_path_matches_query_path() {
        // rank_components over one score_components traversal must agree
        // with rank_query for every α and window kind (scores to float
        // reassociation tolerance, order exactly).
        let (ds, corpus) = setup();
        let pipeline = AnalysisPipeline::new(ds.kb());
        let attribution = Attribution::compute(ds, corpus, &FinderConfig::default());
        let n = ds.candidates().len();
        for need in ds.queries().iter().take(4) {
            let q = pipeline.analyze_query(&need.text);
            let components =
                attributed_components(&attribution, &corpus.index().score_components(&q));
            for alpha in [0.0, 0.6, 1.0] {
                for window in [
                    crate::config::WindowSize::Count(50),
                    crate::config::WindowSize::Fraction(0.5),
                    crate::config::WindowSize::All,
                ] {
                    let config = FinderConfig::default().with_alpha(alpha).with_window(window);
                    let direct = rank_query(corpus, &attribution, &config, &q, n);
                    let factored = rank_components(&attribution, &config, &components, n);
                    assert_eq!(direct.len(), factored.len(), "α {alpha} {window:?}");
                    for (d, f) in direct.iter().zip(&factored) {
                        assert_eq!(d.person, f.person, "α {alpha} {window:?}");
                        let tol = 1e-9 * d.score.abs().max(1.0);
                        assert!(
                            (d.score - f.score).abs() <= tol,
                            "α {alpha} {window:?}: {} vs {}",
                            d.score,
                            f.score
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn larger_window_never_reduces_retrieved_experts() {
        let (ds, corpus) = setup();
        let pipeline = AnalysisPipeline::new(ds.kb());
        let q = pipeline.analyze_query(&ds.queries()[1].text);
        let mut prev = 0usize;
        for n in [1usize, 10, 100, 1000] {
            let config = FinderConfig::default().with_window(crate::config::WindowSize::Count(n));
            let attribution = Attribution::compute(ds, corpus, &config);
            let ranked = rank_query(corpus, &attribution, &config, &q, ds.candidates().len());
            assert!(ranked.len() >= prev, "window {n}");
            prev = ranked.len();
        }
    }
}
