//! The public façade: build once, rank queries.

use crate::attribution::Attribution;
use crate::config::FinderConfig;
use crate::corpus::AnalyzedCorpus;
use crate::pipeline::AnalysisPipeline;
pub use crate::ranker::RankedExpert;
use crate::ranker::rank_query;
use rightcrowd_synth::{ExpertiseNeed, SyntheticDataset};

/// The end-to-end social expert finding system of the paper's Fig. 1,
/// bound to one dataset and one configuration.
///
/// ```
/// use rightcrowd_core::{ExpertFinder, FinderConfig};
/// use rightcrowd_synth::{DatasetConfig, SyntheticDataset};
///
/// let dataset = SyntheticDataset::generate(&DatasetConfig::tiny());
/// let finder = ExpertFinder::build(&dataset, &FinderConfig::default());
/// let ranking = finder.rank(&dataset.queries()[0]);
/// assert!(ranking.len() <= dataset.candidates().len());
/// ```
pub struct ExpertFinder<'a> {
    ds: &'a SyntheticDataset,
    pipeline: AnalysisPipeline<'a>,
    corpus: AnalyzedCorpus,
    attribution: Attribution,
    config: FinderConfig,
}

impl<'a> ExpertFinder<'a> {
    /// Analyses and indexes the dataset's documents, then computes the
    /// evidence attribution for `config`. The expensive part is the corpus
    /// analysis; see [`ExpertFinder::with_corpus`] to reuse one.
    pub fn build(ds: &'a SyntheticDataset, config: &FinderConfig) -> Self {
        let corpus = AnalyzedCorpus::build(ds);
        Self::with_corpus(ds, corpus, config)
    }

    /// Wraps an already-analysed corpus (cheap: only attribution is
    /// recomputed). This is how the experiment harness sweeps
    /// configurations without re-analysing 300k documents per point.
    pub fn with_corpus(ds: &'a SyntheticDataset, corpus: AnalyzedCorpus, config: &FinderConfig) -> Self {
        let attribution = Attribution::compute(ds, &corpus, config);
        ExpertFinder {
            ds,
            pipeline: AnalysisPipeline::new(ds.kb()),
            corpus,
            attribution,
            config: config.clone(),
        }
    }

    /// Re-targets the finder to a new configuration, reusing the corpus.
    pub fn reconfigure(self, config: &FinderConfig) -> Self {
        Self::with_corpus(self.ds, self.corpus, config)
    }

    /// The active configuration.
    pub fn config(&self) -> &FinderConfig {
        &self.config
    }

    /// The analysed corpus.
    pub fn corpus(&self) -> &AnalyzedCorpus {
        &self.corpus
    }

    /// The evidence attribution of the active configuration.
    pub fn attribution(&self) -> &Attribution {
        &self.attribution
    }

    /// Ranks the candidates for a workload query.
    pub fn rank(&self, need: &ExpertiseNeed) -> Vec<RankedExpert> {
        self.rank_text(&need.text)
    }

    /// Ranks the candidates for a free-form expertise need.
    pub fn rank_text(&self, text: &str) -> Vec<RankedExpert> {
        let query = self.pipeline.analyze_query(text);
        rank_query(
            &self.corpus,
            &self.attribution,
            &self.config,
            &query,
            self.ds.candidates().len(),
        )
    }

    /// The top-k experts for a need — the "small crowd" the paper routes
    /// questions to.
    pub fn top_k(&self, need: &ExpertiseNeed, k: usize) -> Vec<RankedExpert> {
        let mut ranking = self.rank(need);
        ranking.truncate(k);
        ranking
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rightcrowd_synth::DatasetConfig;

    #[test]
    fn build_and_rank_all_queries() {
        let ds = SyntheticDataset::generate(&DatasetConfig::tiny());
        let finder = ExpertFinder::build(&ds, &FinderConfig::default());
        let mut non_empty = 0;
        for need in ds.queries() {
            let ranking = finder.rank(need);
            if !ranking.is_empty() {
                non_empty += 1;
            }
        }
        assert!(non_empty >= 25, "most queries must retrieve someone: {non_empty}/30");
    }

    #[test]
    fn top_k_truncates() {
        let ds = SyntheticDataset::generate(&DatasetConfig::tiny());
        let finder = ExpertFinder::build(&ds, &FinderConfig::default());
        let top3 = finder.top_k(&ds.queries()[5], 3);
        assert!(top3.len() <= 3);
        let full = finder.rank(&ds.queries()[5]);
        assert_eq!(&full[..top3.len()], &top3[..]);
    }

    #[test]
    fn reconfigure_reuses_corpus() {
        let ds = SyntheticDataset::generate(&DatasetConfig::tiny());
        let finder = ExpertFinder::build(&ds, &FinderConfig::default());
        let retained = finder.corpus().retained();
        let finder = finder.reconfigure(&FinderConfig::default().with_alpha(0.1));
        assert_eq!(finder.corpus().retained(), retained);
        assert!((finder.config().alpha - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rank_text_accepts_free_form_needs() {
        let ds = SyntheticDataset::generate(&DatasetConfig::tiny());
        let finder = ExpertFinder::build(&ds, &FinderConfig::default());
        let ranking = finder.rank_text("who knows about freestyle swimming training");
        // The tiny dataset always has sporty content.
        assert!(!ranking.is_empty());
    }
}
