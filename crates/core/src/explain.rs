//! Score-explain traces: why did a candidate rank where it did?
//!
//! [`rank_explained`] runs the same pipeline as
//! [`rank_query`](crate::ranker::rank_query) — Eq. 1 scoring, attribution
//! filter, Eq. 3 window and aggregation — but keeps every intermediate:
//! the term/entity split of each matching resource, its α-recombined
//! score and window position, and each candidate's per-resource
//! contribution `score(q, ri) · wr(ri, ex)` with distance and weight. The
//! decomposition is built with the *identical* arithmetic and iteration
//! order as the production ranker, so under the paper's weighted-sum
//! aggregation the parts sum to the ranked score exactly (and to
//! [`rank_query`] within float reassociation, see `tests/explain.rs`).

use crate::aggregation::{Aggregation, FusionAcc};
use crate::attribution::Attribution;
use crate::config::FinderConfig;
use crate::corpus::AnalyzedCorpus;
use crate::ranker::{attributed_components, rank_components, RankedExpert};
use rightcrowd_index::{ComponentScore, DocIdx, Query};
use rightcrowd_types::{Distance, PersonId};

/// One matching resource of an explained query, in relevance-rank order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExplainedResource {
    /// The document.
    pub doc: DocIdx,
    /// 1-based position in the relevance ranking `RR`.
    pub rank: usize,
    /// α-free term evidence `Σ tf·irf²`.
    pub term_sum: f64,
    /// α-free entity evidence `Σ ef·eirf²·we`.
    pub entity_sum: f64,
    /// `α · term_sum` — the term side of Eq. 1 at the active α.
    pub term_score: f64,
    /// `(1−α) · entity_sum` — the entity side of Eq. 1.
    pub entity_score: f64,
    /// The recombined Eq. 1 document score (`term_score + entity_score`).
    pub score: f64,
    /// Whether the resource made the Eq. 3 window (false ⇒ cut off).
    pub in_window: bool,
}

/// One resource's contribution to one candidate's Eq. 3 score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceContribution {
    /// The contributing document.
    pub doc: DocIdx,
    /// Its 1-based relevance rank.
    pub rank: usize,
    /// Graph distance at which the document is attributed to the
    /// candidate.
    pub distance: Distance,
    /// The distance weight `wr(ri, ex)` applied.
    pub wr: f64,
    /// Term side of the document's Eq. 1 score.
    pub term_score: f64,
    /// Entity side of the document's Eq. 1 score.
    pub entity_score: f64,
    /// The document's full Eq. 1 score.
    pub doc_score: f64,
    /// `doc_score · wr` — the Eq. 3 summand.
    pub contribution: f64,
    /// False when the document matched but fell outside the window (its
    /// `contribution` is what the candidate *lost* to the cutoff).
    pub in_window: bool,
}

/// One candidate with their score fully decomposed.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainedExpert {
    /// The candidate.
    pub person: PersonId,
    /// The ranked Eq. 3 score — identical to what
    /// [`rank_components`] produces for this configuration.
    pub score: f64,
    /// Number of in-window resources that contributed.
    pub votes: u32,
    /// Every attributed matching resource, relevance-rank order,
    /// including cut-off ones (flagged `in_window: false`).
    pub contributions: Vec<ResourceContribution>,
}

impl ExplainedExpert {
    /// Replays the decomposition: sums the in-window contributions in
    /// recorded order (applying evidence normalisation when configured).
    /// Additive only under the paper's weighted-sum aggregation — returns
    /// `None` for voting/fusion aggregations, whose scores are not sums
    /// of per-resource parts.
    pub fn decomposed_score(&self, config: &FinderConfig) -> Option<f64> {
        if config.aggregation != Aggregation::WeightedSum {
            return None;
        }
        let mut sum = 0.0;
        for c in self.contributions.iter().filter(|c| c.in_window) {
            sum += c.contribution;
        }
        if config.normalize_by_evidence && self.votes > 0 {
            sum /= self.votes as f64;
        }
        Some(sum)
    }
}

/// A ranking with full score provenance, produced by [`rank_explained`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainedRanking {
    /// The α the scores were recombined at.
    pub alpha: f64,
    /// Size of the attributed match set `RR`.
    pub matches: usize,
    /// The resolved Eq. 3 window `n` (first `window` resources count).
    pub window: usize,
    /// Every matching resource, relevance-rank order.
    pub resources: Vec<ExplainedResource>,
    /// Candidates with positive scores, best first.
    pub experts: Vec<ExplainedExpert>,
}

impl ExplainedRanking {
    /// Resources excluded by the window cutoff (`matches − window`).
    pub fn cutoff(&self) -> usize {
        self.matches - self.window
    }

    /// The explanation for one candidate, if they ranked.
    pub fn expert(&self, person: PersonId) -> Option<&ExplainedExpert> {
        self.experts.iter().find(|e| e.person == person)
    }

    /// The plain ranking view (what [`rank_components`] returns).
    pub fn ranked(&self) -> Vec<RankedExpert> {
        self.experts
            .iter()
            .map(|e| RankedExpert { person: e.person, score: e.score })
            .collect()
    }

    /// Largest `|score − Σ contributions|` over all ranked experts, as a
    /// relative error. Zero (to the last bit) for the weighted-sum
    /// aggregation, because the decomposition replays the exact
    /// accumulation; `None` when the aggregation is not additive.
    pub fn max_decomposition_error(&self, config: &FinderConfig) -> Option<f64> {
        let mut worst = 0.0f64;
        for e in &self.experts {
            let replayed = e.decomposed_score(config)?;
            let rel = (e.score - replayed).abs() / e.score.abs().max(1.0);
            worst = worst.max(rel);
        }
        Some(worst)
    }
}

/// Ranks the candidates for one analysed query, keeping the full score
/// decomposition. Same retrieval, filter, window and aggregation as
/// [`rank_query`](crate::ranker::rank_query); the paper's VSM only
/// (components are Eq. 1 factorings — BM25 has no term/entity split).
pub fn rank_explained(
    corpus: &AnalyzedCorpus,
    attribution: &Attribution,
    config: &FinderConfig,
    query: &Query,
    candidate_count: usize,
) -> ExplainedRanking {
    let _span = rightcrowd_obs::span!("core.rank_explained");
    debug_assert!(
        matches!(config.retrieval, crate::config::Retrieval::PaperVsm),
        "explain decomposes the paper's VSM; BM25 has no component form"
    );
    let components =
        attributed_components(attribution, &corpus.index().score_components(query));
    let explained = explain_components(attribution, config, &components, candidate_count);
    // The decomposition must be the ranking: identical candidates and
    // bit-identical scores versus the factored production path, and —
    // when the aggregation is additive — parts that sum to the score.
    debug_assert_eq!(
        explained.ranked(),
        rank_components(attribution, config, &components, candidate_count),
        "explained ranking diverged from rank_components"
    );
    debug_assert!(
        explained.max_decomposition_error(config).is_none_or(|e| e <= 1e-12),
        "per-resource contributions do not sum to the ranked score"
    );
    explained
}

/// [`rank_explained`] over precomputed, attribution-filtered components
/// (the α-sweep form; see [`attributed_components`]).
pub fn explain_components(
    attribution: &Attribution,
    config: &FinderConfig,
    components: &[ComponentScore],
    candidate_count: usize,
) -> ExplainedRanking {
    let alpha = config.alpha.clamp(0.0, 1.0);

    // Mirror `recombine`: same score expression, same positivity filter,
    // same (desc score, asc doc) order — so ranks and window membership
    // are exactly the production ranker's.
    let mut resources: Vec<ExplainedResource> = components
        .iter()
        .filter_map(|c| {
            let score = alpha * c.term_sum + (1.0 - alpha) * c.entity_sum;
            (score > 0.0).then_some(ExplainedResource {
                doc: c.doc,
                rank: 0,
                term_sum: c.term_sum,
                entity_sum: c.entity_sum,
                term_score: alpha * c.term_sum,
                entity_score: (1.0 - alpha) * c.entity_sum,
                score,
                in_window: false,
            })
        })
        .collect();
    resources.sort_unstable_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then_with(|| a.doc.cmp(&b.doc))
    });
    let matches = resources.len();
    let window = config.window.resolve(matches);
    for (i, r) in resources.iter_mut().enumerate() {
        r.rank = i + 1;
        r.in_window = i < window;
    }

    // Mirror `rank_scored`: same accumulator, same iteration order over
    // the window. Cut-off resources are *captured* but never recorded.
    let mut accs = vec![FusionAcc::default(); candidate_count];
    let mut contribs: Vec<Vec<ResourceContribution>> = vec![Vec::new(); candidate_count];
    for r in &resources {
        for &(person, distance) in attribution.owners(r.doc) {
            let wr = config.weight(distance);
            let contribution = r.score * wr;
            if r.in_window {
                accs[person.index()].record(contribution, r.rank);
            }
            contribs[person.index()].push(ResourceContribution {
                doc: r.doc,
                rank: r.rank,
                distance,
                wr,
                term_score: r.term_score,
                entity_score: r.entity_score,
                doc_score: r.score,
                contribution,
                in_window: r.in_window,
            });
        }
    }

    let mut experts: Vec<ExplainedExpert> = accs
        .into_iter()
        .zip(contribs)
        .enumerate()
        .filter_map(|(i, (fusion, contributions))| {
            let mut score = fusion.fuse(config.aggregation);
            if config.normalize_by_evidence && fusion.votes > 0 {
                score /= fusion.votes as f64;
            }
            (score > 0.0).then_some(ExplainedExpert {
                person: PersonId::new(i as u32),
                score,
                votes: fusion.votes,
                contributions,
            })
        })
        .collect();
    experts.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then_with(|| a.person.cmp(&b.person))
    });

    ExplainedRanking { alpha, matches, window, resources, experts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WindowSize;
    use crate::pipeline::AnalysisPipeline;
    use crate::ranker::rank_query;

    fn setup() -> &'static (rightcrowd_synth::SyntheticDataset, AnalyzedCorpus) {
        crate::testkit::tiny()
    }

    #[test]
    fn explained_scores_match_rank_query_and_parts_sum() {
        let (ds, corpus) = setup();
        let pipeline = AnalysisPipeline::new(ds.kb());
        let config = FinderConfig::default();
        let attribution = Attribution::compute(ds, corpus, &config);
        let n = ds.candidates().len();
        for need in ds.queries().iter().take(6) {
            let q = pipeline.analyze_query(&need.text);
            let explained = rank_explained(corpus, &attribution, &config, &q, n);
            let direct = rank_query(corpus, &attribution, &config, &q, n);
            assert_eq!(explained.experts.len(), direct.len());
            // The two paths reassociate float sums differently, so
            // near-tied experts may swap positions; compare per person.
            for d in &direct {
                let e = explained.expert(d.person).expect("same expert set");
                let tol = 1e-9 * d.score.abs().max(1.0);
                assert!((e.score - d.score).abs() <= tol, "{} vs {}", e.score, d.score);
                let replayed = e.decomposed_score(&config).expect("weighted-sum is additive");
                assert_eq!(replayed, e.score, "decomposition must replay exactly");
            }
        }
    }

    #[test]
    fn window_flags_count_the_cutoff() {
        let (ds, corpus) = setup();
        let pipeline = AnalysisPipeline::new(ds.kb());
        let config = FinderConfig::default().with_window(WindowSize::Count(5));
        let attribution = Attribution::compute(ds, corpus, &config);
        let q = pipeline.analyze_query(&ds.queries()[0].text);
        let explained =
            rank_explained(corpus, &attribution, &config, &q, ds.candidates().len());
        let cut = explained.resources.iter().filter(|r| !r.in_window).count();
        assert_eq!(cut, explained.cutoff());
        assert_eq!(explained.cutoff(), explained.matches - explained.window);
        assert!(explained.window <= 5);
        // Ranks are 1..=matches in order, window prefix flagged.
        for (i, r) in explained.resources.iter().enumerate() {
            assert_eq!(r.rank, i + 1);
            assert_eq!(r.in_window, i < explained.window);
        }
    }

    #[test]
    fn contributions_carry_distance_weights_and_splits() {
        let (ds, corpus) = setup();
        let pipeline = AnalysisPipeline::new(ds.kb());
        let config = FinderConfig::default();
        let attribution = Attribution::compute(ds, corpus, &config);
        let q = pipeline.analyze_query(&ds.queries()[2].text);
        let explained =
            rank_explained(corpus, &attribution, &config, &q, ds.candidates().len());
        assert!(!explained.experts.is_empty());
        for e in &explained.experts {
            assert!(e.votes > 0);
            for c in &e.contributions {
                assert_eq!(c.wr, config.weight(c.distance));
                assert_eq!(c.contribution, c.doc_score * c.wr);
                assert_eq!(c.doc_score, c.term_score + c.entity_score);
            }
        }
        // Lookup by person works.
        let first = explained.experts[0].person;
        assert_eq!(explained.expert(first).unwrap().person, first);
    }

    #[test]
    fn non_additive_aggregations_refuse_decomposition() {
        let (ds, corpus) = setup();
        let pipeline = AnalysisPipeline::new(ds.kb());
        let config = FinderConfig {
            aggregation: Aggregation::Votes,
            ..FinderConfig::default()
        };
        let attribution = Attribution::compute(ds, corpus, &config);
        let q = pipeline.analyze_query(&ds.queries()[1].text);
        let explained =
            rank_explained(corpus, &attribution, &config, &q, ds.candidates().len());
        assert!(explained.max_decomposition_error(&config).is_none());
        if let Some(e) = explained.experts.first() {
            assert!(e.decomposed_score(&config).is_none());
        }
    }
}
