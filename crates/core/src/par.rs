//! Minimal order-preserving data parallelism over scoped threads.
//!
//! Both corpus analysis and workload evaluation are embarrassingly
//! parallel: a list of independent items, one result each, merged back in
//! input order. This module is the one shared implementation — chunked
//! `std::thread::scope` fan-out with a deterministic in-order merge — so
//! every parallel path in the workspace (corpus analysis, workload
//! evaluation, and the sharded snapshot save/load in `rightcrowd-store`)
//! has identical semantics: the output of `par_map(items, t, f)` equals
//! `items.iter().map(f).collect()` for every thread count `t`.

/// Number of worker threads to use when the caller does not pin one.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` on up to `threads` scoped worker threads and
/// returns the results in input order.
///
/// With `threads <= 1` (or fewer than two items) this degrades to a plain
/// sequential map on the calling thread — same results, no spawn cost.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads).max(1);
    let chunks: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(|| chunk.iter().map(&f).collect()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("parallel map worker")).collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u32> = (0..257).collect();
        for threads in [1, 2, 3, 8, 300] {
            let doubled = par_map(&items, threads, |&x| x * 2);
            assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>(), "{threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        assert!(par_map(&[] as &[u32], 4, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |&x| x + 1), vec![8]);
    }
}
