//! The evaluation harness: run a configuration over the 30-query workload
//! and compute every §3.2 metric, plus the per-user reliability analysis
//! (Fig. 10) and the retrieved-expert deltas (Fig. 11).

use crate::attribution::{Attribution, AttributionCache};
use crate::config::FinderConfig;
use crate::corpus::AnalyzedCorpus;
use crate::pipeline::AnalysisPipeline;
use crate::ranker::{rank_components, rank_query, RankedExpert};
use rightcrowd_metrics::{mean_eval, Confusion, MeanEval, QueryEval};
use rightcrowd_synth::SyntheticDataset;
use rightcrowd_types::PersonId;
use std::sync::{Arc, Mutex};

/// The complete outcome of one configuration run.
#[derive(Debug, Clone)]
pub struct ConfigOutcome {
    /// Across-query means (one table row of the paper).
    pub mean: MeanEval,
    /// Per-query evaluations, workload order.
    pub per_query: Vec<QueryEval>,
    /// Per-query rankings, workload order.
    pub rankings: Vec<Vec<RankedExpert>>,
}

/// Per-candidate reliability (one point of the paper's Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserReliability {
    /// The candidate.
    pub person: PersonId,
    /// F1 of "retrieved for query" vs. "is expert of the query's domain"
    /// over the whole workload.
    pub f1: f64,
    /// Precision component.
    pub precision: f64,
    /// Recall component.
    pub recall: f64,
    /// Number of documents attributed to the candidate (their available
    /// social information).
    pub resources: usize,
}

/// Shared evaluation context: one dataset, one analysed corpus, and a
/// cache of attribution tables keyed by traversal shape so configuration
/// sweeps never recompute the evidence walk.
///
/// Queries of a workload are evaluated in parallel on scoped threads with
/// an order-preserving merge, so every outcome is identical to a
/// sequential run.
pub struct EvalContext<'a> {
    ds: &'a SyntheticDataset,
    corpus: &'a AnalyzedCorpus,
    attributions: Mutex<AttributionCache>,
}

impl<'a> EvalContext<'a> {
    /// Binds the context.
    pub fn new(ds: &'a SyntheticDataset, corpus: &'a AnalyzedCorpus) -> Self {
        EvalContext { ds, corpus, attributions: Mutex::new(AttributionCache::new()) }
    }

    /// The dataset under evaluation.
    pub fn dataset(&self) -> &SyntheticDataset {
        self.ds
    }

    /// The analysed corpus.
    pub fn corpus(&self) -> &AnalyzedCorpus {
        self.corpus
    }

    /// The attribution table for `config`'s traversal shape, from the
    /// context's cache (computed at most once per shape for the lifetime
    /// of the context).
    pub fn attribution(&self, config: &FinderConfig) -> Arc<Attribution> {
        self.attributions
            .lock()
            .expect("attribution cache poisoned")
            .get_or_compute(self.ds, self.corpus, config)
    }

    /// Hit/miss/resident statistics of this context's attribution cache
    /// so far. Unlike the process-global [`rightcrowd_obs`] counters,
    /// these stats are scoped to one context and therefore stable under
    /// parallel tests.
    pub fn attribution_cache_stats(&self) -> crate::attribution::CacheStats {
        self.attributions.lock().expect("attribution cache poisoned").stats()
    }

    /// Full score decomposition of an ad-hoc expertise need under
    /// `config` (see [`crate::explain::rank_explained`]); uses the
    /// context's attribution cache.
    pub fn explain_text(
        &self,
        config: &FinderConfig,
        text: &str,
    ) -> crate::explain::ExplainedRanking {
        let attribution = self.attribution(config);
        let pipeline = AnalysisPipeline::new(self.ds.kb());
        let query = pipeline.analyze_query(text);
        crate::explain::rank_explained(
            self.corpus,
            &attribution,
            config,
            &query,
            self.ds.candidates().len(),
        )
    }

    /// Runs the whole workload under `config`.
    pub fn run(&self, config: &FinderConfig) -> ConfigOutcome {
        let attribution = self.attribution(config);
        self.run_with_attribution(config, &attribution)
    }

    /// Evaluates one query's ranking against the ground truth.
    fn evaluate_ranking(
        &self,
        need: &rightcrowd_synth::ExpertiseNeed,
        ranking: Vec<RankedExpert>,
    ) -> (QueryEval, Vec<RankedExpert>) {
        let gt = self.ds.ground_truth();
        let rels: Vec<bool> = ranking
            .iter()
            .map(|r| gt.is_expert(r.person, need.domain))
            .collect();
        (QueryEval::evaluate(&rels, gt.experts(need.domain).len()), ranking)
    }

    /// Starts a flight measurement: clears the thread's traversal delta
    /// and reads the clock. Returns `None` (and touches nothing) when the
    /// flight recorder is disabled — under `obs-off` the whole recording
    /// path is dead-code-eliminated.
    fn flight_start() -> Option<std::time::Instant> {
        rightcrowd_obs::flight::flight_enabled().then(|| {
            let _ = rightcrowd_index::take_traversal_stats();
            std::time::Instant::now()
        })
    }

    /// Finishes a flight measurement: captures the per-query traversal
    /// delta and offers a [`rightcrowd_obs::QueryRecord`] to the
    /// recorder.
    fn flight_finish(
        need: &rightcrowd_synth::ExpertiseNeed,
        label: String,
        config: &FinderConfig,
        started: std::time::Instant,
        ranking: &[RankedExpert],
    ) {
        let stats = rightcrowd_index::take_traversal_stats();
        rightcrowd_obs::flight::record(rightcrowd_obs::QueryRecord {
            query_id: need.id.index() as u64,
            label,
            domain: need.domain.label().to_string(),
            alpha: config.alpha,
            max_distance: config.max_distance.level() as u8,
            window: config.window.label(),
            latency_ns: started.elapsed().as_nanos() as u64,
            postings_traversed: stats.traversed,
            maxscore_admitted: stats.admitted,
            maxscore_pruned: stats.pruned,
            top_candidates: ranking.iter().take(5).map(|r| (r.person.0, r.score)).collect(),
            // Attributed post-hoc by the sampling profiler, when one ran.
            cpu_est_us: 0,
        });
    }

    /// Folds per-query `(eval, ranking)` pairs (workload order) into an
    /// outcome.
    fn collect_outcome(results: Vec<(QueryEval, Vec<RankedExpert>)>) -> ConfigOutcome {
        let (per_query, rankings): (Vec<_>, Vec<_>) = results.into_iter().unzip();
        ConfigOutcome { mean: mean_eval(&per_query), per_query, rankings }
    }

    /// Runs the workload reusing a precomputed attribution (for sweeps
    /// that vary only α or the window).
    pub fn run_with_attribution(
        &self,
        config: &FinderConfig,
        attribution: &Attribution,
    ) -> ConfigOutcome {
        let _span = rightcrowd_obs::span!("eval.run_workload");
        let pipeline = AnalysisPipeline::new(self.ds.kb());
        let n = self.ds.candidates().len();
        let results = crate::par::par_map(
            self.ds.queries(),
            crate::par::default_threads(),
            |need| {
                // Profiler samples taken while this closure runs
                // attribute to the query id (nothing runs otherwise).
                let _cpu = rightcrowd_obs::prof::query_scope(need.id.index() as u64);
                let started = Self::flight_start();
                let query = pipeline.analyze_query(&need.text);
                let ranking = rank_query(self.corpus, attribution, config, &query, n);
                if let Some(started) = started {
                    Self::flight_finish(need, need.text.clone(), config, started, &ranking);
                }
                self.evaluate_ranking(need, ranking)
            },
        );
        Self::collect_outcome(results)
    }

    /// Runs the workload once per α with a **single posting traversal per
    /// query**: each query is analysed and factored into α-independent
    /// score components once, then recombined and ranked for every sweep
    /// point. All sweep points share `base`'s attribution (α does not
    /// affect the traversal shape).
    ///
    /// Outcomes are in `alphas` order and agree with
    /// `run_with_attribution` at each α up to float reassociation in the
    /// recombined document scores. `base.retrieval` must be the paper's
    /// VSM — components are Eq. 1 factorings.
    pub fn run_alpha_sweep(&self, base: &FinderConfig, alphas: &[f64]) -> Vec<ConfigOutcome> {
        let _span = rightcrowd_obs::span!("eval.alpha_sweep");
        debug_assert!(
            matches!(base.retrieval, crate::config::Retrieval::PaperVsm),
            "α sweeps factor the paper's VSM; BM25 has no component form"
        );
        let attribution = self.attribution(base);
        let pipeline = AnalysisPipeline::new(self.ds.kb());
        let n = self.ds.candidates().len();
        let configs: Vec<FinderConfig> =
            alphas.iter().map(|&a| base.clone().with_alpha(a)).collect();

        // Rows: one per query, each holding every sweep point's result.
        let rows: Vec<Vec<(QueryEval, Vec<RankedExpert>)>> = crate::par::par_map(
            self.ds.queries(),
            crate::par::default_threads(),
            |need| {
                let _cpu = rightcrowd_obs::prof::query_scope(need.id.index() as u64);
                let started = Self::flight_start();
                let query = pipeline.analyze_query(&need.text);
                let components = crate::ranker::attributed_components(
                    &attribution,
                    &self.corpus.index().score_components(&query),
                );
                let row: Vec<_> = configs
                    .iter()
                    .map(|config| {
                        let ranking = rank_components(&attribution, config, &components, n);
                        self.evaluate_ranking(need, ranking)
                    })
                    .collect();
                if let Some(started) = started {
                    // One flight entry covers the whole sweep: a single
                    // traversal served every α, so the counters are the
                    // query's and the latency is the sweep's.
                    let label = format!("{} (α-sweep ×{})", need.text, configs.len());
                    let first = row.first().map_or(&[] as &[RankedExpert], |(_, r)| r);
                    Self::flight_finish(need, label, base, started, first);
                }
                row
            },
        );

        // Transpose query-major rows into per-α outcomes.
        let mut per_alpha: Vec<Vec<(QueryEval, Vec<RankedExpert>)>> =
            configs.iter().map(|_| Vec::with_capacity(rows.len())).collect();
        for row in rows {
            for (ai, result) in row.into_iter().enumerate() {
                per_alpha[ai].push(result);
            }
        }
        per_alpha.into_iter().map(Self::collect_outcome).collect()
    }

    /// Runs the workload under a per-domain policy: each query is ranked
    /// with its domain's configuration (the paper's suggested
    /// domain-specific solutions, see [`crate::domain_aware`]).
    ///
    /// Attributions depend only on the traversal shape, so configs
    /// differing in α/window/weights share one via the context cache.
    pub fn run_policy(&self, policy: &crate::domain_aware::DomainPolicy) -> ConfigOutcome {
        let pipeline = AnalysisPipeline::new(self.ds.kb());
        let n = self.ds.candidates().len();
        // Resolve each query's config and attribution up front (cache
        // lookups are serialised; the table computes once per shape)…
        let jobs: Vec<_> = self
            .ds
            .queries()
            .iter()
            .map(|need| {
                let config = policy.config_for(need.domain);
                (need, config, self.attribution(config))
            })
            .collect();
        // …then evaluate the workload in parallel as usual.
        let results = crate::par::par_map(
            &jobs,
            crate::par::default_threads(),
            |(need, config, attribution)| {
                let query = pipeline.analyze_query(&need.text);
                let ranking = rank_query(self.corpus, attribution, config, &query, n);
                self.evaluate_ranking(need, ranking)
            },
        );
        Self::collect_outcome(results)
    }

    /// Runs only the queries of one domain (Table 4 rows).
    pub fn run_domain(
        &self,
        config: &FinderConfig,
        domain: rightcrowd_types::Domain,
    ) -> ConfigOutcome {
        let outcome = self.run(config);
        let mut per_query = Vec::new();
        let mut rankings = Vec::new();
        for (i, need) in self.ds.queries().iter().enumerate() {
            if need.domain == domain {
                per_query.push(outcome.per_query[i].clone());
                rankings.push(outcome.rankings[i].clone());
            }
        }
        ConfigOutcome { mean: mean_eval(&per_query), per_query, rankings }
    }

    /// Per-candidate reliability under `config` (Fig. 10).
    pub fn user_reliability(&self, config: &FinderConfig) -> Vec<UserReliability> {
        let attribution = self.attribution(config);
        let outcome = self.run_with_attribution(config, &attribution);
        let gt = self.ds.ground_truth();
        self.ds
            .candidates()
            .iter()
            .map(|person| {
                let mut confusion = Confusion::default();
                for (need, ranking) in self.ds.queries().iter().zip(&outcome.rankings) {
                    let predicted = ranking.iter().any(|r| r.person == person.id);
                    let actual = gt.is_expert(person.id, need.domain);
                    confusion.record(predicted, actual);
                }
                UserReliability {
                    person: person.id,
                    f1: confusion.f1(),
                    precision: confusion.precision(),
                    recall: confusion.recall(),
                    resources: attribution.doc_count(person.id),
                }
            })
            .collect()
    }

    /// Per-query Δ = retrieved candidates − expected experts (Fig. 11).
    pub fn retrieved_deltas(&self, config: &FinderConfig) -> Vec<i64> {
        let outcome = self.run(config);
        self.ds
            .queries()
            .iter()
            .zip(&outcome.rankings)
            .map(|(need, ranking)| {
                ranking.len() as i64 - self.ds.ground_truth().experts(need.domain).len() as i64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::random_baseline;
    use rightcrowd_types::{Distance, Domain};

    fn setup() -> &'static (SyntheticDataset, AnalyzedCorpus) {
        crate::testkit::tiny()
    }

    #[test]
    fn full_run_produces_thirty_query_evals() {
        let (ds, corpus) = setup();
        let ctx = EvalContext::new(ds, corpus);
        let outcome = ctx.run(&FinderConfig::default());
        assert_eq!(outcome.per_query.len(), 30);
        assert_eq!(outcome.rankings.len(), 30);
        assert!(outcome.mean.map > 0.0, "MAP {}", outcome.mean.map);
        assert!(outcome.mean.mrr > 0.0);
    }

    #[test]
    fn distance2_beats_distance0_and_random() {
        let (ds, corpus) = setup();
        let ctx = EvalContext::new(ds, corpus);
        let d0 = ctx.run(&FinderConfig::default().with_distance(Distance::D0));
        let d2 = ctx.run(&FinderConfig::default());
        let random = random_baseline(ds, 99);
        // The paper's headline ordering: profiles alone are the worst,
        // full social context the best.
        assert!(
            d2.mean.map > d0.mean.map,
            "d2 {} must beat d0 {}",
            d2.mean.map,
            d0.mean.map
        );
        assert!(
            d2.mean.map > random.map,
            "d2 {} must beat random {}",
            d2.mean.map,
            random.map
        );
    }

    #[test]
    fn alpha_sweep_matches_independent_runs() {
        let (ds, corpus) = setup();
        let ctx = EvalContext::new(ds, corpus);
        let base = FinderConfig::default();
        let alphas = [0.0, 0.4, 1.0];
        let swept = ctx.run_alpha_sweep(&base, &alphas);
        assert_eq!(swept.len(), alphas.len());
        for (&alpha, outcome) in alphas.iter().zip(&swept) {
            let config = base.clone().with_alpha(alpha);
            let attribution = ctx.attribution(&config);
            let direct = ctx.run_with_attribution(&config, &attribution);
            assert_eq!(outcome.per_query.len(), direct.per_query.len());
            // Factored recombination reassociates float sums, so compare
            // with a tolerance rather than bit equality.
            assert!(
                (outcome.mean.map - direct.mean.map).abs() < 1e-9,
                "α {alpha}: swept MAP {} vs direct {}",
                outcome.mean.map,
                direct.mean.map
            );
            assert!((outcome.mean.mrr - direct.mean.mrr).abs() < 1e-9, "α {alpha}");
            for (s, d) in outcome.rankings.iter().zip(&direct.rankings) {
                assert_eq!(s.len(), d.len(), "α {alpha}");
            }
        }
        // α and window sweeps share one attribution shape in the cache.
        assert_eq!(ctx.attributions.lock().unwrap().len(), 1);
    }

    #[test]
    fn same_traversal_shape_hits_the_attribution_cache() {
        let (ds, corpus) = setup();
        let ctx = EvalContext::new(ds, corpus);
        let base = FinderConfig::default();
        assert_eq!(ctx.attribution_cache_stats(), crate::attribution::CacheStats::default());
        // Two runs whose configs share a traversal shape: one compute…
        ctx.run(&base);
        ctx.run(&base.clone().with_alpha(0.2));
        let stats = ctx.attribution_cache_stats();
        assert_eq!(stats.misses, 1, "same shape must compute exactly once");
        assert!(stats.hits >= 1, "second run must hit the cache, got {} hits", stats.hits);
        assert_eq!(stats.resident, 1, "one shape resident");
        // …and a different shape misses again (and stays resident).
        ctx.run(&base.with_distance(Distance::D0));
        let stats = ctx.attribution_cache_stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.resident, 2);
    }

    #[test]
    fn domain_run_selects_matching_queries() {
        let (ds, corpus) = setup();
        let ctx = EvalContext::new(ds, corpus);
        let sport = ctx.run_domain(&FinderConfig::default(), Domain::Sport);
        let expected = ds.queries().iter().filter(|q| q.domain == Domain::Sport).count();
        assert_eq!(sport.per_query.len(), expected);
    }

    #[test]
    fn reliability_covers_all_candidates() {
        let (ds, corpus) = setup();
        let ctx = EvalContext::new(ds, corpus);
        let rel = ctx.user_reliability(&FinderConfig::default());
        assert_eq!(rel.len(), ds.candidates().len());
        for r in &rel {
            assert!((0.0..=1.0).contains(&r.f1));
            assert!(r.resources > 0);
        }
        // Reliability must vary across users (some silent users exist).
        let max = rel.iter().map(|r| r.f1).fold(0.0, f64::max);
        let min = rel.iter().map(|r| r.f1).fold(1.0, f64::min);
        assert!(max > min, "F1 must spread: min {min} max {max}");
    }

    #[test]
    fn deltas_have_workload_length() {
        let (ds, corpus) = setup();
        let ctx = EvalContext::new(ds, corpus);
        let deltas = ctx.retrieved_deltas(&FinderConfig::default());
        assert_eq!(deltas.len(), 30);
    }
}
