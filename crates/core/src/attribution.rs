//! Attribution: which indexed documents count as evidence for which
//! candidate, and at what distance.
//!
//! Eq. 3 weights each relevant resource by `wr(ri, ex)` — a function of the
//! resource's graph distance *from that specific expert*. A document can be
//! evidence for several candidates at different distances (e.g. a group
//! post is distance-2 evidence for every member of the group).

use crate::config::FinderConfig;
use crate::corpus::AnalyzedCorpus;
use rightcrowd_graph::CollectOptions;
use rightcrowd_index::DocIdx;
use rightcrowd_synth::SyntheticDataset;
use rightcrowd_types::{Distance, PersonId, PlatformMask};
use std::collections::HashMap;
use std::sync::Arc;

/// The attribution table of one finder configuration.
#[derive(Debug, Default)]
pub struct Attribution {
    /// doc → [(person, distance)] (persons sorted, at most one entry per
    /// person — the minimum distance).
    by_doc: HashMap<DocIdx, Vec<(PersonId, Distance)>>,
    /// Per-person count of attributed documents (the user's "available
    /// social information" of Fig. 10).
    doc_counts: Vec<usize>,
}

impl Attribution {
    /// Computes the attribution of `ds`'s candidates under `config`.
    pub fn compute(ds: &SyntheticDataset, corpus: &AnalyzedCorpus, config: &FinderConfig) -> Self {
        let _span = rightcrowd_obs::span!("attribution.compute");
        let _timer = rightcrowd_obs::time(rightcrowd_obs::HistId::AttributionComputeLatency);
        let opts = CollectOptions {
            max_distance: config.max_distance,
            include_friends: config.include_friends,
            platforms: config.platforms,
        };
        let mut by_doc: HashMap<DocIdx, Vec<(PersonId, Distance)>> = HashMap::new();
        let mut doc_counts = vec![0usize; ds.candidates().len()];
        let mut by_distance = [0u64; 3];
        for person in ds.candidates() {
            for item in ds.graph().collect_evidence(person.id, &opts) {
                // Documents dropped by the language gate are not indexed
                // and therefore cannot be evidence.
                let Some(idx) = corpus.doc_idx(item.doc) else {
                    continue;
                };
                by_distance[item.distance as usize] += 1;
                by_doc.entry(idx).or_default().push((person.id, item.distance));
                doc_counts[person.id.index()] += 1;
            }
        }
        use rightcrowd_obs::CounterId;
        rightcrowd_obs::add(CounterId::EvidenceDocsD0, by_distance[0]);
        rightcrowd_obs::add(CounterId::EvidenceDocsD1, by_distance[1]);
        rightcrowd_obs::add(CounterId::EvidenceDocsD2, by_distance[2]);
        Attribution { by_doc, doc_counts }
    }

    /// The candidates a document is evidence for (empty when none).
    pub fn owners(&self, doc: DocIdx) -> &[(PersonId, Distance)] {
        self.by_doc.get(&doc).map_or(&[], Vec::as_slice)
    }

    /// Whether the document is evidence for at least one candidate.
    pub fn is_attributed(&self, doc: DocIdx) -> bool {
        self.by_doc.contains_key(&doc)
    }

    /// Number of documents attributed to `person` (their evidence volume).
    pub fn doc_count(&self, person: PersonId) -> usize {
        self.doc_counts[person.index()]
    }

    /// Number of distinct attributed documents.
    pub fn attributed_docs(&self) -> usize {
        self.by_doc.len()
    }
}

/// The part of a [`FinderConfig`] that an [`Attribution`] actually depends
/// on: the graph-traversal shape. Configurations that differ only in
/// α, window, weights, aggregation or retrieval model share one
/// attribution, and sweeps over those knobs should reuse it via
/// [`AttributionCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraversalShape {
    /// Maximum graph distance of the evidence walk.
    pub max_distance: Distance,
    /// Whether friends' direct resources are pulled in at distance 2.
    pub include_friends: bool,
    /// Platforms evidence may come from.
    pub platforms: PlatformMask,
}

impl TraversalShape {
    /// The traversal shape of a configuration.
    pub fn of(config: &FinderConfig) -> Self {
        TraversalShape {
            max_distance: config.max_distance,
            include_friends: config.include_friends,
            platforms: config.platforms,
        }
    }
}

/// Lifetime statistics of one [`AttributionCache`] instance: lookup
/// outcomes plus the resident table size, so snapshots can report how
/// many traversal shapes are actually held in memory — not just how the
/// lookups went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the memoised table.
    pub hits: u64,
    /// Lookups that computed a new evidence walk.
    pub misses: u64,
    /// Distinct traversal shapes currently resident.
    pub resident: usize,
}

/// Memoises [`Attribution::compute`] by [`TraversalShape`].
///
/// Attribution is by far the most expensive per-configuration step of an
/// evaluation sweep (a full evidence walk per candidate), yet most sweep
/// points only vary scoring knobs. The cache hands out [`Arc`]s so callers
/// can hold a result across further lookups (and across threads) without
/// cloning the table.
#[derive(Debug, Default)]
pub struct AttributionCache {
    by_shape: HashMap<TraversalShape, Arc<Attribution>>,
    hits: u64,
    misses: u64,
}

impl AttributionCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The attribution for `config`'s traversal shape, computing and
    /// memoising it on first use.
    pub fn get_or_compute(
        &mut self,
        ds: &SyntheticDataset,
        corpus: &AnalyzedCorpus,
        config: &FinderConfig,
    ) -> Arc<Attribution> {
        use std::collections::hash_map::Entry;
        match self.by_shape.entry(TraversalShape::of(config)) {
            Entry::Occupied(e) => {
                self.hits += 1;
                rightcrowd_obs::incr(rightcrowd_obs::CounterId::AttributionCacheHits);
                e.get().clone()
            }
            Entry::Vacant(e) => {
                self.misses += 1;
                rightcrowd_obs::incr(rightcrowd_obs::CounterId::AttributionCacheMisses);
                let out = e.insert(Arc::new(Attribution::compute(ds, corpus, config))).clone();
                // Resident-size gauge: the snapshot JSON reports how many
                // shapes are held, not just how the lookups went.
                rightcrowd_obs::counter::set(
                    rightcrowd_obs::CounterId::AttributionShapesResident,
                    self.by_shape.len() as u64,
                );
                out
            }
        }
    }

    /// Lifetime [`CacheStats`] of this cache instance. The global
    /// [`rightcrowd_obs`] counters aggregate across every cache in the
    /// process; these stats isolate one cache for tests and sweeps.
    pub fn stats(&self) -> CacheStats {
        CacheStats { hits: self.hits, misses: self.misses, resident: self.by_shape.len() }
    }

    /// Number of distinct traversal shapes computed so far.
    pub fn len(&self) -> usize {
        self.by_shape.len()
    }

    /// Whether nothing has been computed yet.
    pub fn is_empty(&self) -> bool {
        self.by_shape.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rightcrowd_types::{Platform, PlatformMask};

    fn setup() -> &'static (SyntheticDataset, AnalyzedCorpus) {
        crate::testkit::tiny()
    }

    #[test]
    fn every_candidate_has_evidence_at_d2() {
        let (ds, corpus) = setup();
        let attr = Attribution::compute(ds, corpus, &FinderConfig::default());
        for person in ds.candidates() {
            assert!(
                attr.doc_count(person.id) > 0,
                "{} has no attributed documents",
                person.name
            );
        }
        assert!(attr.attributed_docs() > 0);
    }

    #[test]
    fn narrower_distance_means_less_evidence() {
        let (ds, corpus) = setup();
        let d0 = Attribution::compute(
            ds,
            corpus,
            &FinderConfig::default().with_distance(Distance::D0),
        );
        let d2 = Attribution::compute(ds, corpus, &FinderConfig::default());
        let p0 = ds.candidates()[0].id;
        assert!(d0.doc_count(p0) <= d2.doc_count(p0));
        // At distance 0 each person has at most their (≤3) profiles.
        assert!(d0.doc_count(p0) <= 3);
    }

    #[test]
    fn platform_mask_restricts_attribution() {
        let (ds, corpus) = setup();
        let li_only = Attribution::compute(
            ds,
            corpus,
            &FinderConfig::default().with_platforms(PlatformMask::only(Platform::LinkedIn)),
        );
        let all = Attribution::compute(ds, corpus, &FinderConfig::default());
        assert!(li_only.attributed_docs() < all.attributed_docs());
    }

    #[test]
    fn shared_containers_attribute_to_multiple_candidates() {
        let (ds, corpus) = setup();
        let attr = Attribution::compute(ds, corpus, &FinderConfig::default());
        let multi = attr
            .by_doc
            .values()
            .filter(|owners| owners.len() > 1)
            .count();
        assert!(multi > 0, "some documents must serve several candidates");
    }

    #[test]
    fn cache_shares_attributions_across_scoring_knobs() {
        let (ds, corpus) = setup();
        let mut cache = AttributionCache::new();
        let base = FinderConfig::default();
        let a = cache.get_or_compute(ds, corpus, &base);
        // α and window differences must hit the same entry…
        let b = cache.get_or_compute(ds, corpus, &base.clone().with_alpha(0.1));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        // …while a different traversal shape computes a new one.
        let c = cache.get_or_compute(ds, corpus, &base.with_distance(Distance::D0));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn unattributed_docs_report_empty_owners() {
        let (_ds, corpus) = setup();
        let attr = Attribution::default();
        assert!(attr.owners(rightcrowd_index::DocIdx(0)).is_empty());
        assert!(!attr.is_attributed(rightcrowd_index::DocIdx(0)));
        let _ = corpus;
    }
}
