//! Attribution: which indexed documents count as evidence for which
//! candidate, and at what distance.
//!
//! Eq. 3 weights each relevant resource by `wr(ri, ex)` — a function of the
//! resource's graph distance *from that specific expert*. A document can be
//! evidence for several candidates at different distances (e.g. a group
//! post is distance-2 evidence for every member of the group).

use crate::config::FinderConfig;
use crate::corpus::AnalyzedCorpus;
use rightcrowd_graph::CollectOptions;
use rightcrowd_index::DocIdx;
use rightcrowd_synth::SyntheticDataset;
use rightcrowd_types::{Distance, PersonId};
use std::collections::HashMap;

/// The attribution table of one finder configuration.
#[derive(Debug, Default)]
pub struct Attribution {
    /// doc → [(person, distance)] (persons sorted, at most one entry per
    /// person — the minimum distance).
    by_doc: HashMap<DocIdx, Vec<(PersonId, Distance)>>,
    /// Per-person count of attributed documents (the user's "available
    /// social information" of Fig. 10).
    doc_counts: Vec<usize>,
}

impl Attribution {
    /// Computes the attribution of `ds`'s candidates under `config`.
    pub fn compute(ds: &SyntheticDataset, corpus: &AnalyzedCorpus, config: &FinderConfig) -> Self {
        let opts = CollectOptions {
            max_distance: config.max_distance,
            include_friends: config.include_friends,
            platforms: config.platforms,
        };
        let mut by_doc: HashMap<DocIdx, Vec<(PersonId, Distance)>> = HashMap::new();
        let mut doc_counts = vec![0usize; ds.candidates().len()];
        for person in ds.candidates() {
            for item in ds.graph().collect_evidence(person.id, &opts) {
                // Documents dropped by the language gate are not indexed
                // and therefore cannot be evidence.
                let Some(idx) = corpus.doc_idx(item.doc) else {
                    continue;
                };
                by_doc.entry(idx).or_default().push((person.id, item.distance));
                doc_counts[person.id.index()] += 1;
            }
        }
        Attribution { by_doc, doc_counts }
    }

    /// The candidates a document is evidence for (empty when none).
    pub fn owners(&self, doc: DocIdx) -> &[(PersonId, Distance)] {
        self.by_doc.get(&doc).map_or(&[], Vec::as_slice)
    }

    /// Whether the document is evidence for at least one candidate.
    pub fn is_attributed(&self, doc: DocIdx) -> bool {
        self.by_doc.contains_key(&doc)
    }

    /// Number of documents attributed to `person` (their evidence volume).
    pub fn doc_count(&self, person: PersonId) -> usize {
        self.doc_counts[person.index()]
    }

    /// Number of distinct attributed documents.
    pub fn attributed_docs(&self) -> usize {
        self.by_doc.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rightcrowd_types::{Platform, PlatformMask};

    fn setup() -> &'static (SyntheticDataset, AnalyzedCorpus) {
        crate::testkit::tiny()
    }

    #[test]
    fn every_candidate_has_evidence_at_d2() {
        let (ds, corpus) = setup();
        let attr = Attribution::compute(ds, corpus, &FinderConfig::default());
        for person in ds.candidates() {
            assert!(
                attr.doc_count(person.id) > 0,
                "{} has no attributed documents",
                person.name
            );
        }
        assert!(attr.attributed_docs() > 0);
    }

    #[test]
    fn narrower_distance_means_less_evidence() {
        let (ds, corpus) = setup();
        let d0 = Attribution::compute(
            ds,
            corpus,
            &FinderConfig::default().with_distance(Distance::D0),
        );
        let d2 = Attribution::compute(ds, corpus, &FinderConfig::default());
        let p0 = ds.candidates()[0].id;
        assert!(d0.doc_count(p0) <= d2.doc_count(p0));
        // At distance 0 each person has at most their (≤3) profiles.
        assert!(d0.doc_count(p0) <= 3);
    }

    #[test]
    fn platform_mask_restricts_attribution() {
        let (ds, corpus) = setup();
        let li_only = Attribution::compute(
            ds,
            corpus,
            &FinderConfig::default().with_platforms(PlatformMask::only(Platform::LinkedIn)),
        );
        let all = Attribution::compute(ds, corpus, &FinderConfig::default());
        assert!(li_only.attributed_docs() < all.attributed_docs());
    }

    #[test]
    fn shared_containers_attribute_to_multiple_candidates() {
        let (ds, corpus) = setup();
        let attr = Attribution::compute(ds, corpus, &FinderConfig::default());
        let multi = attr
            .by_doc
            .values()
            .filter(|owners| owners.len() > 1)
            .count();
        assert!(multi > 0, "some documents must serve several candidates");
    }

    #[test]
    fn unattributed_docs_report_empty_owners() {
        let (_ds, corpus) = setup();
        let attr = Attribution::default();
        assert!(attr.owners(rightcrowd_index::DocIdx(0)).is_empty());
        assert!(!attr.is_attributed(rightcrowd_index::DocIdx(0)));
        let _ = corpus;
    }
}
