//! Finder configuration — the paper's tunable parameters.

use rightcrowd_types::{Distance, PlatformMask};

/// How many of the top-scoring matching resources feed the expert ranking
/// (the paper's *window size*, §2.4.1 / §3.3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowSize {
    /// A fixed number of resources (the paper settles on 100).
    Count(usize),
    /// A fraction of the matching resources (the x-axis of Fig. 6).
    Fraction(f64),
    /// No window: every matching resource contributes.
    All,
}

impl WindowSize {
    /// Compact render of the window config for logs and flight records
    /// (`"top-100"`, `"frac-0.30"`, `"all"`).
    pub fn label(self) -> String {
        match self {
            WindowSize::Count(n) => format!("top-{n}"),
            WindowSize::Fraction(f) => format!("frac-{f:.2}"),
            WindowSize::All => "all".to_string(),
        }
    }

    /// Resolves the window against a match-set of `matching` resources.
    pub fn resolve(self, matching: usize) -> usize {
        match self {
            WindowSize::Count(n) => n.min(matching),
            WindowSize::Fraction(f) => {
                ((matching as f64 * f.clamp(0.0, 1.0)).ceil() as usize).min(matching)
            }
            WindowSize::All => matching,
        }
    }
}

/// Full configuration of one expert-finding run.
#[derive(Debug, Clone, PartialEq)]
pub struct FinderConfig {
    /// Eq. 1 mixing weight between term and entity evidence. The paper's
    /// sensitivity analysis (§3.3.2) settles on 0.6.
    pub alpha: f64,
    /// The resource window (paper default: 100).
    pub window: WindowSize,
    /// Maximum graph distance explored (paper default: 2).
    pub max_distance: Distance,
    /// Include friends' (bidirectional ties') resources — off by default,
    /// per the paper's finding that they do not help (§3.3.3).
    pub include_friends: bool,
    /// Platforms contributing evidence (Table 3 compares All/FB/TW/LI).
    pub platforms: PlatformMask,
    /// Per-distance resource weights `wr` (paper: fixed in `[0.5, 1]`,
    /// linearly decreasing with distance).
    pub distance_weights: [f64; Distance::COUNT],
    /// Divide each candidate's Eq. 3 score by their number of contributing
    /// resources. The paper deliberately does *not* normalise — it assumes
    /// evidence volume correlates with expertise (§2.4.1); this flag exists
    /// for the ablation that justifies the choice.
    pub normalize_by_evidence: bool,
    /// How per-document scores fuse into candidate scores (paper: Eq. 3
    /// weighted sum; alternatives implement the voting models of the
    /// expert-search literature the paper cites).
    pub aggregation: crate::aggregation::Aggregation,
    /// The document retrieval model behind Eq. 1 (paper: tf·irf² VSM;
    /// BM25 provided for the retrieval-model ablation).
    pub retrieval: Retrieval,
}

/// Document-scoring model used by the matcher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Retrieval {
    /// The paper's Eq. 1 vector-space model (`tf·irf²` / `ef·eirf²·we`).
    PaperVsm,
    /// Okapi BM25 with the Eq. 2 entity weight preserved.
    Bm25(rightcrowd_index::Bm25Params),
}

impl Default for FinderConfig {
    fn default() -> Self {
        FinderConfig {
            alpha: 0.6,
            window: WindowSize::Count(100),
            max_distance: Distance::D2,
            include_friends: false,
            platforms: PlatformMask::ALL,
            distance_weights: [
                Distance::D0.paper_weight(),
                Distance::D1.paper_weight(),
                Distance::D2.paper_weight(),
            ],
            normalize_by_evidence: false,
            aggregation: crate::aggregation::Aggregation::WeightedSum,
            retrieval: Retrieval::PaperVsm,
        }
    }
}

impl FinderConfig {
    /// The `wr` weight for a resource at `distance`.
    pub fn weight(&self, distance: Distance) -> f64 {
        self.distance_weights[distance.level()]
    }

    /// Builder-style: set the distance cap.
    pub fn with_distance(mut self, d: Distance) -> Self {
        self.max_distance = d;
        self
    }

    /// Builder-style: set the platform mask.
    pub fn with_platforms(mut self, platforms: PlatformMask) -> Self {
        self.platforms = platforms;
        self
    }

    /// Builder-style: set α.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Builder-style: set the window.
    pub fn with_window(mut self, window: WindowSize) -> Self {
        self.window = window;
        self
    }

    /// Builder-style: include friends' resources.
    pub fn with_friends(mut self, include: bool) -> Self {
        self.include_friends = include;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_operating_point() {
        let c = FinderConfig::default();
        assert!((c.alpha - 0.6).abs() < 1e-12);
        assert_eq!(c.window.resolve(10_000), 100);
        assert_eq!(c.max_distance, Distance::D2);
        assert!(!c.include_friends);
        assert_eq!(c.platforms, PlatformMask::ALL);
        assert_eq!(c.distance_weights, [1.0, 0.75, 0.5]);
    }

    #[test]
    fn window_resolution() {
        assert_eq!(WindowSize::Count(100).resolve(40), 40);
        assert_eq!(WindowSize::Count(100).resolve(4000), 100);
        assert_eq!(WindowSize::Fraction(0.05).resolve(1000), 50);
        assert_eq!(WindowSize::Fraction(0.001).resolve(100), 1); // ceil
        assert_eq!(WindowSize::Fraction(2.0).resolve(10), 10); // clamped
        assert_eq!(WindowSize::All.resolve(77), 77);
        assert_eq!(WindowSize::Fraction(0.0).resolve(10), 0);
    }

    #[test]
    fn builder_chain() {
        let c = FinderConfig::default()
            .with_alpha(0.3)
            .with_distance(Distance::D1)
            .with_friends(true)
            .with_window(WindowSize::All);
        assert!((c.alpha - 0.3).abs() < 1e-12);
        assert_eq!(c.max_distance, Distance::D1);
        assert!(c.include_friends);
        assert_eq!(c.window, WindowSize::All);
    }

    #[test]
    fn distance_weight_lookup() {
        let c = FinderConfig::default();
        assert_eq!(c.weight(Distance::D0), 1.0);
        assert_eq!(c.weight(Distance::D2), 0.5);
    }
}
