//! Alternative expertise-aggregation models.
//!
//! The paper aggregates with Eq. 3 — a weighted *sum* of resource scores.
//! The expert-search literature it builds on (Macdonald & Ounis, CIKM'09,
//! the paper’s reference 18; Balog’s document-centric models, its reference 3) frames
//! the same step as *data fusion over a document ranking*: each retrieved
//! document "votes" for the candidates it is associated with. This module
//! implements the classic voting techniques so the paper's choice can be
//! compared against them on identical evidence (`exp_rankers`).

use std::fmt;

/// How per-document scores are fused into one candidate score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// The paper's Eq. 3: `Σ score(q, ri) · wr(ri, ex)`.
    WeightedSum,
    /// Plain vote counting: the number of window documents attributed to
    /// the candidate (Macdonald & Ounis' *Votes*).
    Votes,
    /// CombMNZ: vote count × weighted score sum — rewards candidates
    /// supported by *many* documents.
    CombMnz,
    /// Reciprocal-rank fusion: `Σ 1/rank(ri)` over the candidate's
    /// documents in the relevance ranking (Macdonald & Ounis' *RR*).
    ReciprocalRank,
    /// CombMAX: the candidate's best single document score (weighted).
    CombMax,
}

impl Aggregation {
    /// All implemented techniques.
    pub const ALL: [Aggregation; 5] = [
        Aggregation::WeightedSum,
        Aggregation::Votes,
        Aggregation::CombMnz,
        Aggregation::ReciprocalRank,
        Aggregation::CombMax,
    ];
}

impl fmt::Display for Aggregation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Aggregation::WeightedSum => "weighted-sum (paper Eq. 3)",
            Aggregation::Votes => "votes",
            Aggregation::CombMnz => "CombMNZ",
            Aggregation::ReciprocalRank => "reciprocal-rank",
            Aggregation::CombMax => "CombMAX",
        };
        f.write_str(s)
    }
}

/// Per-candidate fusion state, updated document by document.
#[derive(Debug, Clone, Copy, Default)]
pub struct FusionAcc {
    /// Weighted score sum.
    pub sum: f64,
    /// Number of contributing documents.
    pub votes: u32,
    /// Reciprocal-rank sum.
    pub rr: f64,
    /// Best weighted score.
    pub max: f64,
}

impl FusionAcc {
    /// Records one contributing document: its weighted score and its
    /// 1-based rank in the relevance ranking.
    pub fn record(&mut self, weighted_score: f64, rank: usize) {
        self.sum += weighted_score;
        self.votes += 1;
        self.rr += 1.0 / rank as f64;
        if weighted_score > self.max {
            self.max = weighted_score;
        }
    }

    /// The fused score under `method`.
    pub fn fuse(&self, method: Aggregation) -> f64 {
        match method {
            Aggregation::WeightedSum => self.sum,
            Aggregation::Votes => self.votes as f64,
            Aggregation::CombMnz => self.votes as f64 * self.sum,
            Aggregation::ReciprocalRank => self.rr,
            Aggregation::CombMax => self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_all_statistics() {
        let mut acc = FusionAcc::default();
        acc.record(2.0, 1);
        acc.record(1.0, 4);
        assert_eq!(acc.sum, 3.0);
        assert_eq!(acc.votes, 2);
        assert!((acc.rr - 1.25).abs() < 1e-12);
        assert_eq!(acc.max, 2.0);
    }

    #[test]
    fn fuse_per_method() {
        let mut acc = FusionAcc::default();
        acc.record(2.0, 1);
        acc.record(1.0, 2);
        assert_eq!(acc.fuse(Aggregation::WeightedSum), 3.0);
        assert_eq!(acc.fuse(Aggregation::Votes), 2.0);
        assert_eq!(acc.fuse(Aggregation::CombMnz), 6.0);
        assert!((acc.fuse(Aggregation::ReciprocalRank) - 1.5).abs() < 1e-12);
        assert_eq!(acc.fuse(Aggregation::CombMax), 2.0);
    }

    #[test]
    fn empty_acc_scores_zero_everywhere() {
        let acc = FusionAcc::default();
        for m in Aggregation::ALL {
            assert_eq!(acc.fuse(m), 0.0, "{m}");
        }
    }

    #[test]
    fn single_doc_makes_methods_agree_up_to_monotone() {
        // With one document of weighted score s at rank 1, all methods
        // rank candidates in the same order as s (or are constant).
        let mut a = FusionAcc::default();
        a.record(3.0, 1);
        let mut b = FusionAcc::default();
        b.record(1.0, 1);
        for m in [Aggregation::WeightedSum, Aggregation::CombMnz, Aggregation::CombMax] {
            assert!(a.fuse(m) > b.fuse(m), "{m}");
        }
        assert_eq!(a.fuse(Aggregation::Votes), b.fuse(Aggregation::Votes));
    }
}
