//! Domain-aware configuration — the paper's suggested future work.
//!
//! §3.7 observes that Location queries suffer from a specific confound:
//! profiles leak location information ("lives in Milan") for *everyone*,
//! so profile evidence for Location needs is widespread but uninformative.
//! The paper concludes: "This result calls for domain-specific solutions
//! for location related expertise needs."
//!
//! [`DomainPolicy`] implements that suggestion as a per-domain override of
//! the finder configuration. The default policy:
//!
//! - **Location** — drop distance-0 (profile) evidence entirely and lean
//!   on entity matching (lower α): a restaurant recommendation should come
//!   from someone who *writes about* Milan, not someone who lives there.
//! - every other domain — the paper's baseline configuration.

use crate::config::FinderConfig;
use rightcrowd_types::{Distance, Domain};

/// Per-domain configuration overrides.
#[derive(Debug, Clone)]
pub struct DomainPolicy {
    configs: [FinderConfig; Domain::COUNT],
}

impl DomainPolicy {
    /// The uniform policy: the same configuration for every domain.
    pub fn uniform(config: &FinderConfig) -> Self {
        DomainPolicy {
            configs: std::array::from_fn(|_| config.clone()),
        }
    }

    /// The paper-motivated policy: baseline everywhere, with the Location
    /// fix (no profile evidence, entity-leaning α).
    pub fn location_aware(base: &FinderConfig) -> Self {
        let mut policy = Self::uniform(base);
        let location = base
            .clone()
            .with_alpha((base.alpha - 0.2).max(0.0));
        // Suppress distance-0 evidence by zeroing its weight: the
        // traversal still runs, but profile matches contribute nothing.
        let mut weights = location.distance_weights;
        weights[Distance::D0.level()] = 0.0;
        policy.configs[Domain::Location.index()] = FinderConfig {
            distance_weights: weights,
            ..location
        };
        policy
    }

    /// Overrides the configuration of one domain.
    pub fn with_domain(mut self, domain: Domain, config: FinderConfig) -> Self {
        self.configs[domain.index()] = config;
        self
    }

    /// The configuration used for `domain`.
    pub fn config_for(&self, domain: Domain) -> &FinderConfig {
        &self.configs[domain.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_policy_is_uniform() {
        let base = FinderConfig::default();
        let policy = DomainPolicy::uniform(&base);
        for d in Domain::ALL {
            assert_eq!(policy.config_for(d), &base);
        }
    }

    #[test]
    fn location_aware_only_touches_location() {
        let base = FinderConfig::default();
        let policy = DomainPolicy::location_aware(&base);
        for d in Domain::ALL {
            if d == Domain::Location {
                let cfg = policy.config_for(d);
                assert_eq!(cfg.distance_weights[0], 0.0, "profile evidence muted");
                assert!(cfg.alpha < base.alpha, "entity-leaning α");
            } else {
                assert_eq!(policy.config_for(d), &base);
            }
        }
    }

    #[test]
    fn with_domain_overrides() {
        let base = FinderConfig::default();
        let custom = base.clone().with_alpha(0.1);
        let policy = DomainPolicy::uniform(&base).with_domain(Domain::Music, custom.clone());
        assert_eq!(policy.config_for(Domain::Music), &custom);
        assert_eq!(policy.config_for(Domain::Sport), &base);
    }
}
