//! Save → load → rank parity, and deterministic re-serialisation.
//!
//! The satellite contract (ISSUE 4): ranked scores after a snapshot
//! round trip are bit-identical (tolerance ≤1e-12 allowed; we get exact)
//! to the freshly built index, across random synth configs — and saving
//! the loaded state again is byte-identical.

use rightcrowd_core::{AnalyzedCorpus, ExpertFinder, FinderConfig};
use rightcrowd_store::{from_bytes, to_bytes};
use rightcrowd_synth::{DatasetConfig, SyntheticDataset};

/// Random-but-seeded config variations: different RNG seeds and volume
/// scalings around the tiny preset (kept tiny so the suite stays fast).
fn random_configs() -> Vec<DatasetConfig> {
    let mut configs = Vec::new();
    for (i, seed) in [0xEDB7_2015u64, 0xDEAD_BEEF, 7].into_iter().enumerate() {
        let mut cfg = DatasetConfig::tiny();
        cfg.seed = seed;
        // Vary the structure too, not just the seed.
        cfg.candidates = 6 + 2 * i;
        cfg.english_rate = (0.6 + 0.15 * i as f64).min(1.0);
        for v in &mut cfg.volumes {
            v.own_posts += i;
            v.annotations += i;
        }
        configs.push(cfg);
    }
    configs
}

#[test]
fn save_load_rank_parity_across_random_configs() {
    for (case, cfg) in random_configs().into_iter().enumerate() {
        let ds = SyntheticDataset::generate(&cfg);
        let corpus = AnalyzedCorpus::build(&ds);

        let bytes = to_bytes(&ds, &corpus);
        let (loaded_ds, loaded_corpus) = from_bytes(&bytes).expect("round trip");

        // The reconstructed index must be *equal*, not merely equivalent.
        assert_eq!(
            corpus.index(),
            loaded_corpus.index(),
            "case {case}: index not identical after round trip"
        );
        assert_eq!(corpus.doc_ids(), loaded_corpus.doc_ids(), "case {case}");
        assert_eq!(
            corpus.dropped_non_english(),
            loaded_corpus.dropped_non_english(),
            "case {case}"
        );

        // Rank the whole workload through both stacks; scores must match
        // bit for bit (the contract allows ≤1e-12, the implementation
        // delivers exact equality).
        let config = FinderConfig::default();
        let fresh = ExpertFinder::with_corpus(&ds, corpus, &config);
        let loaded = ExpertFinder::with_corpus(&loaded_ds, loaded_corpus, &config);
        for need in ds.queries() {
            let a = fresh.rank(need);
            let b = loaded.rank(need);
            assert_eq!(a.len(), b.len(), "case {case}, query {:?}", need.text);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.person, y.person, "case {case}, query {:?}", need.text);
                assert_eq!(
                    x.score.to_bits(),
                    y.score.to_bits(),
                    "case {case}, query {:?}: {} vs {}",
                    need.text,
                    x.score,
                    y.score
                );
            }
        }
    }
}

#[test]
fn second_save_of_loaded_state_is_byte_identical() {
    for (case, cfg) in random_configs().into_iter().enumerate() {
        let ds = SyntheticDataset::generate(&cfg);
        let corpus = AnalyzedCorpus::build(&ds);
        let first = to_bytes(&ds, &corpus);
        let (loaded_ds, loaded_corpus) = from_bytes(&first).expect("round trip");
        let second = to_bytes(&loaded_ds, &loaded_corpus);
        assert_eq!(first, second, "case {case}: serialisation is not deterministic");
    }
}

#[test]
fn legacy_flags0_snapshot_still_loads_with_identical_ranking() {
    // A pre-blocks (flags-0, flat-CSR) snapshot must keep loading — and
    // rank exactly like the current layout of the same study.
    let cfg = DatasetConfig::tiny();
    let ds = SyntheticDataset::generate(&cfg);
    let corpus = AnalyzedCorpus::build(&ds);

    let legacy = rightcrowd_store::to_bytes_legacy(&ds, &corpus);
    let current = to_bytes(&ds, &corpus);
    let (legacy_ds, legacy_corpus) = from_bytes(&legacy).expect("legacy layout must load");
    let (current_ds, current_corpus) = from_bytes(&current).expect("current layout must load");
    assert_eq!(legacy_corpus.index(), current_corpus.index());

    let config = FinderConfig::default();
    let a = ExpertFinder::with_corpus(&legacy_ds, legacy_corpus, &config);
    let b = ExpertFinder::with_corpus(&current_ds, current_corpus, &config);
    for need in ds.queries() {
        let (ra, rb) = (a.rank(need), b.rank(need));
        assert_eq!(ra.len(), rb.len(), "query {:?}", need.text);
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.person, y.person, "query {:?}", need.text);
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "query {:?}", need.text);
        }
    }
}

#[cfg(not(feature = "blocks-off"))]
#[test]
fn block_snapshot_is_smaller_than_legacy() {
    let cfg = DatasetConfig::tiny();
    let ds = SyntheticDataset::generate(&cfg);
    let corpus = AnalyzedCorpus::build(&ds);
    let legacy = rightcrowd_store::to_bytes_legacy(&ds, &corpus);
    let current = to_bytes(&ds, &corpus);
    assert!(
        current.len() < legacy.len(),
        "block+packed layout ({}) should undercut the legacy layout ({})",
        current.len(),
        legacy.len()
    );
}

/// `snapshot_bytes_read` is CUMULATIVE across loads in a process — it
/// answers "how many container bytes has this process read and verified",
/// not "how large was the last snapshot". Loading the same container
/// twice therefore grows the counter by (at least, under concurrent
/// tests) the container size each time.
#[cfg(not(feature = "obs-off"))]
#[test]
fn snapshot_bytes_read_accumulates_across_loads() {
    use rightcrowd_obs::CounterId;

    let cfg = DatasetConfig::tiny();
    let ds = SyntheticDataset::generate(&cfg);
    let corpus = AnalyzedCorpus::build(&ds);
    let bytes = to_bytes(&ds, &corpus);

    let before = rightcrowd_obs::counter::get(CounterId::SnapshotBytesRead);
    from_bytes(&bytes).expect("first load");
    let after_one = rightcrowd_obs::counter::get(CounterId::SnapshotBytesRead);
    from_bytes(&bytes).expect("second load");
    let after_two = rightcrowd_obs::counter::get(CounterId::SnapshotBytesRead);

    // ≥ rather than ==: the counter is process-global and other tests in
    // this binary may load snapshots concurrently.
    let len = bytes.len() as u64;
    assert!(after_one >= before + len, "{after_one} vs {before} + {len}");
    assert!(after_two >= after_one + len, "{after_two} vs {after_one} + {len}");
}

#[test]
fn save_load_through_the_filesystem() {
    let cfg = DatasetConfig::tiny();
    let ds = SyntheticDataset::generate(&cfg);
    let corpus = AnalyzedCorpus::build(&ds);

    let dir = std::env::temp_dir().join(format!("rcstore-parity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tiny.rcs");

    let saved = rightcrowd_store::save(&path, &ds, &corpus).unwrap();
    let on_disk = std::fs::metadata(&path).unwrap().len();
    assert_eq!(saved.bytes, on_disk);

    let (loaded_ds, loaded_corpus, stats) = rightcrowd_store::load(&path).unwrap();
    assert_eq!(stats.bytes, on_disk);
    assert_eq!(loaded_corpus.retained(), corpus.retained());
    assert_eq!(loaded_ds.graph().counts(), ds.graph().counts());

    std::fs::remove_dir_all(&dir).ok();
}
