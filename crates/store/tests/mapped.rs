//! Mapped-snapshot (`RCSHRD02`) contract tests: owned ↔ mapped rank
//! parity through real files, warm/cold open behaviour, the sidecar
//! invalidation matrix (truncate / extend / touch / corrupt / forge),
//! legacy-layout compatibility, and save determinism.

use rightcrowd_core::{testkit, ExpertFinder, FinderConfig};
use rightcrowd_store::{
    load_sharded, manifest_path, open_mapped, read_sidecar, save_sharded, save_sharded_with,
    shard_path, sidecar_path, to_bytes, write_sidecar, Sidecar, SnapshotLayout, StoreError,
    SHARD_FORMAT_VERSION_MAPPED,
};
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcstore-mapped-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Saves the tiny study as an `n`-shard *mapped* snapshot.
fn save_tiny_mapped(tag: &str, n: usize) -> PathBuf {
    let dir = temp_dir(tag);
    let (ds, corpus) = testkit::tiny();
    let stats =
        save_sharded_with(&dir, ds, corpus, n, 2, SnapshotLayout::Mapped).expect("mapped save");
    assert_eq!(stats.shard_count, n);
    dir
}

fn delete_sidecars(dir: &Path) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "rcv") {
            std::fs::remove_file(path).unwrap();
        }
    }
}

/// Re-signs an `RCSHRD02` file's trailing whole-file digest after
/// tampering (the forged-shard attack: internally consistent bytes whose
/// digest no longer matches the manifest's promise).
fn resign_mapped_trailer(bytes: &mut [u8]) {
    let end = bytes.len() - 8;
    let crc = rightcrowd_store::crc64(&bytes[..end]);
    bytes[end..].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn mapped_load_is_bit_identical_to_streamed_for_1_and_3_shards() {
    let (ds, corpus) = testkit::tiny();
    for n in [1usize, 3] {
        let streamed_dir = temp_dir(&format!("parity-streamed-{n}"));
        save_sharded(&streamed_dir, ds, corpus, n, 2).expect("streamed save");
        let (st_ds, st_corpus, _) = load_sharded(&streamed_dir, 2).expect("streamed load");

        let mapped_dir = save_tiny_mapped(&format!("parity-mapped-{n}"), n);
        let (mp_ds, mp_corpus, stats) = load_sharded(&mapped_dir, 2).expect("mapped load");
        assert_eq!(stats.shard_count, n);
        assert!(mp_corpus.index().is_mapped(), "{n} shards: index should be mapped");
        assert!(!st_corpus.index().is_mapped());

        // Backing-independent equality, both directions.
        assert_eq!(st_corpus.index(), mp_corpus.index(), "{n} shards");
        assert_eq!(st_corpus.doc_ids(), mp_corpus.doc_ids());

        // Rank the whole workload through both stacks; bit-identical.
        let config = FinderConfig::default();
        let st_finder = ExpertFinder::with_corpus(&st_ds, st_corpus, &config);
        let mp_finder = ExpertFinder::with_corpus(&mp_ds, mp_corpus, &config);
        for need in ds.queries() {
            let a = st_finder.rank(need);
            let b = mp_finder.rank(need);
            assert_eq!(a.len(), b.len(), "{n} shards: {need:?}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.person, y.person);
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "{n} shards");
            }
        }
        std::fs::remove_dir_all(&streamed_dir).ok();
        std::fs::remove_dir_all(&mapped_dir).ok();
    }
}

#[test]
fn open_mapped_is_warm_after_save_and_cold_after_sidecar_loss() {
    let dir = save_tiny_mapped("warmcold", 2);
    // Every file got a sidecar at save time — first open is already warm.
    let (index, stats) = open_mapped(&dir).expect("warm open");
    assert!(stats.warm, "save-time sidecars should make the first open warm");
    assert!(index.is_mapped());
    assert_eq!(stats.shard_count, 2);
    assert!(stats.mapped_bytes > 0);
    assert!(stats.manifest_digest != 0);

    // Drop the sidecars: the open must fall back to full verification —
    // and earn the sidecars back.
    delete_sidecars(&dir);
    let (index2, stats2) = open_mapped(&dir).expect("cold open");
    assert!(!stats2.warm);
    assert_eq!(index, index2, "cold and warm opens see the same index");
    assert!(sidecar_path(&shard_path(&dir, 0)).is_file(), "cold open rewrites sidecars");
    assert!(sidecar_path(&manifest_path(&dir)).is_file());
    let (_, stats3) = open_mapped(&dir).expect("re-warmed open");
    assert!(stats3.warm);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn open_mapped_matches_streamed_load_and_scores_identically() {
    let (ds, corpus) = testkit::tiny();
    let streamed_dir = temp_dir("openparity-streamed");
    save_sharded(&streamed_dir, ds, corpus, 3, 2).unwrap();
    let (_, st_corpus, _) = load_sharded(&streamed_dir, 2).unwrap();

    let mapped_dir = save_tiny_mapped("openparity-mapped", 3);
    let (index, _) = open_mapped(&mapped_dir).expect("mapped open");
    assert_eq!(st_corpus.index(), &index);
    let query = rightcrowd_index::Query::from_terms(["swim", "code", "cook"]);
    let a = st_corpus.index().score_top_k(&query, 0.6, 10, |_| true);
    let b = index.score_top_k(&query, 0.6, 10, |_| true);
    assert_eq!(a, b);
    std::fs::remove_dir_all(&streamed_dir).ok();
    std::fs::remove_dir_all(&mapped_dir).ok();
}

#[test]
fn truncated_shard_is_typed_error_never_a_stale_map() {
    let dir = save_tiny_mapped("truncate", 2);
    let path = shard_path(&dir, 1);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 17]).unwrap();
    match open_mapped(&dir) {
        Err(StoreError::ShardChecksumMismatch { index: 1 }) => {}
        other => panic!("expected ShardChecksumMismatch, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn extended_shard_is_typed_error() {
    let dir = save_tiny_mapped("extend", 2);
    let path = shard_path(&dir, 0);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(&[0u8; 9]);
    std::fs::write(&path, &bytes).unwrap();
    match open_mapped(&dir) {
        Err(StoreError::ShardChecksumMismatch { index: 0 }) => {}
        other => panic!("expected ShardChecksumMismatch, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn touched_shard_falls_back_to_full_verification() {
    let dir = save_tiny_mapped("touch", 2);
    let path = shard_path(&dir, 0);
    // Same bytes, new mtime: the sidecar is stale, the data is fine.
    let later = std::time::UNIX_EPOCH + std::time::Duration::from_secs(4_000_000_000);
    std::fs::File::options().append(true).open(&path).unwrap().set_modified(later).unwrap();
    let (_, stats) = open_mapped(&dir).expect("open after touch");
    assert!(!stats.warm, "stale sidecar must force the streamed pass");
    // The fallback re-verified and re-attested; next open is warm again.
    let (_, stats2) = open_mapped(&dir).expect("re-warmed");
    assert!(stats2.warm);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_shard_payload_is_typed_error() {
    let dir = save_tiny_mapped("corrupt", 1);
    let path = shard_path(&dir, 0);
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip one payload byte mid-file; the trailer still matches the
    // manifest, so only the streamed CRC pass can catch it — which the
    // now-stale sidecar (mtime changed by the rewrite) forces.
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    match open_mapped(&dir) {
        Err(
            StoreError::ShardChecksumMismatch { index: 0 }
            | StoreError::ChecksumMismatch { .. }
            | StoreError::Corrupt(_),
        ) => {}
        other => panic!("expected a checksum/corrupt error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn forged_sidecar_cannot_bless_tampered_bytes() {
    let dir = save_tiny_mapped("forge", 1);
    let path = shard_path(&dir, 0);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    // Make the file internally consistent again (re-signed trailer), then
    // forge a sidecar that faithfully attests the *tampered* file.
    resign_mapped_trailer(&mut bytes);
    std::fs::write(&path, &bytes).unwrap();
    let forged_digest = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    let sc = Sidecar::for_file(&path, SHARD_FORMAT_VERSION_MAPPED, forged_digest).unwrap();
    write_sidecar(&path, &sc).unwrap();
    assert_eq!(read_sidecar(&path).unwrap(), sc, "forged sidecar is well-formed");
    // The manifest's digest is the trust anchor: the forged sidecar does
    // not match it, the trailer does not match it — typed error.
    match open_mapped(&dir) {
        Err(StoreError::ShardChecksumMismatch { index: 0 }) => {}
        other => panic!("expected ShardChecksumMismatch, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn touched_manifest_falls_back_without_losing_the_open() {
    let dir = save_tiny_mapped("manifest-touch", 2);
    let later = std::time::UNIX_EPOCH + std::time::Duration::from_secs(4_000_000_000);
    std::fs::File::options()
        .append(true)
        .open(manifest_path(&dir))
        .unwrap()
        .set_modified(later)
        .unwrap();
    let (_, stats) = open_mapped(&dir).expect("open after manifest touch");
    assert!(!stats.warm);
    let (_, stats2) = open_mapped(&dir).expect("re-warmed");
    assert!(stats2.warm);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn open_mapped_refuses_streamed_layout() {
    let (ds, corpus) = testkit::tiny();
    let dir = temp_dir("refuse-streamed");
    save_sharded(&dir, ds, corpus, 2, 2).unwrap();
    match open_mapped(&dir) {
        Err(StoreError::VersionMismatch { found: 1, expected: 2 }) => {}
        other => panic!("expected VersionMismatch 1 vs 2, got {other:?}"),
    }
    // The streamed load of the same directory still works, of course.
    assert!(load_sharded(&dir, 2).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn layout_detection_and_save_determinism() {
    let dir_a = save_tiny_mapped("determinism-a", 2);
    let dir_b = save_tiny_mapped("determinism-b", 2);
    assert!(rightcrowd_store::is_mapped_snapshot(&dir_a));
    for i in 0..2u32 {
        let a = std::fs::read(shard_path(&dir_a, i)).unwrap();
        let b = std::fs::read(shard_path(&dir_b, i)).unwrap();
        assert_eq!(a, b, "shard {i} bytes must be deterministic");
    }
    assert_eq!(
        std::fs::read(manifest_path(&dir_a)).unwrap(),
        std::fs::read(manifest_path(&dir_b)).unwrap()
    );

    let (ds, corpus) = testkit::tiny();
    let streamed = temp_dir("determinism-streamed");
    save_sharded(&streamed, ds, corpus, 2, 2).unwrap();
    assert!(!rightcrowd_store::is_mapped_snapshot(&streamed));
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
    std::fs::remove_dir_all(&streamed).ok();
}

#[test]
fn mapped_corpus_saves_back_to_identical_monolithic_bytes() {
    let (ds, corpus) = testkit::tiny();
    let reference = to_bytes(ds, corpus);
    let dir = save_tiny_mapped("resave", 2);
    let (mp_ds, mp_corpus, _) = load_sharded(&dir, 2).unwrap();
    assert!(mp_corpus.index().is_mapped());
    // The monolithic writer regenerates packed sections from the mapped
    // index's canonical parts — byte-identical output.
    assert_eq!(to_bytes(&mp_ds, &mp_corpus), reference);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn obs_counters_track_mapped_opens() {
    let dir = save_tiny_mapped("obs", 2);
    let before_opens = rightcrowd_obs::counter::get(rightcrowd_obs::CounterId::MmapOpens);
    let before_hits = rightcrowd_obs::counter::get(rightcrowd_obs::CounterId::SidecarHits);
    let before_bytes = rightcrowd_obs::counter::get(rightcrowd_obs::CounterId::MappedBytes);
    let (_, stats) = open_mapped(&dir).expect("warm open");
    if cfg!(feature = "obs-off") {
        assert_eq!(rightcrowd_obs::counter::get(rightcrowd_obs::CounterId::MmapOpens), 0);
    } else {
        assert!(rightcrowd_obs::counter::get(rightcrowd_obs::CounterId::MmapOpens) >= before_opens + 2);
        // Manifest + 2 shards, all warm.
        assert!(rightcrowd_obs::counter::get(rightcrowd_obs::CounterId::SidecarHits) >= before_hits + 3);
        assert!(
            rightcrowd_obs::counter::get(rightcrowd_obs::CounterId::MappedBytes)
                >= before_bytes + stats.mapped_bytes
        );
    }
    delete_sidecars(&dir);
    let before_misses = rightcrowd_obs::counter::get(rightcrowd_obs::CounterId::SidecarMisses);
    open_mapped(&dir).expect("cold open");
    if !cfg!(feature = "obs-off") {
        assert!(rightcrowd_obs::counter::get(rightcrowd_obs::CounterId::SidecarMisses) >= before_misses + 3);
    }
    std::fs::remove_dir_all(&dir).ok();
}
