//! Fault-injection harness: bit-flips and truncations at every section
//! boundary (and inside every byte region) of a real snapshot must
//! produce the documented typed [`StoreError`] — and must never panic.
//!
//! The acceptance contract (ISSUE 4): *all fault-injection cases
//! (bit-flip + truncation per section) return the expected typed
//! `StoreError` with zero panics.*

use rightcrowd_core::testkit;
use rightcrowd_store::{from_bytes, layout, to_bytes, StoreError, FORMAT_VERSION};
use std::sync::OnceLock;

/// One snapshot of the tiny preset, built once for the whole suite.
fn snapshot() -> &'static Vec<u8> {
    static CELL: OnceLock<Vec<u8>> = OnceLock::new();
    CELL.get_or_init(|| {
        let (ds, corpus) = testkit::tiny();
        to_bytes(ds, corpus)
    })
}

#[test]
fn pristine_snapshot_loads() {
    let (ds, corpus) = from_bytes(snapshot()).expect("pristine snapshot must load");
    let (orig_ds, orig_corpus) = testkit::tiny();
    assert_eq!(ds.graph().counts(), orig_ds.graph().counts());
    assert_eq!(corpus.retained(), orig_corpus.retained());
}

#[test]
fn layout_maps_the_whole_file() {
    let bytes = snapshot();
    let infos = layout(bytes).unwrap();
    let names: Vec<_> = infos.iter().map(|i| i.name).collect();
    // The default build writes block-compressed postings sections; the
    // `blocks-off` build writes the legacy flat-CSR ones.
    #[cfg(not(feature = "blocks-off"))]
    let postings = ["term_blocks", "entity_blocks"];
    #[cfg(feature = "blocks-off")]
    let postings = ["term_index", "entity_index"];
    assert_eq!(
        names,
        vec![
            "header",
            "table",
            "meta",
            "graph",
            "web",
            "truth",
            "corpus",
            postings[0],
            postings[1],
            "file_crc"
        ]
    );
    assert_eq!(infos.iter().map(|i| i.len).sum::<usize>(), bytes.len());
}

/// Flipping one bit inside a payload section must surface as that
/// section's checksum failure (detected before the whole-file digest,
/// which would also fail). Each section is probed at its first, middle
/// and last byte.
#[test]
fn bit_flip_in_each_section_names_the_section() {
    let bytes = snapshot();
    let infos = layout(bytes).unwrap();
    for info in infos.iter().filter(|i| i.kind != 0) {
        for probe in [info.offset, info.offset + info.len / 2, info.offset + info.len - 1] {
            let mut damaged = bytes.clone();
            damaged[probe] ^= 0x01;
            match from_bytes(&damaged) {
                Err(StoreError::ChecksumMismatch { section }) => {
                    assert_eq!(
                        section, info.name,
                        "flip at byte {probe} should blame `{}`",
                        info.name
                    );
                }
                other => panic!(
                    "flip at byte {probe} in `{}`: expected ChecksumMismatch, got {other:?}",
                    info.name
                ),
            }
        }
    }
}

#[test]
fn bit_flip_in_magic_is_bad_magic() {
    let mut damaged = snapshot().clone();
    damaged[0] ^= 0x01;
    assert!(matches!(from_bytes(&damaged), Err(StoreError::BadMagic)));
}

#[test]
fn bit_flip_in_version_is_version_mismatch() {
    // The version word is validated before the header checksum on
    // purpose: an old or future snapshot should say "wrong version", not
    // "corrupt".
    let mut damaged = snapshot().clone();
    damaged[8] ^= 0x02;
    match from_bytes(&damaged) {
        Err(StoreError::VersionMismatch { found, expected }) => {
            assert_eq!(found, FORMAT_VERSION ^ 0x02);
            assert_eq!(expected, FORMAT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

#[test]
fn bit_flip_in_flags_is_unsupported_flags() {
    // Flipping an *unknown* flag bit is a compatibility refusal that
    // reports the resulting flag word (pristine flags are no longer 0 in
    // the default build, so compute the expectation from the file).
    let bytes = snapshot();
    let want = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) ^ 0x04;
    let mut damaged = bytes.clone();
    damaged[12] ^= 0x04;
    match from_bytes(&damaged) {
        Err(StoreError::UnsupportedFlags { flags }) => assert_eq!(flags, want),
        other => panic!("expected UnsupportedFlags, got {other:?}"),
    }
}

#[test]
fn bit_flip_in_known_flag_is_header_checksum() {
    // Flipping a *defined* flag bit passes the compatibility gate (the
    // result is still a known combination) and is then caught as header
    // damage by the CRC.
    let mut damaged = snapshot().clone();
    damaged[12] ^= 0x01;
    assert!(matches!(
        from_bytes(&damaged),
        Err(StoreError::ChecksumMismatch { section: "header" })
    ));
}

#[test]
fn bit_flip_in_section_count_is_header_checksum() {
    let mut damaged = snapshot().clone();
    damaged[16] ^= 0x01;
    assert!(matches!(
        from_bytes(&damaged),
        Err(StoreError::ChecksumMismatch { section: "header" })
    ));
}

#[test]
fn bit_flip_in_header_crc_is_header_checksum() {
    let mut damaged = snapshot().clone();
    damaged[20] ^= 0x01;
    assert!(matches!(
        from_bytes(&damaged),
        Err(StoreError::ChecksumMismatch { section: "header" })
    ));
}

#[test]
fn bit_flip_in_table_is_table_checksum() {
    let bytes = snapshot();
    let infos = layout(bytes).unwrap();
    let table = infos.iter().find(|i| i.name == "table").unwrap();
    for probe in [table.offset, table.offset + table.len / 2, table.offset + table.len - 1] {
        let mut damaged = bytes.clone();
        damaged[probe] ^= 0x01;
        assert!(
            matches!(
                from_bytes(&damaged),
                Err(StoreError::ChecksumMismatch { section: "table" })
            ),
            "flip at table byte {probe}"
        );
    }
}

#[test]
fn bit_flip_in_trailing_digest_is_file_checksum() {
    let bytes = snapshot();
    let mut damaged = bytes.clone();
    let last = damaged.len() - 1;
    damaged[last] ^= 0x01;
    assert!(matches!(
        from_bytes(&damaged),
        Err(StoreError::ChecksumMismatch { section: "file" })
    ));
}

/// Truncating at every section boundary — and at interior points of each
/// region — must always be `Truncated`, never a panic and never a
/// misleading checksum error.
#[test]
fn truncation_at_every_boundary_is_truncated() {
    let bytes = snapshot();
    let infos = layout(bytes).unwrap();
    let mut cuts = vec![0usize];
    for info in &infos {
        cuts.push(info.offset); // start of each region
        cuts.push(info.offset + info.len / 2); // mid-region
        cuts.push(info.offset + info.len.saturating_sub(1)); // last byte
    }
    cuts.sort_unstable();
    cuts.dedup();
    for cut in cuts {
        assert!(cut < bytes.len());
        match from_bytes(&bytes[..cut]) {
            Err(StoreError::Truncated) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
}

/// Re-signs a tampered section so the whole envelope verifies again:
/// section CRC in the table entry, table CRC, whole-file CRC. The
/// consistent-rewrite attacks below use this to get past every checksum
/// and prove the *structural* validators still refuse the file.
fn resign_section(damaged: &mut [u8], section_name: &str) {
    use rightcrowd_store::crc64;
    let infos = layout(damaged).unwrap();
    let target = *infos.iter().find(|i| i.name == section_name).unwrap();
    let table = *infos.iter().find(|i| i.name == "table").unwrap();

    // Section crc lives in this section's table entry
    // (kind u32 | len u64 | crc u64); find the entry by scanning kinds.
    let section_crc = crc64(&damaged[target.offset..target.offset + target.len]);
    let entry_count = (table.len - 8) / 20;
    let mut fixed = false;
    for i in 0..entry_count {
        let at = table.offset + i * 20;
        let kind = u32::from_le_bytes(damaged[at..at + 4].try_into().unwrap());
        if kind == target.kind {
            damaged[at + 12..at + 20].copy_from_slice(&section_crc.to_le_bytes());
            fixed = true;
        }
    }
    assert!(fixed, "table entry for `{section_name}` not found");
    // Re-sign the table crc (last 8 bytes of the table region)…
    let table_crc = crc64(&damaged[table.offset..table.offset + table.len - 8]);
    let tc_at = table.offset + table.len - 8;
    damaged[tc_at..tc_at + 8].copy_from_slice(&table_crc.to_le_bytes());
    // …and the whole-file crc.
    let end = damaged.len() - 8;
    let file_crc = crc64(&damaged[..end]);
    damaged[end..].copy_from_slice(&file_crc.to_le_bytes());
}

/// A consistent rewrite — payload tampered *and* every checksum fixed up —
/// defeats the envelope, so the structural validators must catch it as
/// `Corrupt`. The default layout wraps every section with a packing tag,
/// so the first forgeable structural byte is the tag itself; the
/// `blocks-off` legacy layout exposes the corpus document tags directly.
#[test]
fn checksum_valid_structural_damage_is_corrupt() {
    let bytes = snapshot();
    let infos = layout(bytes).unwrap();
    let corpus = infos.iter().find(|i| i.name == "corpus").unwrap();

    let mut damaged = bytes.clone();
    #[cfg(not(feature = "blocks-off"))]
    let (forge_at, needle) = (corpus.offset, "packing tag");
    // Legacy payload: dropped(u64) + count(u64) + first document entry
    // (tag u8 + id u32). Forge an invalid document tag.
    #[cfg(feature = "blocks-off")]
    let (forge_at, needle) = (corpus.offset + 16, "document tag");
    damaged[forge_at] = 9;
    resign_section(&mut damaged, "corpus");

    match from_bytes(&damaged) {
        Err(StoreError::Corrupt(msg)) => {
            assert!(msg.contains(needle), "unexpected corruption report: {msg}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

/// Consistent rewrite of *block metadata*: forge a term block's recorded
/// `last_doc` inside the term_blocks section (re-signing every CRC), and
/// the delta-decode cross-check must refuse the postings.
#[cfg(not(feature = "blocks-off"))]
#[test]
fn checksum_valid_block_metadata_damage_is_corrupt() {
    let bytes = snapshot();
    let infos = layout(bytes).unwrap();
    let tb = infos.iter().find(|i| i.name == "term_blocks").unwrap();

    // Walk the wire layout to the last_doc array. Postings sections are
    // wrapped raw, so the payload starts one tag byte in:
    //   n_vocab u64, n_vocab × (len u64 + bytes), irf len u64 + 8·len,
    //   block_offsets len u64 + 4·len, last_doc len u64 + 4·len, …
    let payload = &bytes[tb.offset + 1..tb.offset + tb.len];
    let u64_at = |at: usize| u64::from_le_bytes(payload[at..at + 8].try_into().unwrap()) as usize;
    let mut at = 0usize;
    let n_vocab = u64_at(at);
    at += 8;
    for _ in 0..n_vocab {
        at += 8 + u64_at(at);
    }
    at += 8 + 8 * u64_at(at); // irf
    at += 8 + 4 * u64_at(at); // block_offsets
    let n_blocks = u64_at(at);
    assert!(n_blocks > 0, "tiny snapshot should have at least one term block");
    let last_doc_at = tb.offset + 1 + at + 8; // first last_doc entry on disk

    let mut damaged = bytes.clone();
    damaged[last_doc_at] ^= 0x01;
    resign_section(&mut damaged, "term_blocks");

    match from_bytes(&damaged) {
        Err(StoreError::Corrupt(msg)) => {
            assert!(msg.contains("last doc"), "unexpected corruption report: {msg}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

/// Errors must render actionably (the CLI prints them verbatim).
#[test]
fn injected_errors_render_with_section_names() {
    let bytes = snapshot();
    let infos = layout(bytes).unwrap();
    let graph = infos.iter().find(|i| i.name == "graph").unwrap();
    let mut damaged = bytes.clone();
    damaged[graph.offset] ^= 0xFF;
    let err = from_bytes(&damaged).unwrap_err();
    assert!(err.to_string().contains("`graph`"), "{err}");
}
