//! Fault-injection harness: bit-flips and truncations at every section
//! boundary (and inside every byte region) of a real snapshot must
//! produce the documented typed [`StoreError`] — and must never panic.
//!
//! The acceptance contract (ISSUE 4): *all fault-injection cases
//! (bit-flip + truncation per section) return the expected typed
//! `StoreError` with zero panics.*

use rightcrowd_core::testkit;
use rightcrowd_store::{from_bytes, layout, to_bytes, StoreError, FORMAT_VERSION};
use std::sync::OnceLock;

/// One snapshot of the tiny preset, built once for the whole suite.
fn snapshot() -> &'static Vec<u8> {
    static CELL: OnceLock<Vec<u8>> = OnceLock::new();
    CELL.get_or_init(|| {
        let (ds, corpus) = testkit::tiny();
        to_bytes(ds, corpus)
    })
}

#[test]
fn pristine_snapshot_loads() {
    let (ds, corpus) = from_bytes(snapshot()).expect("pristine snapshot must load");
    let (orig_ds, orig_corpus) = testkit::tiny();
    assert_eq!(ds.graph().counts(), orig_ds.graph().counts());
    assert_eq!(corpus.retained(), orig_corpus.retained());
}

#[test]
fn layout_maps_the_whole_file() {
    let bytes = snapshot();
    let infos = layout(bytes).unwrap();
    let names: Vec<_> = infos.iter().map(|i| i.name).collect();
    assert_eq!(
        names,
        vec![
            "header",
            "table",
            "meta",
            "graph",
            "web",
            "truth",
            "corpus",
            "term_index",
            "entity_index",
            "file_crc"
        ]
    );
    assert_eq!(infos.iter().map(|i| i.len).sum::<usize>(), bytes.len());
}

/// Flipping one bit inside a payload section must surface as that
/// section's checksum failure (detected before the whole-file digest,
/// which would also fail). Each section is probed at its first, middle
/// and last byte.
#[test]
fn bit_flip_in_each_section_names_the_section() {
    let bytes = snapshot();
    let infos = layout(bytes).unwrap();
    for info in infos.iter().filter(|i| i.kind != 0) {
        for probe in [info.offset, info.offset + info.len / 2, info.offset + info.len - 1] {
            let mut damaged = bytes.clone();
            damaged[probe] ^= 0x01;
            match from_bytes(&damaged) {
                Err(StoreError::ChecksumMismatch { section }) => {
                    assert_eq!(
                        section, info.name,
                        "flip at byte {probe} should blame `{}`",
                        info.name
                    );
                }
                other => panic!(
                    "flip at byte {probe} in `{}`: expected ChecksumMismatch, got {other:?}",
                    info.name
                ),
            }
        }
    }
}

#[test]
fn bit_flip_in_magic_is_bad_magic() {
    let mut damaged = snapshot().clone();
    damaged[0] ^= 0x01;
    assert!(matches!(from_bytes(&damaged), Err(StoreError::BadMagic)));
}

#[test]
fn bit_flip_in_version_is_version_mismatch() {
    // The version word is validated before the header checksum on
    // purpose: an old or future snapshot should say "wrong version", not
    // "corrupt".
    let mut damaged = snapshot().clone();
    damaged[8] ^= 0x02;
    match from_bytes(&damaged) {
        Err(StoreError::VersionMismatch { found, expected }) => {
            assert_eq!(found, FORMAT_VERSION ^ 0x02);
            assert_eq!(expected, FORMAT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

#[test]
fn bit_flip_in_flags_is_unsupported_flags() {
    let mut damaged = snapshot().clone();
    damaged[12] ^= 0x04;
    assert!(matches!(
        from_bytes(&damaged),
        Err(StoreError::UnsupportedFlags { flags: 4 })
    ));
}

#[test]
fn bit_flip_in_section_count_is_header_checksum() {
    let mut damaged = snapshot().clone();
    damaged[16] ^= 0x01;
    assert!(matches!(
        from_bytes(&damaged),
        Err(StoreError::ChecksumMismatch { section: "header" })
    ));
}

#[test]
fn bit_flip_in_header_crc_is_header_checksum() {
    let mut damaged = snapshot().clone();
    damaged[20] ^= 0x01;
    assert!(matches!(
        from_bytes(&damaged),
        Err(StoreError::ChecksumMismatch { section: "header" })
    ));
}

#[test]
fn bit_flip_in_table_is_table_checksum() {
    let bytes = snapshot();
    let infos = layout(bytes).unwrap();
    let table = infos.iter().find(|i| i.name == "table").unwrap();
    for probe in [table.offset, table.offset + table.len / 2, table.offset + table.len - 1] {
        let mut damaged = bytes.clone();
        damaged[probe] ^= 0x01;
        assert!(
            matches!(
                from_bytes(&damaged),
                Err(StoreError::ChecksumMismatch { section: "table" })
            ),
            "flip at table byte {probe}"
        );
    }
}

#[test]
fn bit_flip_in_trailing_digest_is_file_checksum() {
    let bytes = snapshot();
    let mut damaged = bytes.clone();
    let last = damaged.len() - 1;
    damaged[last] ^= 0x01;
    assert!(matches!(
        from_bytes(&damaged),
        Err(StoreError::ChecksumMismatch { section: "file" })
    ));
}

/// Truncating at every section boundary — and at interior points of each
/// region — must always be `Truncated`, never a panic and never a
/// misleading checksum error.
#[test]
fn truncation_at_every_boundary_is_truncated() {
    let bytes = snapshot();
    let infos = layout(bytes).unwrap();
    let mut cuts = vec![0usize];
    for info in &infos {
        cuts.push(info.offset); // start of each region
        cuts.push(info.offset + info.len / 2); // mid-region
        cuts.push(info.offset + info.len.saturating_sub(1)); // last byte
    }
    cuts.sort_unstable();
    cuts.dedup();
    for cut in cuts {
        assert!(cut < bytes.len());
        match from_bytes(&bytes[..cut]) {
            Err(StoreError::Truncated) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
}

/// A consistent rewrite — payload tampered *and* every checksum fixed up —
/// defeats the envelope, so the structural validators must catch it as
/// `Corrupt`. This re-signs a damaged `corpus` section (an out-of-range
/// document tag) with valid CRCs.
#[test]
fn checksum_valid_structural_damage_is_corrupt() {
    use rightcrowd_store::crc64;

    let bytes = snapshot();
    let infos = layout(bytes).unwrap();
    let corpus = infos.iter().find(|i| i.name == "corpus").unwrap();
    let table = infos.iter().find(|i| i.name == "table").unwrap();

    let mut damaged = bytes.clone();
    // The corpus payload starts with dropped(u64) + count(u64) + first
    // document entry (tag u8 + id u32). Forge an invalid tag.
    let tag_at = corpus.offset + 16;
    damaged[tag_at] = 9;

    // Re-sign: section crc lives in this section's table entry
    // (kind u32 | len u64 | crc u64); find the entry by scanning kinds.
    let section_crc = crc64(&damaged[corpus.offset..corpus.offset + corpus.len]);
    let entries_start = table.offset;
    let entry_count = (table.len - 8) / 20;
    let mut fixed = false;
    for i in 0..entry_count {
        let at = entries_start + i * 20;
        let kind = u32::from_le_bytes(damaged[at..at + 4].try_into().unwrap());
        if kind == corpus.kind {
            damaged[at + 12..at + 20].copy_from_slice(&section_crc.to_le_bytes());
            fixed = true;
        }
    }
    assert!(fixed, "corpus table entry not found");
    // Re-sign the table crc (last 8 bytes of the table region)…
    let table_crc = crc64(&damaged[table.offset..table.offset + table.len - 8]);
    let tc_at = table.offset + table.len - 8;
    damaged[tc_at..tc_at + 8].copy_from_slice(&table_crc.to_le_bytes());
    // …and the whole-file crc.
    let end = damaged.len() - 8;
    let file_crc = crc64(&damaged[..end]);
    damaged[end..].copy_from_slice(&file_crc.to_le_bytes());

    match from_bytes(&damaged) {
        Err(StoreError::Corrupt(msg)) => {
            assert!(msg.contains("document tag"), "unexpected corruption report: {msg}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

/// Errors must render actionably (the CLI prints them verbatim).
#[test]
fn injected_errors_render_with_section_names() {
    let bytes = snapshot();
    let infos = layout(bytes).unwrap();
    let graph = infos.iter().find(|i| i.name == "graph").unwrap();
    let mut damaged = bytes.clone();
    damaged[graph.offset] ^= 0xFF;
    let err = from_bytes(&damaged).unwrap_err();
    assert!(err.to_string().contains("`graph`"), "{err}");
}
