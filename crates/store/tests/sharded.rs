//! Sharded-snapshot contract tests: parity against the monolithic path
//! and fault injection over the manifest + shard files.
//!
//! Parity (ISSUE 5, satellite 3): `save_sharded → load_sharded → rank` is
//! bit-identical to the monolithic snapshot of the same study for shard
//! counts 1, 3 and 7. Fault injection: a missing shard file, duplicate /
//! overlapping / gapped term ranges, a shard digest mismatch, and
//! manifest/shard format-version skew each surface as the exact typed
//! [`StoreError`] — never a panic.

use rightcrowd_core::{testkit, ExpertFinder, FinderConfig};
use rightcrowd_store::{
    crc64, from_bytes, layout_with, load_sharded, manifest_path, save_sharded, shard_path,
    to_bytes, StoreError, MANIFEST_MAGIC,
};
use std::path::{Path, PathBuf};

/// A fresh temp directory for one test (removed-and-recreated so reruns
/// are clean).
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcstore-sharded-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Saves the tiny study as an `n`-shard snapshot under a fresh directory.
fn save_tiny_sharded(tag: &str, n: usize) -> PathBuf {
    let dir = temp_dir(tag);
    let (ds, corpus) = testkit::tiny();
    let stats = save_sharded(&dir, ds, corpus, n, 2).expect("sharded save");
    assert_eq!(stats.shard_count, n);
    dir
}

/// Recomputes every checksum of a container after tampering: each
/// section's table CRC entry, the table CRC, and the whole-file CRC. With
/// the envelope re-signed, only the structural validators stand between
/// the tampered bytes and the loader.
fn resign(bytes: &mut [u8], magic: &[u8; 8]) {
    let infos = layout_with(bytes, magic).expect("layout");
    let table = infos.iter().find(|i| i.name == "table").expect("table region");
    for info in infos.iter().filter(|i| i.kind != 0) {
        let section_crc = crc64(&bytes[info.offset..info.offset + info.len]);
        let entry_count = (table.len - 8) / 20;
        for e in 0..entry_count {
            let at = table.offset + e * 20;
            let kind = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            if kind == info.kind {
                bytes[at + 12..at + 20].copy_from_slice(&section_crc.to_le_bytes());
            }
        }
    }
    let table_crc = crc64(&bytes[table.offset..table.offset + table.len - 8]);
    let tc_at = table.offset + table.len - 8;
    bytes[tc_at..tc_at + 8].copy_from_slice(&table_crc.to_le_bytes());
    let end = bytes.len() - 8;
    let file_crc = crc64(&bytes[..end]);
    bytes[end..].copy_from_slice(&file_crc.to_le_bytes());
}

/// Byte offset of the `shard_table` payload inside the manifest, plus its
/// length.
fn shard_table_region(manifest: &[u8]) -> (usize, usize) {
    let infos = layout_with(manifest, &MANIFEST_MAGIC).expect("manifest layout");
    let info = infos.iter().find(|i| i.name == "shard_table").expect("shard_table section");
    (info.offset, info.len)
}

/// Applies `tamper` to the manifest's shard-table payload, re-signs the
/// envelope, and writes the result back.
fn tamper_shard_table(dir: &Path, tamper: impl FnOnce(&mut [u8])) {
    let path = manifest_path(dir);
    let mut manifest = std::fs::read(&path).unwrap();
    let (offset, len) = shard_table_region(&manifest);
    // Packed manifests wrap each section with a one-byte packing tag (the
    // shard table itself rides raw); aim past it at the actual payload.
    let flags = u32::from_le_bytes(manifest[12..16].try_into().unwrap());
    let skip = usize::from(flags & rightcrowd_store::FLAG_PACKED_SECTIONS != 0);
    tamper(&mut manifest[offset + skip..offset + len]);
    resign(&mut manifest, &MANIFEST_MAGIC);
    std::fs::write(&path, &manifest).unwrap();
}

// Shard-table payload layout: version u32 | term_count u64 |
// entity_count u64 | entry_count u64 | entries × 36 bytes
// (term_lo u32 | term_hi u32 | entity_lo u32 | entity_hi u32 |
//  byte_len u64 | digest u64 | flags u32).
const TABLE_HEADER: usize = 4 + 8 + 8 + 8;
const ENTRY_LEN: usize = 36;

/// Offset of entry `i`'s term_lo field inside the shard-table payload.
fn entry_term_lo(i: usize) -> usize {
    TABLE_HEADER + i * ENTRY_LEN
}

#[test]
fn sharded_parity_with_monolithic_for_1_3_7() {
    let (ds, corpus) = testkit::tiny();
    let monolithic = to_bytes(ds, corpus);

    for n in [1usize, 3, 7] {
        let (mono_ds, mono_corpus) = from_bytes(&monolithic).expect("monolithic load");
        let dir = save_tiny_sharded(&format!("parity-{n}"), n);
        let (sh_ds, sh_corpus, stats) = load_sharded(&dir, 2).expect("sharded load");
        assert_eq!(stats.shard_count, n);
        assert!(stats.manifest_bytes > 0 && stats.bytes > stats.manifest_bytes);

        // The spliced index is *equal* to the monolithic one — every
        // scoring path is observably identical.
        assert_eq!(mono_corpus.index(), sh_corpus.index(), "{n} shards: index differs");
        assert_eq!(mono_corpus.doc_ids(), sh_corpus.doc_ids(), "{n} shards");
        assert_eq!(mono_ds.graph().counts(), sh_ds.graph().counts(), "{n} shards");

        // Rank the whole workload through both stacks; scores must match
        // bit for bit.
        let config = FinderConfig::default();
        let mono_finder = ExpertFinder::with_corpus(&mono_ds, mono_corpus, &config);
        let sharded_finder = ExpertFinder::with_corpus(&sh_ds, sh_corpus, &config);
        for need in ds.queries() {
            let a = mono_finder.rank(need);
            let b = sharded_finder.rank(need);
            assert_eq!(a.len(), b.len(), "{n} shards, query {:?}", need.text);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.person, y.person, "{n} shards, query {:?}", need.text);
                assert_eq!(
                    x.score.to_bits(),
                    y.score.to_bits(),
                    "{n} shards, query {:?}: {} vs {}",
                    need.text,
                    x.score,
                    y.score
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn sharded_save_is_deterministic() {
    let a = save_tiny_sharded("determinism-a", 3);
    let b = save_tiny_sharded("determinism-b", 3);
    assert_eq!(
        std::fs::read(manifest_path(&a)).unwrap(),
        std::fs::read(manifest_path(&b)).unwrap(),
        "manifests differ between identical saves"
    );
    for i in 0..3 {
        assert_eq!(
            std::fs::read(shard_path(&a, i)).unwrap(),
            std::fs::read(shard_path(&b, i)).unwrap(),
            "shard {i} differs between identical saves"
        );
    }
    std::fs::remove_dir_all(&a).ok();
    std::fs::remove_dir_all(&b).ok();
}

#[test]
fn narrower_resave_removes_stale_shards() {
    let dir = save_tiny_sharded("stale", 5);
    let (ds, corpus) = testkit::tiny();
    save_sharded(&dir, ds, corpus, 2, 1).unwrap();
    assert!(shard_path(&dir, 1).is_file());
    assert!(!shard_path(&dir, 2).is_file(), "stale shard 2 survived a narrower re-save");
    assert!(!shard_path(&dir, 4).is_file(), "stale shard 4 survived a narrower re-save");
    let (_, loaded, stats) = load_sharded(&dir, 1).expect("load after re-save");
    assert_eq!(stats.shard_count, 2);
    assert_eq!(loaded.retained(), corpus.retained());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_shard_file_is_shard_missing() {
    let dir = save_tiny_sharded("missing", 3);
    std::fs::remove_file(shard_path(&dir, 1)).unwrap();
    match load_sharded(&dir, 2) {
        Err(StoreError::ShardMissing { index: 1 }) => {}
        other => panic!("expected ShardMissing {{ index: 1 }}, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn damaged_shard_payload_is_shard_checksum_mismatch() {
    let dir = save_tiny_sharded("crc", 3);
    let path = shard_path(&dir, 2);
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip one payload bit past the envelope header; the manifest digest
    // must catch it in the single whole-file pass.
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    match load_sharded(&dir, 2) {
        Err(StoreError::ShardChecksumMismatch { index: 2 }) => {}
        other => panic!("expected ShardChecksumMismatch {{ index: 2 }}, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn swapped_shard_files_are_shard_checksum_mismatch() {
    let dir = save_tiny_sharded("swap", 3);
    let a = std::fs::read(shard_path(&dir, 0)).unwrap();
    let b = std::fs::read(shard_path(&dir, 1)).unwrap();
    std::fs::write(shard_path(&dir, 0), &b).unwrap();
    std::fs::write(shard_path(&dir, 1), &a).unwrap();
    // Each file is internally consistent, but not the file the manifest
    // digested at that position.
    match load_sharded(&dir, 1) {
        Err(StoreError::ShardChecksumMismatch { index: 0 }) => {}
        other => panic!("expected ShardChecksumMismatch {{ index: 0 }}, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_shard_is_truncated() {
    let dir = save_tiny_sharded("shard-trunc", 3);
    let path = shard_path(&dir, 0);
    let bytes = std::fs::read(&path).unwrap();
    for cut in [10, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        match load_sharded(&dir, 1) {
            Err(StoreError::Truncated) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_envelope_version_flip_is_version_mismatch() {
    let dir = save_tiny_sharded("shard-version", 2);
    let path = shard_path(&dir, 0);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8] ^= 0x02; // envelope version word, right after the magic
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(load_sharded(&dir, 1), Err(StoreError::VersionMismatch { .. })));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_magic_flip_is_bad_magic() {
    let dir = save_tiny_sharded("shard-magic", 2);
    let path = shard_path(&dir, 1);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(load_sharded(&dir, 1), Err(StoreError::BadMagic)));
    // A monolithic snapshot dropped in place of a shard is also BadMagic.
    let (ds, corpus) = testkit::tiny();
    std::fs::write(&path, to_bytes(ds, corpus)).unwrap();
    assert!(matches!(load_sharded(&dir, 1), Err(StoreError::BadMagic)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_format_version_skew_is_version_mismatch() {
    let dir = save_tiny_sharded("skew", 2);
    // The shard_format_version is the first u32 of the shard_table
    // payload; bump it and re-sign so only the version check can object.
    tamper_shard_table(&dir, |table| {
        table[0..4].copy_from_slice(&99u32.to_le_bytes());
    });
    match load_sharded(&dir, 1) {
        // `expected` reports the newest supported revision (the mapped
        // format), whatever the layout on disk.
        Err(StoreError::VersionMismatch { found: 99, expected: 2 }) => {}
        other => panic!("expected VersionMismatch 99 vs 2, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gapped_term_ranges_are_corrupt() {
    let dir = save_tiny_sharded("gap", 3);
    tamper_shard_table(&dir, |table| {
        // Push shard 1's term_lo one past shard 0's term_hi.
        let at = entry_term_lo(1);
        let lo = u32::from_le_bytes(table[at..at + 4].try_into().unwrap());
        table[at..at + 4].copy_from_slice(&(lo + 1).to_le_bytes());
    });
    match load_sharded(&dir, 1) {
        Err(StoreError::Corrupt(msg)) => assert!(msg.contains("gap"), "{msg}"),
        other => panic!("expected Corrupt(gap), got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn overlapping_term_ranges_are_corrupt() {
    let dir = save_tiny_sharded("overlap", 3);
    tamper_shard_table(&dir, |table| {
        // Pull shard 1's term_lo one below shard 0's term_hi.
        let at = entry_term_lo(1);
        let lo = u32::from_le_bytes(table[at..at + 4].try_into().unwrap());
        assert!(lo > 0, "tiny corpus should give shard 0 a non-empty range");
        table[at..at + 4].copy_from_slice(&(lo - 1).to_le_bytes());
    });
    match load_sharded(&dir, 1) {
        Err(StoreError::Corrupt(msg)) => {
            assert!(msg.contains("overlap"), "{msg}");
        }
        other => panic!("expected Corrupt(overlap), got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicate_shard_entries_are_corrupt() {
    let dir = save_tiny_sharded("duplicate", 3);
    tamper_shard_table(&dir, |table| {
        // Overwrite entry 1 with a copy of entry 0 — a duplicated range.
        let (e0, e1) = (entry_term_lo(0), entry_term_lo(1));
        let entry0: Vec<u8> = table[e0..e0 + ENTRY_LEN].to_vec();
        table[e1..e1 + ENTRY_LEN].copy_from_slice(&entry0);
    });
    match load_sharded(&dir, 1) {
        Err(StoreError::Corrupt(msg)) => {
            assert!(msg.contains("duplicates or overlaps"), "{msg}");
        }
        other => panic!("expected Corrupt(duplicate), got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_manifest_is_truncated() {
    let dir = save_tiny_sharded("mani-trunc", 2);
    let path = manifest_path(&dir);
    let bytes = std::fs::read(&path).unwrap();
    for cut in [0, 10, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        match load_sharded(&dir, 1) {
            Err(StoreError::Truncated) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn monolithic_file_as_manifest_is_bad_magic() {
    let dir = save_tiny_sharded("mani-magic", 2);
    let (ds, corpus) = testkit::tiny();
    std::fs::write(manifest_path(&dir), to_bytes(ds, corpus)).unwrap();
    assert!(matches!(load_sharded(&dir, 1), Err(StoreError::BadMagic)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn load_stats_account_for_every_byte_on_disk() {
    let dir = save_tiny_sharded("stats", 4);
    let (_, _, stats) = load_sharded(&dir, 2).expect("load");
    let mut on_disk = std::fs::metadata(manifest_path(&dir)).unwrap().len();
    for i in 0..4 {
        on_disk += std::fs::metadata(shard_path(&dir, i)).unwrap().len();
    }
    assert_eq!(stats.bytes, on_disk);
    assert_eq!(stats.manifest_bytes, std::fs::metadata(manifest_path(&dir)).unwrap().len());
    std::fs::remove_dir_all(&dir).ok();
}
