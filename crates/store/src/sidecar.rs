//! Validity sidecars (`.rcv`): the receipt that lets a snapshot open
//! skip its streamed checksum pass.
//!
//! The first open of a shard (or manifest) file pays the full streamed
//! CRC-64 verification, then writes a tiny sidecar next to the file
//! recording what was verified: the file's length, its mtime, its
//! whole-file digest and the format revision. A later open `stat(2)`s
//! the file, compares length + mtime against the sidecar, and — crucially
//! — compares the sidecar's digest against an *independently trusted*
//! expectation (the manifest's shard-table entry for shard files; the
//! manifest's own trailing digest bytes for the manifest). A sidecar can
//! therefore only ever *waive the streamed re-verification of bytes that
//! some earlier open fully checked*; a forged or stale sidecar merely
//! forces the slow path or a typed error, never a silently-trusted map.
//!
//! Format (`RCSIDE01`, fixed 56 bytes, little-endian):
//!
//! ```text
//! offset  size  field
//!      0     8  magic "RCSIDE01"
//!      8     4  sidecar revision (1)
//!     12     4  attested file's format revision (shard format 1 or 2)
//!     16     8  attested file length in bytes
//!     24     8  attested file mtime, seconds since epoch (i64)
//!     32     4  attested file mtime, nanoseconds
//!     36     4  reserved (0)
//!     40     8  attested whole-file CRC-64 digest
//!     48     8  CRC-64 of bytes 0..48
//! ```

use crate::crc::crc64;
use crate::err::StoreError;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::UNIX_EPOCH;

const MAGIC: &[u8; 8] = b"RCSIDE01";
const REV: u32 = 1;
/// Encoded sidecar size.
pub const SIDECAR_LEN: usize = 56;
/// Sidecar file extension (appended to the attested file's full name).
pub const SIDECAR_EXT: &str = "rcv";

/// One decoded validity sidecar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sidecar {
    /// Format revision of the attested file (shard format 1 or 2).
    pub format_rev: u32,
    /// Attested file length in bytes.
    pub file_len: u64,
    /// Attested file mtime as `(seconds, nanoseconds)` since the epoch.
    pub mtime: (i64, u32),
    /// Attested whole-file CRC-64 digest (== the file's trailing 8 bytes
    /// under the container convention).
    pub digest: u64,
}

/// `<file>.rcv` next to the attested file.
pub fn sidecar_path(file: &Path) -> PathBuf {
    let mut name = file.file_name().unwrap_or_default().to_os_string();
    name.push(".");
    name.push(SIDECAR_EXT);
    file.with_file_name(name)
}

/// `(len, mtime)` of `path`, in sidecar representation.
pub fn stat_file(path: &Path) -> io::Result<(u64, (i64, u32))> {
    let meta = fs::metadata(path)?;
    let mtime = match meta.modified()?.duration_since(UNIX_EPOCH) {
        Ok(d) => (d.as_secs() as i64, d.subsec_nanos()),
        // Pre-epoch mtimes round toward negative seconds.
        Err(e) => {
            let d = e.duration();
            (-(d.as_secs() as i64) - i64::from(d.subsec_nanos() > 0), 0)
        }
    };
    Ok((meta.len(), mtime))
}

impl Sidecar {
    /// A sidecar attesting `path` as it exists right now, with the given
    /// already-verified digest.
    pub fn for_file(path: &Path, format_rev: u32, digest: u64) -> io::Result<Sidecar> {
        let (file_len, mtime) = stat_file(path)?;
        Ok(Sidecar { format_rev, file_len, mtime, digest })
    }

    /// Serialises to the fixed 56-byte wire form.
    pub fn encode(&self) -> [u8; SIDECAR_LEN] {
        let mut out = [0u8; SIDECAR_LEN];
        out[0..8].copy_from_slice(MAGIC);
        out[8..12].copy_from_slice(&REV.to_le_bytes());
        out[12..16].copy_from_slice(&self.format_rev.to_le_bytes());
        out[16..24].copy_from_slice(&self.file_len.to_le_bytes());
        out[24..32].copy_from_slice(&self.mtime.0.to_le_bytes());
        out[32..36].copy_from_slice(&self.mtime.1.to_le_bytes());
        out[40..48].copy_from_slice(&self.digest.to_le_bytes());
        let crc = crc64(&out[..48]);
        out[48..56].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes and structurally validates a sidecar.
    pub fn decode(bytes: &[u8]) -> Result<Sidecar, StoreError> {
        if bytes.len() != SIDECAR_LEN {
            return Err(StoreError::Truncated);
        }
        if &bytes[0..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let u32le = |a: usize| u32::from_le_bytes(bytes[a..a + 4].try_into().expect("4 bytes"));
        let u64le = |a: usize| u64::from_le_bytes(bytes[a..a + 8].try_into().expect("8 bytes"));
        let rev = u32le(8);
        if rev != REV {
            return Err(StoreError::VersionMismatch { found: rev, expected: REV });
        }
        if crc64(&bytes[..48]) != u64le(48) {
            return Err(StoreError::ChecksumMismatch { section: "sidecar" });
        }
        Ok(Sidecar {
            format_rev: u32le(12),
            file_len: u64le(16),
            mtime: (i64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes")), u32le(32)),
            digest: u64le(40),
        })
    }

    /// Whether this sidecar still attests `path`: same length, same
    /// mtime, expected format revision, and — the trust anchor — the
    /// digest the *caller* expects (from the manifest's shard table or
    /// the manifest's own trailer), not whatever the sidecar claims.
    pub fn attests(&self, path: &Path, format_rev: u32, expected_digest: u64) -> bool {
        if self.format_rev != format_rev || self.digest != expected_digest {
            return false;
        }
        matches!(stat_file(path), Ok((len, mtime)) if len == self.file_len && mtime == self.mtime)
    }
}

/// Reads and decodes `<file>.rcv`; any miss (absent, short, corrupt,
/// wrong revision) comes back as an error so callers fall to the slow
/// verified path.
pub fn read_sidecar(file: &Path) -> Result<Sidecar, StoreError> {
    let bytes = fs::read(sidecar_path(file))?;
    Sidecar::decode(&bytes)
}

/// Writes `<file>.rcv`. Failures are reported but safe to ignore: the
/// sidecar is purely an acceleration, never a correctness requirement.
pub fn write_sidecar(file: &Path, sc: &Sidecar) -> io::Result<()> {
    fs::write(sidecar_path(file), sc.encode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, bytes: &[u8]) -> PathBuf {
        let p = std::env::temp_dir().join(format!("rc-sidecar-{}-{name}", std::process::id()));
        let mut f = fs::File::create(&p).unwrap();
        f.write_all(bytes).unwrap();
        p
    }

    #[test]
    fn round_trips_and_attests() {
        let p = tmp("rt", b"some shard bytes");
        let sc = Sidecar::for_file(&p, 2, 0xDEAD_BEEF).unwrap();
        write_sidecar(&p, &sc).unwrap();
        let back = read_sidecar(&p).unwrap();
        assert_eq!(back, sc);
        assert!(back.attests(&p, 2, 0xDEAD_BEEF));
        // Wrong expectations never attest.
        assert!(!back.attests(&p, 1, 0xDEAD_BEEF), "format rev mismatch");
        assert!(!back.attests(&p, 2, 0xDEAD_BEF0), "digest mismatch");
        fs::remove_file(sidecar_path(&p)).unwrap();
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn stale_after_rewrite_or_resize() {
        let p = tmp("stale", b"original");
        let sc = Sidecar::for_file(&p, 2, 7).unwrap();
        // Same length, different mtime.
        let later = UNIX_EPOCH + std::time::Duration::from_secs(86_400);
        fs::File::options().append(true).open(&p).unwrap().set_modified(later).unwrap();
        assert!(!sc.attests(&p, 2, 7), "mtime change must invalidate");
        // Different length.
        fs::write(&p, b"original plus growth").unwrap();
        assert!(!sc.attests(&p, 2, 7), "length change must invalidate");
        // Missing file.
        fs::remove_file(&p).unwrap();
        assert!(!sc.attests(&p, 2, 7));
    }

    #[test]
    fn decode_rejects_malformed() {
        let good = Sidecar { format_rev: 2, file_len: 9, mtime: (1234, 5), digest: 42 }.encode();
        assert!(matches!(Sidecar::decode(&good[..40]), Err(StoreError::Truncated)));
        let mut bad = good;
        bad[0] = b'X';
        assert!(matches!(Sidecar::decode(&bad), Err(StoreError::BadMagic)));
        let mut bad = good;
        bad[8] = 99;
        assert!(matches!(
            Sidecar::decode(&bad),
            Err(StoreError::VersionMismatch { found: 99, expected: 1 })
        ));
        let mut bad = good;
        bad[20] ^= 1; // flip a payload bit without fixing the crc
        assert!(matches!(
            Sidecar::decode(&bad),
            Err(StoreError::ChecksumMismatch { section: "sidecar" })
        ));
    }

    #[test]
    fn sidecar_path_appends_extension() {
        assert_eq!(
            sidecar_path(Path::new("/x/shard-000.rcshard")),
            Path::new("/x/shard-000.rcshard.rcv")
        );
        assert_eq!(sidecar_path(Path::new("manifest.rcm")), Path::new("manifest.rcm.rcv"));
    }
}
