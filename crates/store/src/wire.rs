//! Little-endian wire primitives.
//!
//! Writers append to a `Vec<u8>`; readers are a bounds-checked [`Cursor`]
//! over one section payload. Two rules keep hostile input harmless:
//!
//! 1. Reading past the slice is [`StoreError::Truncated`] — but inside a
//!    section whose checksum already verified, a length that overruns the
//!    payload means the *writer* lied, so collection headers are checked
//!    against the remaining bytes and overruns are
//!    [`StoreError::Corrupt`].
//! 2. No allocation trusts a declared length: capacities are capped by
//!    the bytes actually present, so a forged 2⁶⁰-element header cannot
//!    OOM the loader.
//!
//! Floats travel as IEEE-754 bit patterns (`to_bits`/`from_bits`), which
//! makes serialisation bit-exact and re-saves byte-identical.

use crate::err::StoreError;

// ----- writing ----------------------------------------------------------

/// Appends one byte.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a `u32`, little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `usize` as `u64`.
pub fn put_len(buf: &mut Vec<u8>, v: usize) {
    put_u64(buf, v as u64);
}

/// Appends an `f64` as its IEEE-754 bit pattern.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_len(buf, s.len());
    buf.extend_from_slice(s.as_bytes());
}

/// Appends an optional `u32` as a presence tag plus value.
pub fn put_opt_u32(buf: &mut Vec<u8>, v: Option<u32>) {
    match v {
        Some(x) => {
            put_u8(buf, 1);
            put_u32(buf, x);
        }
        None => put_u8(buf, 0),
    }
}

/// Appends a `u32` slice as a length-prefixed array.
pub fn put_u32s(buf: &mut Vec<u8>, vs: &[u32]) {
    put_len(buf, vs.len());
    for &v in vs {
        put_u32(buf, v);
    }
}

/// Appends a length-prefixed raw byte blob.
pub fn put_blob(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_len(buf, bytes.len());
    buf.extend_from_slice(bytes);
}

// ----- reading ----------------------------------------------------------

/// A bounds-checked reader over one section payload.
#[derive(Debug)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if n > self.remaining() {
            return Err(StoreError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a scalar `usize` written by [`put_len`] (a count that is NOT
    /// a collection header — census numbers, config knobs). No capacity
    /// check applies; overflow of the platform's `usize` is corruption.
    pub fn usize(&mut self) -> Result<usize, StoreError> {
        let raw = self.u64()?;
        usize::try_from(raw)
            .map_err(|_| StoreError::Corrupt(format!("value {raw} overflows usize")))
    }

    /// Reads a `u64` length written by [`put_len`] and validates that
    /// `len · elem_size` elements can still be present in this payload.
    /// An overrun is writer dishonesty, not a short file: [`StoreError::Corrupt`].
    pub fn len(&mut self, elem_size: usize) -> Result<usize, StoreError> {
        let raw = self.u64()?;
        let len = usize::try_from(raw)
            .map_err(|_| StoreError::Corrupt(format!("collection length {raw} overflows usize")))?;
        let need = len.checked_mul(elem_size.max(1)).ok_or_else(|| {
            StoreError::Corrupt(format!("collection length {len} overflows the payload"))
        })?;
        if need > self.remaining() {
            return Err(StoreError::Corrupt(format!(
                "collection claims {len} elements ({need} bytes) but only {} bytes remain",
                self.remaining()
            )));
        }
        Ok(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, StoreError> {
        let len = self.len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt("string is not valid UTF-8".into()))
    }

    /// Reads an optional `u32` written by [`put_opt_u32`].
    pub fn opt_u32(&mut self) -> Result<Option<u32>, StoreError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            tag => Err(StoreError::Corrupt(format!("invalid option tag {tag}"))),
        }
    }

    /// Reads a length-prefixed `u32` array.
    pub fn u32s(&mut self) -> Result<Vec<u32>, StoreError> {
        let len = self.len(4)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `u64` array.
    pub fn u64s(&mut self) -> Result<Vec<u64>, StoreError> {
        let len = self.len(8)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed raw byte blob written by [`put_blob`].
    pub fn blob(&mut self) -> Result<Vec<u8>, StoreError> {
        let len = self.len(1)?;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed `f64` array.
    pub fn f64s(&mut self) -> Result<Vec<f64>, StoreError> {
        let len = self.len(8)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(&self, section: &str) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(StoreError::Corrupt(format!(
                "section `{section}` has {} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -0.0);
        put_str(&mut buf, "snapshot ✓");
        put_opt_u32(&mut buf, Some(42));
        put_opt_u32(&mut buf, None);
        put_u32s(&mut buf, &[1, 2, 3]);
        put_blob(&mut buf, &[0xAA, 0, 0xBB]);

        let mut c = Cursor::new(&buf);
        assert_eq!(c.u8().unwrap(), 7);
        assert_eq!(c.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.u64().unwrap(), u64::MAX - 1);
        // -0.0 survives bit-exactly (a plain == would accept +0.0).
        assert_eq!(c.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(c.str().unwrap(), "snapshot ✓");
        assert_eq!(c.opt_u32().unwrap(), Some(42));
        assert_eq!(c.opt_u32().unwrap(), None);
        assert_eq!(c.u32s().unwrap(), vec![1, 2, 3]);
        assert_eq!(c.blob().unwrap(), vec![0xAA, 0, 0xBB]);
        c.finish("test").unwrap();
    }

    #[test]
    fn short_reads_are_truncated() {
        let mut c = Cursor::new(&[1, 2]);
        assert!(matches!(c.u32(), Err(StoreError::Truncated)));
    }

    #[test]
    fn forged_lengths_are_corrupt_not_oom() {
        // A u64 length far beyond the payload must fail fast without
        // allocating.
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX / 2);
        let mut c = Cursor::new(&buf);
        assert!(matches!(c.u32s(), Err(StoreError::Corrupt(_))));

        let mut buf = Vec::new();
        put_u64(&mut buf, 10); // claims 10 strings but provides none
        let mut c = Cursor::new(&buf);
        assert!(matches!(c.len(4), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn invalid_utf8_and_tags_are_corrupt() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(Cursor::new(&buf).str(), Err(StoreError::Corrupt(_))));

        let buf = [9u8];
        assert!(matches!(Cursor::new(&buf).opt_u32(), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_detected() {
        let c = Cursor::new(&[0, 0]);
        assert!(matches!(c.finish("x"), Err(StoreError::Corrupt(_))));
    }
}
