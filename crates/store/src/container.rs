//! The container envelope: magic, version, section table, checksums.
//!
//! The same envelope carries three file kinds, distinguished only by
//! their 8-byte magic: monolithic snapshots (`RCSNAP01`), sharded-snapshot
//! manifests (`RCMANI01`), and postings shards (`RCSHRD01`). There is one
//! streaming decoder, [`read_container_with`]; the magic and the
//! [`Integrity`] policy are its only parameters.
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!      0     8  magic  (e.g. "RCSNAP01")
//!      8     4  format version   (u32 LE)
//!     12     4  feature flags    (u32 LE, any bit outside KNOWN_FLAGS
//!                                 refuses the file — see [`FLAG_PACKED_SECTIONS`],
//!                                 [`FLAG_BLOCK_POSTINGS`])
//!     16     4  section count    (u32 LE)
//!     20     8  header crc64     (over bytes [0, 20))
//!     28   20·n  section table:  n × { kind u32, len u64, crc64 u64 }
//!   28+20n    8  table crc64     (over the table bytes)
//!      ...   …  payloads, concatenated in table order
//!     end−8   8  file crc64      (over every preceding byte)
//! ```
//!
//! Under [`FLAG_PACKED_SECTIONS`] every section payload carries a one-byte
//! packing tag (raw or LZ-compressed; see [`crate::pack`]). Section CRCs,
//! the layout table, and the whole-file CRC always cover the **on-disk**
//! (wrapped) bytes; unwrapping happens only after the entire envelope has
//! verified.
//!
//! Validation order is part of the format contract — each class of damage
//! maps to exactly one [`StoreError`]:
//!
//! 1. any short read                      → `Truncated`
//! 2. magic                               → `BadMagic`
//! 3. version (checked *before* the header checksum, so an old/new file
//!    reports `VersionMismatch` rather than a checksum failure)
//! 4. flags                               → `UnsupportedFlags`
//! 5. header crc                          → `ChecksumMismatch{"header"}`
//! 6. table crc                           → `ChecksumMismatch{"table"}`
//! 7. each payload crc, in table order    → `ChecksumMismatch{<section>}`
//! 8. whole-file crc                      → `ChecksumMismatch{"file"}`
//!
//! Under [`Integrity::External`] step 7 is skipped: the caller already
//! holds the file's whole-file digest from a trusted manifest, so one
//! streaming CRC pass (step 8, cross-checked against the external digest)
//! covers every payload byte. That halves the checksum work per byte —
//! the main reason a sharded load outruns a monolithic one even on a
//! single core.
//!
//! Only after the envelope fully verifies does decoding start; structural
//! problems found then are `Corrupt`.

use crate::crc::{crc64, Crc64};
use crate::err::StoreError;
use std::io::Read;

/// The 8-byte magic every snapshot starts with.
pub const MAGIC: [u8; 8] = *b"RCSNAP01";

/// The format revision this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Header flag: every section payload is wrapped with a packing tag
/// (raw or LZ-compressed — [`crate::pack`]).
pub const FLAG_PACKED_SECTIONS: u32 = 1;

/// Header flag: postings travel as block-compressed sections
/// ([`kind::TERM_BLOCKS`] / [`kind::ENTITY_BLOCKS`]) instead of the
/// legacy CSR sections ([`kind::TERM_INDEX`] / [`kind::ENTITY_INDEX`]).
pub const FLAG_BLOCK_POSTINGS: u32 = 2;

/// Every flag bit this build understands; any other set bit means the
/// file needs a newer reader ([`StoreError::UnsupportedFlags`]).
pub const KNOWN_FLAGS: u32 = FLAG_PACKED_SECTIONS | FLAG_BLOCK_POSTINGS;

/// Fixed header size: magic + version + flags + count + header crc.
pub const HEADER_LEN: usize = 28;

/// Bytes per section-table entry: kind + len + crc.
pub const TABLE_ENTRY_LEN: usize = 20;

/// Upper bound on the section count a reader will accept; the format
/// defines 7, the headroom is for future minor revisions. Anything larger
/// is a forged header.
const MAX_SECTIONS: usize = 64;

/// Payloads are read in bounded chunks so a forged length cannot force a
/// multi-gigabyte allocation before EOF is discovered.
const READ_CHUNK: usize = 1 << 20;

/// One decoded section: its kind tag and verified payload.
#[derive(Debug)]
pub struct Section {
    /// The section's kind tag (see [`kind`]).
    pub kind: u32,
    /// The checksum-verified payload.
    pub payload: Vec<u8>,
}

/// Section kind tags. Values are part of the on-disk format; never
/// renumber.
pub mod kind {
    /// Dataset config, fingerprints, node census.
    pub const META: u32 = 1;
    /// Social-graph nodes and adjacency.
    pub const GRAPH: u32 = 2;
    /// Synthetic web pages.
    pub const WEB: u32 = 3;
    /// Latent expertise, questionnaire answers, personas.
    pub const TRUTH: u32 = 4;
    /// Retained-document table and per-document lengths.
    pub const CORPUS: u32 = 5;
    /// Term-side CSR postings.
    pub const TERM_INDEX: u32 = 6;
    /// Entity-side CSR postings.
    pub const ENTITY_INDEX: u32 = 7;
    /// Sharded-snapshot manifest: shard ranges, byte lengths, digests.
    pub const SHARD_TABLE: u32 = 8;
    /// Per-shard identity: index, count, declared id ranges.
    pub const SHARD_META: u32 = 9;
    /// Term-side block-compressed postings (delta + bit-packed blocks).
    pub const TERM_BLOCKS: u32 = 10;
    /// Entity-side block-compressed postings.
    pub const ENTITY_BLOCKS: u32 = 11;
    /// Raw per-document term lengths (mapped-layout manifests only):
    /// warm opens read this tiny section instead of unpacking `CORPUS`.
    pub const DOC_LENS: u32 = 12;
}

/// Section kinds whose payloads are worth running through the byte
/// compressor under [`FLAG_PACKED_SECTIONS`]: the synthetic-study
/// sections (text-heavy, highly redundant). Postings sections are
/// already bit-packed and shard tables are tiny, so they are wrapped
/// raw.
const fn compress_candidate(kind_tag: u32) -> bool {
    matches!(kind_tag, kind::META | kind::GRAPH | kind::WEB | kind::TRUTH | kind::CORPUS)
}

/// The section order a version-1 snapshot must use.
pub const SECTION_ORDER: [u32; 7] = [
    kind::META,
    kind::GRAPH,
    kind::WEB,
    kind::TRUTH,
    kind::CORPUS,
    kind::TERM_INDEX,
    kind::ENTITY_INDEX,
];

/// The section order of a [`FLAG_BLOCK_POSTINGS`] snapshot: identical,
/// with the CSR posting sections replaced by their block-compressed
/// counterparts.
pub const SECTION_ORDER_BLOCKS: [u32; 7] = [
    kind::META,
    kind::GRAPH,
    kind::WEB,
    kind::TRUTH,
    kind::CORPUS,
    kind::TERM_BLOCKS,
    kind::ENTITY_BLOCKS,
];

/// The human name of a section kind (used in error messages and
/// [`SectionInfo`]).
pub const fn section_name(kind_tag: u32) -> &'static str {
    match kind_tag {
        kind::META => "meta",
        kind::GRAPH => "graph",
        kind::WEB => "web",
        kind::TRUTH => "truth",
        kind::CORPUS => "corpus",
        kind::TERM_INDEX => "term_index",
        kind::ENTITY_INDEX => "entity_index",
        kind::SHARD_TABLE => "shard_table",
        kind::SHARD_META => "shard_meta",
        kind::TERM_BLOCKS => "term_blocks",
        kind::ENTITY_BLOCKS => "entity_blocks",
        kind::DOC_LENS => "doc_lens",
        _ => "unknown",
    }
}

// ----- writing ----------------------------------------------------------

/// Assembles the complete container from encoded section payloads, under
/// the monolithic-snapshot magic (legacy layout, flags = 0).
pub fn assemble(sections: &[Section]) -> Vec<u8> {
    assemble_with(&MAGIC, sections)
}

/// Assembles the complete container under an arbitrary magic (legacy
/// layout, flags = 0). Every file kind (snapshot, manifest, shard) is
/// written fully self-contained — per-section CRCs included — regardless
/// of how it will be read back.
pub fn assemble_with(magic: &[u8; 8], sections: &[Section]) -> Vec<u8> {
    assemble_flags(magic, sections, 0)
}

/// [`assemble_with`] with explicit feature flags. Under
/// [`FLAG_PACKED_SECTIONS`] each payload is wrapped with its packing tag
/// here (compressing the study sections when that wins), so callers
/// always hand over plain encoded payloads.
pub fn assemble_flags(magic: &[u8; 8], sections: &[Section], flags: u32) -> Vec<u8> {
    debug_assert_eq!(flags & !KNOWN_FLAGS, 0, "writer uses only known flags");
    let wrapped: Vec<Section>;
    let sections = if flags & FLAG_PACKED_SECTIONS != 0 {
        wrapped = sections
            .iter()
            .map(|s| {
                let payload = if compress_candidate(s.kind) {
                    crate::pack::wrap(&s.payload)
                } else {
                    let mut raw = Vec::with_capacity(1 + s.payload.len());
                    raw.push(crate::pack::TAG_RAW);
                    raw.extend_from_slice(&s.payload);
                    raw
                };
                Section { kind: s.kind, payload }
            })
            .collect();
        &wrapped[..]
    } else {
        sections
    };

    let payload_total: usize = sections.iter().map(|s| s.payload.len()).sum();
    let mut out = Vec::with_capacity(
        HEADER_LEN + sections.len() * TABLE_ENTRY_LEN + 8 + payload_total + 8,
    );

    out.extend_from_slice(magic);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    let header_crc = crc64(&out);
    out.extend_from_slice(&header_crc.to_le_bytes());

    let table_start = out.len();
    for s in sections {
        out.extend_from_slice(&s.kind.to_le_bytes());
        out.extend_from_slice(&(s.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc64(&s.payload).to_le_bytes());
    }
    let table_crc = crc64(&out[table_start..]);
    out.extend_from_slice(&table_crc.to_le_bytes());

    for s in sections {
        out.extend_from_slice(&s.payload);
    }

    let file_crc = crc64(&out);
    out.extend_from_slice(&file_crc.to_le_bytes());
    out
}

// ----- reading ----------------------------------------------------------

/// Wraps a reader, feeding every byte read into the whole-file digest.
struct HashingReader<R: Read> {
    inner: R,
    digest: Crc64,
    bytes_read: u64,
}

impl<R: Read> HashingReader<R> {
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), StoreError> {
        self.inner.read_exact(buf)?; // UnexpectedEof → Truncated via From
        self.digest.update(buf);
        self.bytes_read += buf.len() as u64;
        Ok(())
    }
}

/// How payload bytes are verified while streaming a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Integrity {
    /// Verify each per-section CRC *and* the trailing whole-file CRC — two
    /// digest passes over every payload byte. The mode for files read
    /// without outside knowledge (monolithic snapshots, manifests).
    SelfContained,
    /// The caller already knows the file's whole-file CRC-64 from a
    /// trusted source (the manifest's shard table). Per-section CRCs are
    /// skipped; the single streamed digest must match both the file's own
    /// trailer and `digest`, or the read fails with
    /// `ChecksumMismatch{"file"}`. One pass per byte instead of two.
    External {
        /// The expected whole-file CRC-64/XZ.
        digest: u64,
    },
}

/// Streams and fully verifies a monolithic snapshot container, returning
/// its sections in table order, the total byte count, and the header
/// feature flags.
pub fn read_container<R: Read>(reader: R) -> Result<(Vec<Section>, u64, u32), StoreError> {
    read_container_with(reader, &MAGIC, Integrity::SelfContained)
}

/// The one streaming container decoder: chunked reads, fixed
/// detection-order error mapping, and the [`Integrity`] policy above.
/// Monolithic snapshots, manifests, and shards all come through here.
/// Returned payloads are already unwrapped when the file sets
/// [`FLAG_PACKED_SECTIONS`]; the caller switches decoding on
/// [`FLAG_BLOCK_POSTINGS`].
pub fn read_container_with<R: Read>(
    reader: R,
    magic: &[u8; 8],
    integrity: Integrity,
) -> Result<(Vec<Section>, u64, u32), StoreError> {
    let mut r = HashingReader { inner: reader, digest: Crc64::new(), bytes_read: 0 };

    // Header: validate magic → version → flags → checksum, in that order.
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    if header[0..8] != *magic {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(StoreError::VersionMismatch { found: version, expected: FORMAT_VERSION });
    }
    let flags = u32::from_le_bytes(header[12..16].try_into().unwrap());
    if flags & !KNOWN_FLAGS != 0 {
        return Err(StoreError::UnsupportedFlags { flags });
    }
    let count = u32::from_le_bytes(header[16..20].try_into().unwrap()) as usize;
    let header_crc = u64::from_le_bytes(header[20..28].try_into().unwrap());
    if crc64(&header[..20]) != header_crc {
        return Err(StoreError::ChecksumMismatch { section: "header" });
    }
    if count > MAX_SECTIONS {
        return Err(StoreError::Corrupt(format!("section count {count} exceeds the format limit")));
    }

    // Section table + its checksum.
    let mut table = vec![0u8; count * TABLE_ENTRY_LEN];
    r.read_exact(&mut table)?;
    let mut crc_buf = [0u8; 8];
    r.read_exact(&mut crc_buf)?;
    if crc64(&table) != u64::from_le_bytes(crc_buf) {
        return Err(StoreError::ChecksumMismatch { section: "table" });
    }
    let mut entries = Vec::with_capacity(count);
    for chunk in table.chunks_exact(TABLE_ENTRY_LEN) {
        let kind_tag = u32::from_le_bytes(chunk[0..4].try_into().unwrap());
        let len = u64::from_le_bytes(chunk[4..12].try_into().unwrap());
        let crc = u64::from_le_bytes(chunk[12..20].try_into().unwrap());
        entries.push((kind_tag, len, crc));
    }

    // Payloads, verified section by section. Chunked reads keep a forged
    // length from allocating ahead of the bytes that actually exist.
    let mut sections = Vec::with_capacity(count);
    for (kind_tag, len, expected_crc) in entries {
        let len = usize::try_from(len)
            .map_err(|_| StoreError::Corrupt(format!("section length {len} overflows usize")))?;
        let mut payload = Vec::with_capacity(len.min(READ_CHUNK));
        while payload.len() < len {
            let take = (len - payload.len()).min(READ_CHUNK);
            let start = payload.len();
            payload.resize(start + take, 0);
            r.read_exact(&mut payload[start..])?;
        }
        if integrity == Integrity::SelfContained && crc64(&payload) != expected_crc {
            return Err(StoreError::ChecksumMismatch { section: section_name(kind_tag) });
        }
        sections.push(Section { kind: kind_tag, payload });
    }

    // Whole-file checksum: digest of everything streamed so far must match
    // the trailing 8 bytes (which are read outside the digest) — and, in
    // external mode, the digest the caller's manifest recorded.
    let computed = r.digest.finish();
    let mut trailer = [0u8; 8];
    r.inner.read_exact(&mut trailer).map_err(StoreError::from)?;
    r.bytes_read += 8;
    if computed != u64::from_le_bytes(trailer) {
        return Err(StoreError::ChecksumMismatch { section: "file" });
    }
    if let Integrity::External { digest } = integrity {
        if computed != digest {
            return Err(StoreError::ChecksumMismatch { section: "file" });
        }
    }
    // Anything after the trailer is not ours.
    let mut probe = [0u8; 1];
    match r.inner.read(&mut probe) {
        Ok(0) => {}
        Ok(_) => return Err(StoreError::Corrupt("trailing bytes after the file checksum".into())),
        Err(e) => return Err(StoreError::Io(e)),
    }

    // Only now — every checksum verified — unwrap packed payloads.
    if flags & FLAG_PACKED_SECTIONS != 0 {
        for s in &mut sections {
            s.payload = crate::pack::unwrap(section_name(s.kind), &s.payload)?;
        }
    }

    Ok((sections, r.bytes_read, flags))
}

// ----- layout introspection ---------------------------------------------

/// One named byte range of a snapshot, as reported by [`layout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionInfo {
    /// Region name: `"header"`, `"table"`, a section name, or `"file_crc"`.
    pub name: &'static str,
    /// Section kind tag (0 for envelope regions).
    pub kind: u32,
    /// First byte of the region.
    pub offset: usize,
    /// Region length in bytes.
    pub len: usize,
}

/// Maps a serialised snapshot into its named byte regions (envelope
/// included) without decoding payloads. The fault-injection suite uses
/// this to aim bit-flips and truncations at every region; `rc load`
/// failures can use it to point at the damaged range.
pub fn layout(bytes: &[u8]) -> Result<Vec<SectionInfo>, StoreError> {
    layout_with(bytes, &MAGIC)
}

/// [`layout`] under an arbitrary magic, so manifest and shard files can be
/// mapped (and fault-injected) the same way as monolithic snapshots.
pub fn layout_with(bytes: &[u8], magic: &[u8; 8]) -> Result<Vec<SectionInfo>, StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Truncated);
    }
    if bytes[0..8] != *magic {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(StoreError::VersionMismatch { found: version, expected: FORMAT_VERSION });
    }
    let count = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    if count > MAX_SECTIONS {
        return Err(StoreError::Corrupt(format!("section count {count} exceeds the format limit")));
    }

    let mut infos = vec![SectionInfo { name: "header", kind: 0, offset: 0, len: HEADER_LEN }];
    let table_len = count * TABLE_ENTRY_LEN + 8;
    if bytes.len() < HEADER_LEN + table_len {
        return Err(StoreError::Truncated);
    }
    infos.push(SectionInfo { name: "table", kind: 0, offset: HEADER_LEN, len: table_len });

    let mut offset = HEADER_LEN + table_len;
    for i in 0..count {
        let entry = HEADER_LEN + i * TABLE_ENTRY_LEN;
        let kind_tag = u32::from_le_bytes(bytes[entry..entry + 4].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[entry + 4..entry + 12].try_into().unwrap());
        let len = usize::try_from(len)
            .map_err(|_| StoreError::Corrupt(format!("section length {len} overflows usize")))?;
        if bytes.len() < offset + len {
            return Err(StoreError::Truncated);
        }
        infos.push(SectionInfo { name: section_name(kind_tag), kind: kind_tag, offset, len });
        offset += len;
    }
    if bytes.len() < offset + 8 {
        return Err(StoreError::Truncated);
    }
    infos.push(SectionInfo { name: "file_crc", kind: 0, offset, len: 8 });
    Ok(infos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_sections() -> Vec<u8> {
        assemble(&[
            Section { kind: kind::META, payload: vec![1, 2, 3] },
            Section { kind: kind::GRAPH, payload: vec![4; 100] },
        ])
    }

    #[test]
    fn roundtrip() {
        let bytes = two_sections();
        let (sections, n, flags) = read_container(&bytes[..]).unwrap();
        assert_eq!(n, bytes.len() as u64);
        assert_eq!(flags, 0);
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].kind, kind::META);
        assert_eq!(sections[0].payload, vec![1, 2, 3]);
        assert_eq!(sections[1].payload.len(), 100);
    }

    #[test]
    fn packed_sections_roundtrip_and_shrink() {
        // A redundant payload compresses; an already-dense one rides raw.
        let redundant = b"social graph social graph social graph ".repeat(100);
        let dense: Vec<u8> = (0..255u32).map(|i| (i.wrapping_mul(2654435761) >> 23) as u8).collect();
        let sections = [
            Section { kind: kind::GRAPH, payload: redundant.clone() },
            Section { kind: kind::SHARD_TABLE, payload: dense.clone() },
        ];
        let legacy = assemble_with(&MAGIC, &sections);
        let packed = assemble_flags(&MAGIC, &sections, FLAG_PACKED_SECTIONS);
        assert!(packed.len() < legacy.len(), "{} vs {}", packed.len(), legacy.len());

        let (got, n, flags) = read_container(&packed[..]).unwrap();
        assert_eq!(n, packed.len() as u64);
        assert_eq!(flags, FLAG_PACKED_SECTIONS);
        assert_eq!(got[0].payload, redundant);
        assert_eq!(got[1].payload, dense);

        // On-disk, the non-candidate section is tag-RAW (1 byte overhead).
        let infos = layout(&packed).unwrap();
        let st = infos.iter().find(|i| i.name == "shard_table").unwrap();
        assert_eq!(st.len, dense.len() + 1);
        assert_eq!(packed[st.offset], crate::pack::TAG_RAW);
    }

    #[test]
    fn packed_assembly_is_deterministic() {
        let sections = [Section { kind: kind::WEB, payload: b"page page page page".repeat(50) }];
        assert_eq!(
            assemble_flags(&MAGIC, &sections, KNOWN_FLAGS),
            assemble_flags(&MAGIC, &sections, KNOWN_FLAGS)
        );
    }

    #[test]
    fn layout_covers_every_byte_exactly_once() {
        let bytes = two_sections();
        let infos = layout(&bytes).unwrap();
        let mut cursor = 0usize;
        for info in &infos {
            assert_eq!(info.offset, cursor, "gap before {}", info.name);
            cursor += info.len;
        }
        assert_eq!(cursor, bytes.len());
        let names: Vec<_> = infos.iter().map(|i| i.name).collect();
        assert_eq!(names, vec!["header", "table", "meta", "graph", "file_crc"]);
    }

    #[test]
    fn wrong_magic() {
        let mut bytes = two_sections();
        bytes[0] = b'X';
        assert!(matches!(read_container(&bytes[..]), Err(StoreError::BadMagic)));
    }

    #[test]
    fn wrong_version_reports_both_numbers() {
        let mut bytes = two_sections();
        bytes[8] = 99;
        match read_container(&bytes[..]) {
            Err(StoreError::VersionMismatch { found, expected }) => {
                assert_eq!(found, 99);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn unknown_flags_refused() {
        let mut bytes = two_sections();
        bytes[12] = 0x80; // a bit no revision of this build defines
        // Unknown-flag damage is detected before the header checksum:
        // flags are a compatibility statement, not just payload bytes.
        assert!(matches!(
            read_container(&bytes[..]),
            Err(StoreError::UnsupportedFlags { flags: 0x80 })
        ));
    }

    #[test]
    fn known_flag_flip_fails_header_checksum() {
        // Flipping a *defined* flag bit passes the compatibility gate and
        // is then caught as header damage by the CRC.
        let mut bytes = two_sections();
        bytes[12] |= FLAG_PACKED_SECTIONS as u8;
        assert!(matches!(
            read_container(&bytes[..]),
            Err(StoreError::ChecksumMismatch { section: "header" })
        ));
    }

    #[test]
    fn forged_packing_tag_is_corrupt_after_consistent_rewrite() {
        // Structural damage below the checksums: rewrite a packed
        // section's tag byte and re-sign every CRC. The envelope then
        // verifies, and the unwrapper must still refuse the payload.
        let sections = [Section { kind: kind::META, payload: vec![5; 40] }];
        let mut bytes = assemble_flags(&MAGIC, &sections, FLAG_PACKED_SECTIONS);
        let infos = layout(&bytes).unwrap();
        let meta = infos.iter().find(|i| i.name == "meta").unwrap();
        bytes[meta.offset] = 9; // unknown packing tag
        // Re-sign: section crc in the table, table crc, file crc.
        let payload_crc = crc64(&bytes[meta.offset..meta.offset + meta.len]);
        let entry = HEADER_LEN; // first table entry
        bytes[entry + 12..entry + 20].copy_from_slice(&payload_crc.to_le_bytes());
        let table = infos.iter().find(|i| i.name == "table").unwrap();
        let table_crc = crc64(&bytes[table.offset..table.offset + table.len - 8]);
        let crc_at = table.offset + table.len - 8;
        bytes[crc_at..crc_at + 8].copy_from_slice(&table_crc.to_le_bytes());
        let file_crc = crc64(&bytes[..bytes.len() - 8]);
        let at = bytes.len() - 8;
        bytes[at..].copy_from_slice(&file_crc.to_le_bytes());

        match read_container(&bytes[..]) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("packing tag"), "{msg}"),
            other => panic!("expected Corrupt(packing tag), got {other:?}"),
        }
    }

    #[test]
    fn header_count_flip_fails_header_checksum() {
        let mut bytes = two_sections();
        bytes[16] ^= 1; // section count is covered by the header crc
        assert!(matches!(
            read_container(&bytes[..]),
            Err(StoreError::ChecksumMismatch { section: "header" })
        ));
    }

    #[test]
    fn every_truncation_point_is_truncated() {
        let bytes = two_sections();
        for cut in 0..bytes.len() {
            match read_container(&bytes[..cut]) {
                Err(StoreError::Truncated) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_garbage_is_corrupt() {
        let mut bytes = two_sections();
        bytes.push(0);
        assert!(matches!(read_container(&bytes[..]), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn empty_input_is_truncated() {
        assert!(matches!(read_container(&[][..]), Err(StoreError::Truncated)));
        assert!(matches!(layout(&[]), Err(StoreError::Truncated)));
    }

    #[test]
    fn external_digest_mode_roundtrips_and_detects_damage() {
        let magic = b"RCTEST01";
        let bytes = assemble_with(magic, &[Section { kind: kind::META, payload: vec![9; 50] }]);
        let digest = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        let (sections, n, _) =
            read_container_with(&bytes[..], magic, Integrity::External { digest }).unwrap();
        assert_eq!(n, bytes.len() as u64);
        assert_eq!(sections[0].payload, vec![9; 50]);

        // An internally consistent file that is not the one the caller's
        // manifest promised still fails the whole-file check.
        assert!(matches!(
            read_container_with(&bytes[..], magic, Integrity::External { digest: digest ^ 1 }),
            Err(StoreError::ChecksumMismatch { section: "file" })
        ));

        // Payload damage in external mode is caught by the single
        // whole-file pass instead of the per-section pass.
        let infos = layout_with(&bytes, magic).unwrap();
        let meta = infos.iter().find(|i| i.name == "meta").unwrap();
        let mut damaged = bytes.clone();
        damaged[meta.offset] ^= 0xFF;
        assert!(matches!(
            read_container_with(&damaged[..], magic, Integrity::External { digest }),
            Err(StoreError::ChecksumMismatch { section: "file" })
        ));

        // The monolithic-snapshot reader refuses the foreign magic.
        assert!(matches!(read_container(&bytes[..]), Err(StoreError::BadMagic)));
    }
}
