//! Section-payload packing: a dependency-free LZ77 byte compressor and
//! the per-section wrapping used when a container sets
//! `FLAG_PACKED_SECTIONS`.
//!
//! # Wrapper format
//!
//! Each wrapped section payload starts with one tag byte:
//!
//! ```text
//! tag 0:  raw          — the remaining bytes are the payload verbatim
//! tag 1:  compressed   — u64 LE uncompressed length, then an LZ stream
//! ```
//!
//! The writer compresses a section only when the wrapped compressed form
//! is strictly smaller than the wrapped raw form, so packing never grows
//! a container. Section CRCs and the layout table always cover the
//! *on-disk* (wrapped) bytes; unwrapping happens after every checksum has
//! verified, and any malformation past that point is writer dishonesty —
//! [`StoreError::Corrupt`], never a panic or an over-allocation.
//!
//! # Stream format
//!
//! Classic LZSS over a 32 KiB window: groups of eight items share a flag
//! byte (bit `i` set → item `i` is a back-reference). A literal is one
//! byte; a back-reference is a little-endian `u16` distance (1-based)
//! plus one byte encoding `length − 4` (match lengths 4..=259). The
//! greedy hash-chain matcher is fully deterministic, which keeps
//! re-saves byte-identical.

use crate::err::StoreError;

const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = MIN_MATCH + 255;
/// Longest hash chain walked per position: bounds worst-case compression
/// cost on repetitive input while finding long matches in practice.
const MAX_CHAIN: usize = 32;

const HASH_BITS: u32 = 15;

/// Section-payload packing tags (first byte of a wrapped payload).
pub const TAG_RAW: u8 = 0;
/// See [`TAG_RAW`].
pub const TAG_LZ: u8 = 1;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input` into a self-delimiting LZ stream (decompression
/// additionally needs the uncompressed length). Deterministic.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    // head[h]: most recent position with hash h; prev[i & (WINDOW-1)]:
    // previous position in i's chain. usize::MAX = no entry.
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; WINDOW];

    let mut flags_at = usize::MAX;
    let mut flag_bit = 8u32;
    let mut push_item = |out: &mut Vec<u8>, is_match: bool| {
        if flag_bit == 8 {
            flags_at = out.len();
            out.push(0);
            flag_bit = 0;
        }
        if is_match {
            out[flags_at] |= 1 << flag_bit;
        }
        flag_bit += 1;
    };

    let mut i = 0usize;
    let insert = |head: &mut [usize], prev: &mut [usize], at: usize, input: &[u8]| {
        if at + MIN_MATCH <= input.len() {
            let h = hash4(&input[at..]);
            prev[at & (WINDOW - 1)] = head[h];
            head[h] = at;
        }
    };
    while i < input.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash4(&input[i..]);
            let mut cand = head[h];
            let limit = (input.len() - i).min(MAX_MATCH);
            let mut chain = 0;
            while cand != usize::MAX && i - cand <= WINDOW && chain < MAX_CHAIN {
                let mut len = 0usize;
                while len < limit && input[cand + len] == input[i + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = i - cand;
                    if len == limit {
                        break;
                    }
                }
                let next = prev[cand & (WINDOW - 1)];
                // Chain entries only get older; stop on wraparound reuse.
                if next >= cand {
                    break;
                }
                cand = next;
                chain += 1;
            }
        }
        if best_len >= MIN_MATCH {
            push_item(&mut out, true);
            out.extend_from_slice(&(best_dist as u16).to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            for _ in 0..best_len {
                insert(&mut head, &mut prev, i, input);
                i += 1;
            }
        } else {
            push_item(&mut out, false);
            out.push(input[i]);
            insert(&mut head, &mut prev, i, input);
            i += 1;
        }
    }
    out
}

/// Decompresses a [`compress`] stream that must expand to exactly
/// `expected_len` bytes. Fully bounds-checked: output grows as it is
/// produced (a forged length cannot pre-allocate), distances must point
/// inside the produced output, and both early exhaustion and trailing
/// input are errors.
pub fn decompress(stream: &[u8], expected_len: usize) -> Result<Vec<u8>, String> {
    let mut out = Vec::with_capacity(expected_len.min(1 << 20));
    let mut pos = 0usize;
    while out.len() < expected_len {
        let flags = *stream.get(pos).ok_or("compressed stream ends inside a flag byte")?;
        pos += 1;
        for bit in 0..8 {
            if out.len() == expected_len {
                break;
            }
            if flags & (1 << bit) != 0 {
                let enc = stream
                    .get(pos..pos + 3)
                    .ok_or("compressed stream ends inside a back-reference")?;
                pos += 3;
                let dist = u16::from_le_bytes([enc[0], enc[1]]) as usize;
                let len = enc[2] as usize + MIN_MATCH;
                if dist == 0 || dist > out.len() {
                    return Err(format!(
                        "back-reference distance {dist} outside the {} bytes produced",
                        out.len()
                    ));
                }
                if out.len() + len > expected_len {
                    return Err("compressed stream overruns the declared length".into());
                }
                let start = out.len() - dist;
                // Overlapping copies are the RLE case; byte-by-byte is the
                // defined semantics.
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            } else {
                let b = *stream.get(pos).ok_or("compressed stream ends inside a literal")?;
                pos += 1;
                if out.len() == expected_len {
                    return Err("compressed stream overruns the declared length".into());
                }
                out.push(b);
            }
        }
    }
    if pos != stream.len() {
        return Err(format!("compressed stream has {} trailing bytes", stream.len() - pos));
    }
    Ok(out)
}

/// Wraps a section payload for a `FLAG_PACKED_SECTIONS` container,
/// choosing whichever of raw/compressed is smaller on disk.
pub fn wrap(payload: &[u8]) -> Vec<u8> {
    let compressed = compress(payload);
    if 1 + 8 + compressed.len() < 1 + payload.len() {
        let mut out = Vec::with_capacity(9 + compressed.len());
        out.push(TAG_LZ);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&compressed);
        out
    } else {
        let mut out = Vec::with_capacity(1 + payload.len());
        out.push(TAG_RAW);
        out.extend_from_slice(payload);
        out
    }
}

/// Unwraps a `FLAG_PACKED_SECTIONS` section payload. Called only after
/// every container checksum verified, so malformations are
/// [`StoreError::Corrupt`].
pub fn unwrap(section: &str, wrapped: &[u8]) -> Result<Vec<u8>, StoreError> {
    let corrupt = |msg: String| StoreError::Corrupt(format!("section `{section}`: {msg}"));
    match wrapped.first() {
        Some(&TAG_RAW) => Ok(wrapped[1..].to_vec()),
        Some(&TAG_LZ) => {
            let header = wrapped
                .get(1..9)
                .ok_or_else(|| corrupt("packed payload ends inside its length header".into()))?;
            let raw_len = u64::from_le_bytes(header.try_into().expect("8-byte header"));
            let raw_len = usize::try_from(raw_len)
                .map_err(|_| corrupt(format!("uncompressed length {raw_len} overflows usize")))?;
            decompress(&wrapped[9..], raw_len).map_err(corrupt)
        }
        Some(&tag) => Err(corrupt(format!("unknown packing tag {tag}"))),
        None => Err(corrupt("packed payload is empty (missing packing tag)".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c, data.len()).expect("roundtrip");
        assert_eq!(d, data);
    }

    #[test]
    fn roundtrips_various_shapes() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abcabcabcabcabcabcabcabc");
        roundtrip(&vec![0u8; 100_000]);
        let mut mixed = Vec::new();
        let mut x = 1u32;
        for i in 0..50_000u32 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            mixed.push(if i % 7 < 4 { (x >> 24) as u8 } else { b'z' });
        }
        roundtrip(&mixed);
    }

    #[test]
    fn compresses_redundant_text() {
        let text = "the quick brown fox jumps over the lazy dog. ".repeat(200);
        let c = compress(text.as_bytes());
        assert!(c.len() * 4 < text.len(), "{} vs {}", c.len(), text.len());
    }

    #[test]
    fn compression_is_deterministic() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 31 % 251) as u8).collect();
        assert_eq!(compress(&data), compress(&data));
    }

    #[test]
    fn forged_streams_are_rejected_without_oom() {
        // Truncated literal.
        assert!(decompress(&[0x00], 3).is_err());
        // Truncated flag byte.
        assert!(decompress(&[], 1).is_err());
        // Back-reference before the start of output.
        assert!(decompress(&[0x02, b'a', 9, 0, 0], 6).is_err());
        // Stream shorter than the declared (potentially huge) length:
        // fails fast, no allocation of `expected_len`.
        assert!(decompress(&[0x00, b'a', b'b', b'c', b'd', b'e', b'f', b'g', b'h'], usize::MAX / 2).is_err());
        // Trailing garbage after the declared length.
        assert!(decompress(&[0x00, b'a', b'b', b'c', b'd', b'e', b'f', b'g', b'h', 0xFF], 8).is_err());
    }

    #[test]
    fn wrap_picks_the_smaller_form_and_unwraps() {
        let redundant = b"abcdabcdabcdabcdabcdabcdabcdabcdabcdabcd".repeat(20);
        let wrapped = wrap(&redundant);
        assert_eq!(wrapped[0], TAG_LZ);
        assert!(wrapped.len() < redundant.len());
        assert_eq!(unwrap("test", &wrapped).unwrap(), redundant);

        let incompressible: Vec<u8> = (0..64u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
            .collect();
        let wrapped = wrap(&incompressible);
        assert_eq!(wrapped[0], TAG_RAW);
        assert_eq!(wrapped.len(), incompressible.len() + 1);
        assert_eq!(unwrap("test", &wrapped).unwrap(), incompressible);
    }

    #[test]
    fn unwrap_rejects_malformed_wrappers() {
        assert!(matches!(unwrap("s", &[]), Err(StoreError::Corrupt(_))));
        assert!(matches!(unwrap("s", &[9, 1, 2]), Err(StoreError::Corrupt(_))));
        assert!(matches!(unwrap("s", &[TAG_LZ, 1, 2]), Err(StoreError::Corrupt(_))));
        // Declared length disagreeing with the stream.
        let mut bad = vec![TAG_LZ];
        bad.extend_from_slice(&100u64.to_le_bytes());
        bad.extend_from_slice(&compress(b"abc"));
        assert!(matches!(unwrap("s", &bad), Err(StoreError::Corrupt(_))));
    }
}
