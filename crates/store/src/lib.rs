//! # rightcrowd-store
//!
//! Versioned on-disk snapshots of the built corpus + CSR index — the
//! *build once, query many* half of the serving story (DESIGN.md §10).
//!
//! A snapshot holds everything `EvalContext` needs to answer queries
//! without re-running the synthesis + analysis pipeline: the social
//! graph, the synthetic web, the ground-truth inputs, the
//! retained-document table, and the interned postings (block-compressed
//! by default, flat CSR in the legacy flags-0 layout) with their
//! precomputed `irf`/`eirf` and MaxScore bounds. Compiled-in constants
//! (knowledge base, query workload) are *not* stored; they are
//! regenerated at load and verified against fingerprints, so a snapshot
//! can never be silently interpreted against the wrong vocabulary.
//!
//! The container is hand-rolled (this crate has zero dependencies beyond
//! the workspace), little-endian, and fully checksummed — magic, format
//! version, feature flags, a section table, one CRC-64 per section, and a
//! whole-file CRC. Loading streams, verifies, and reconstructs with
//! pre-sized allocations; on any damage it returns a typed
//! [`StoreError`] — never a panic — whose variant names exactly what went
//! wrong (see `container` for the detection-order contract).
//!
//! ```no_run
//! # use rightcrowd_synth::{DatasetConfig, SyntheticDataset};
//! # use rightcrowd_core::AnalyzedCorpus;
//! let ds = SyntheticDataset::generate(&DatasetConfig::small());
//! let corpus = AnalyzedCorpus::build(&ds);
//! rightcrowd_store::save("corpus.rcs", &ds, &corpus).unwrap();
//! // …later, in another process:
//! let (ds, corpus, stats) = rightcrowd_store::load("corpus.rcs").unwrap();
//! assert!(stats.bytes > 0);
//! ```

pub mod codec;
pub mod container;
pub mod crc;
pub mod err;
pub mod mapped;
pub mod mmap;
pub mod pack;
pub mod shard;
pub mod sidecar;
pub mod wire;

pub use codec::Census;
pub use container::{
    layout, layout_with, section_name, Integrity, SectionInfo, FLAG_BLOCK_POSTINGS,
    FLAG_PACKED_SECTIONS, FORMAT_VERSION, KNOWN_FLAGS, MAGIC,
};
pub use crc::{crc64, Crc64};
pub use err::StoreError;
pub use mapped::{MAPPED_ALIGN, MAPPED_SHARD_MAGIC};
pub use shard::{
    is_mapped_snapshot, is_sharded, load_sharded, manifest_path, open_mapped, save_sharded,
    save_sharded_with, shard_path, MappedOpenStats, ShardEntry, ShardTable, ShardedLoadStats,
    ShardedSaveStats, SnapshotLayout, MANIFEST_FILE, MANIFEST_MAGIC, SHARD_FORMAT_VERSION,
    SHARD_FORMAT_VERSION_MAPPED, SHARD_MAGIC,
};
pub use sidecar::{read_sidecar, sidecar_path, write_sidecar, Sidecar};

use container::{kind, Section, SECTION_ORDER, SECTION_ORDER_BLOCKS};
use rightcrowd_core::AnalyzedCorpus;
use rightcrowd_graph::DocId;
use rightcrowd_index::InvertedIndex;
use rightcrowd_synth::{queries::workload, SyntheticDataset};
use std::io::Read;
use std::path::Path;
use std::time::Instant;

/// What [`save`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaveStats {
    /// Total container size written, in bytes.
    pub bytes: u64,
    /// Wall time of encode + write, milliseconds.
    pub elapsed_ms: f64,
}

/// What [`load`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadStats {
    /// Total container size read and verified, in bytes.
    pub bytes: u64,
    /// Wall time of read + verify + reconstruct, milliseconds.
    pub elapsed_ms: f64,
}

/// Serialises a built study into a complete snapshot container.
///
/// Deterministic: the same `(ds, corpus)` always produces the same bytes
/// (vocabularies travel in dense-id order, floats as bit patterns, and no
/// timestamp enters the container), so saving a loaded snapshot again is
/// byte-identical.
pub fn to_bytes(ds: &SyntheticDataset, corpus: &AnalyzedCorpus) -> Vec<u8> {
    let _span = rightcrowd_obs::span!("store.encode");
    let parts = corpus.index().to_parts();
    let mut sections = study_sections(ds, corpus, &parts.doc_lens);

    // Default layout: block-compressed postings plus packed (byte-compressed)
    // study sections, declared by the header flags. Under `blocks-off` the
    // index holds no packed lists, so the legacy flat-CSR flags-0 layout is
    // written instead — which is also exactly what old readers expect.
    #[cfg(not(feature = "blocks-off"))]
    {
        // A mapped index keeps its packed lists per shard, not in the
        // flat `packed_postings()` store (which is empty there) — for a
        // monolithic save they are regenerated from the canonical parts.
        let regenerated;
        let (packed_terms, packed_entities) = if corpus.index().is_mapped() {
            regenerated = (
                rightcrowd_index::pack_term_parts(&parts.terms),
                rightcrowd_index::pack_entity_parts(&parts.entities),
            );
            (&regenerated.0, &regenerated.1)
        } else {
            corpus.index().packed_postings()
        };
        sections.push(Section {
            kind: kind::TERM_BLOCKS,
            payload: codec::encode_term_blocks(&parts.terms.vocab, &parts.terms.irf, packed_terms),
        });
        sections.push(Section {
            kind: kind::ENTITY_BLOCKS,
            payload: codec::encode_entity_blocks(
                &parts.entities.vocab,
                &parts.entities.eirf,
                packed_entities,
            ),
        });
        container::assemble_flags(
            &MAGIC,
            &sections,
            container::FLAG_PACKED_SECTIONS | container::FLAG_BLOCK_POSTINGS,
        )
    }
    #[cfg(feature = "blocks-off")]
    {
        sections.push(Section { kind: kind::TERM_INDEX, payload: codec::encode_term_index(&parts.terms) });
        sections.push(Section {
            kind: kind::ENTITY_INDEX,
            payload: codec::encode_entity_index(&parts.entities),
        });
        container::assemble(&sections)
    }
}

/// Serialises the legacy flags-0 layout — flat CSR postings, no section
/// packing — regardless of feature configuration. Every build reads both
/// layouts; this writer exists as a downgrade path and anchors the
/// compatibility suite (a "pre-blocks snapshot" can always be
/// manufactured and must always load).
pub fn to_bytes_legacy(ds: &SyntheticDataset, corpus: &AnalyzedCorpus) -> Vec<u8> {
    let parts = corpus.index().to_parts();
    let mut sections = study_sections(ds, corpus, &parts.doc_lens);
    sections.push(Section { kind: kind::TERM_INDEX, payload: codec::encode_term_index(&parts.terms) });
    sections.push(Section {
        kind: kind::ENTITY_INDEX,
        payload: codec::encode_entity_index(&parts.entities),
    });
    container::assemble(&sections)
}

/// Encodes the five non-index sections every container kind shares —
/// `meta`, `graph`, `web`, `truth`, `corpus` — in format order. Monolithic
/// snapshots append the two index sections; sharded manifests append the
/// shard table instead.
pub(crate) fn study_sections(
    ds: &SyntheticDataset,
    corpus: &AnalyzedCorpus,
    doc_lens: &[u32],
) -> Vec<Section> {
    let (persons, profiles, resources, containers) = ds.graph().counts();
    let census = Census {
        persons,
        profiles,
        resources,
        containers,
        pages: ds.web().len(),
        retained: corpus.retained(),
    };
    vec![
        Section {
            kind: kind::META,
            payload: codec::encode_meta(ds.config(), ds.kb(), ds.queries(), census),
        },
        Section { kind: kind::GRAPH, payload: codec::encode_graph(ds.graph()) },
        Section { kind: kind::WEB, payload: codec::encode_web(ds.web()) },
        Section {
            kind: kind::TRUTH,
            payload: codec::encode_truth(ds.latent(), ds.ground_truth().answers(), ds.personas()),
        },
        Section {
            kind: kind::CORPUS,
            payload: codec::encode_corpus(corpus.doc_ids(), corpus.dropped_non_english(), doc_lens),
        },
    ]
}

/// Decodes the five shared study sections (in the order produced by
/// [`study_sections`]), regenerating and fingerprint-checking the
/// compiled-in constants, and replays the dataset. Returns the dataset
/// plus the corpus ingredients that still await an index.
pub(crate) fn decode_study(
    payloads: [&[u8]; 5],
) -> Result<(SyntheticDataset, Vec<DocId>, usize, Vec<u32>), StoreError> {
    let [meta, graph, web, truth, corpus] = payloads;

    // Regenerate the compiled-in constants the fingerprints verify against.
    let kb = rightcrowd_kb::seed::standard();
    let queries = workload();

    let (config, census) = codec::decode_meta(meta, &kb, &queries)?;
    let graph = codec::decode_graph(graph, census)?;
    let web = codec::decode_web(web, census)?;
    let (latent, answers, personas) = codec::decode_truth(truth, census, queries.len())?;
    let (docs, dropped, doc_lens) = codec::decode_corpus(corpus, census)?;
    let ds = SyntheticDataset::from_parts(config, graph, web, latent, answers, personas);
    Ok((ds, docs, dropped, doc_lens))
}

/// Streams, verifies and reconstructs a snapshot from any reader.
///
/// Returns the dataset, the corpus, and the verified byte count. All
/// failure modes are typed ([`StoreError`]); nothing in this path panics
/// on hostile input.
pub fn from_reader<R: Read>(reader: R) -> Result<(SyntheticDataset, AnalyzedCorpus, u64), StoreError> {
    let _span = rightcrowd_obs::span!("store.load");
    let _timer = rightcrowd_obs::time(rightcrowd_obs::HistId::SnapshotLoadLatency);

    let (sections, bytes, flags) = container::read_container(reader)?;

    // Version 1 fixes the section order for each flags combination;
    // anything else is a forged table. Both index layouts load regardless
    // of this build's write-side feature, so old flags-0 snapshots and new
    // block snapshots remain interchangeable.
    let blocked = flags & container::FLAG_BLOCK_POSTINGS != 0;
    let order = if blocked { &SECTION_ORDER_BLOCKS } else { &SECTION_ORDER };
    if sections.len() != order.len()
        || sections.iter().zip(order).any(|(s, &k)| s.kind != k)
    {
        return Err(StoreError::Corrupt(format!(
            "unexpected section layout {:?} (want {order:?})",
            sections.iter().map(|s| s.kind).collect::<Vec<_>>()
        )));
    }

    let (ds, docs, dropped, doc_lens) = decode_study([
        &sections[0].payload,
        &sections[1].payload,
        &sections[2].payload,
        &sections[3].payload,
        &sections[4].payload,
    ])?;
    let (terms, entities) = if blocked {
        (
            codec::decode_term_blocks(&sections[5].payload)?,
            codec::decode_entity_blocks(&sections[6].payload)?,
        )
    } else {
        (
            codec::decode_term_index(&sections[5].payload)?,
            codec::decode_entity_index(&sections[6].payload)?,
        )
    };

    let index = InvertedIndex::from_parts(codec::assemble_index_parts(terms, entities, doc_lens))
        .map_err(StoreError::Corrupt)?;
    let corpus = AnalyzedCorpus::from_parts(index, docs, dropped).map_err(StoreError::Corrupt)?;

    rightcrowd_obs::add(rightcrowd_obs::CounterId::SnapshotBytesRead, bytes);
    Ok((ds, corpus, bytes))
}

/// [`from_reader`] over an in-memory buffer.
pub fn from_bytes(bytes: &[u8]) -> Result<(SyntheticDataset, AnalyzedCorpus), StoreError> {
    let (ds, corpus, _) = from_reader(bytes)?;
    Ok((ds, corpus))
}

/// Writes a snapshot of `(ds, corpus)` to `path`.
pub fn save(
    path: impl AsRef<Path>,
    ds: &SyntheticDataset,
    corpus: &AnalyzedCorpus,
) -> Result<SaveStats, StoreError> {
    let _span = rightcrowd_obs::span!("store.save");
    let start = Instant::now();
    let bytes = to_bytes(ds, corpus);
    std::fs::write(path, &bytes).map_err(StoreError::Io)?;
    rightcrowd_obs::add(rightcrowd_obs::CounterId::SnapshotBytesWritten, bytes.len() as u64);
    Ok(SaveStats { bytes: bytes.len() as u64, elapsed_ms: start.elapsed().as_secs_f64() * 1e3 })
}

/// Reads, verifies and reconstructs a snapshot from `path`.
pub fn load(path: impl AsRef<Path>) -> Result<(SyntheticDataset, AnalyzedCorpus, LoadStats), StoreError> {
    let start = Instant::now();
    let file = std::fs::File::open(path).map_err(StoreError::Io)?;
    let (ds, corpus, bytes) = from_reader(std::io::BufReader::new(file))?;
    Ok((ds, corpus, LoadStats { bytes, elapsed_ms: start.elapsed().as_secs_f64() * 1e3 }))
}
