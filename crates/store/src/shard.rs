//! Sharded snapshots: a manifest plus N per-term-range postings shards.
//!
//! A sharded snapshot is a *directory*:
//!
//! ```text
//! <dir>/manifest.rcm       magic RCMANI01 — everything small: meta,
//!                          graph, web, truth, corpus table, and the
//!                          shard table (ranges, byte lengths, digests)
//! <dir>/shard-000.rcshard  magic RCSHRD01 — shard identity + the CSR
//! <dir>/shard-001.rcshard  term/entity postings of one contiguous
//! …                        dense-id range, offsets rebased to 0
//! ```
//!
//! Both file kinds reuse the envelope of `container` (same header, table,
//! checksum layout — only the magic differs) and the section codecs of
//! `codec` verbatim, so there is exactly one streaming decoder and one
//! set of payload formats to maintain.
//!
//! Why shards load faster, even on one core: the manifest records each
//! shard's trailing whole-file CRC-64, so [`load_sharded`] reads every
//! shard under [`Integrity::External`] — a *single* digest pass per
//! payload byte, checked simultaneously against the file's own trailer
//! and the manifest's promise — where the monolithic path digests every
//! byte twice (per-section CRC + whole-file CRC). With more cores,
//! shards additionally decode + verify concurrently on the workspace's
//! order-preserving `par_map` pool. Shard files are still written fully
//! self-contained (per-section CRCs included), so any one shard can be
//! inspected or verified on its own.
//!
//! The corruption contract extends the monolithic one: a promised shard
//! file that is absent is [`StoreError::ShardMissing`]; a shard whose
//! digest disagrees with the manifest is
//! [`StoreError::ShardChecksumMismatch`]; duplicate, overlapping or
//! gapped ranges in the shard table — and any disagreement between a
//! shard's recorded identity and the manifest entry that named it — are
//! [`StoreError::Corrupt`]; a `shard_format_version` this build does not
//! write is [`StoreError::VersionMismatch`]. Nothing in this path panics
//! on hostile input.

use crate::codec;
use crate::container::{
    kind, read_container_with, Integrity, Section, FLAG_BLOCK_POSTINGS,
};
#[cfg(not(feature = "blocks-off"))]
use crate::container::{assemble_flags, FLAG_PACKED_SECTIONS};
#[cfg(feature = "blocks-off")]
use crate::container::assemble_with;
use crate::err::StoreError;
use crate::sidecar::{write_sidecar, Sidecar};
use crate::wire::{put_len, put_u32, put_u64, Cursor};
use crate::{decode_study, study_sections};
use rightcrowd_core::par::par_map;
use rightcrowd_core::AnalyzedCorpus;
#[cfg(not(feature = "blocks-off"))]
use rightcrowd_index::{pack_entity_parts, pack_term_parts};
use rightcrowd_index::{IndexShard, InvertedIndex};
use rightcrowd_synth::SyntheticDataset;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The 8-byte magic of a sharded-snapshot manifest.
pub const MANIFEST_MAGIC: [u8; 8] = *b"RCMANI01";

/// The 8-byte magic of a postings shard.
pub const SHARD_MAGIC: [u8; 8] = *b"RCSHRD01";

/// Revision of the streamed shard *payload* format (shard table + shard
/// meta + sliced postings). Recorded in the manifest's shard table and
/// checked on load, independently of the envelope's `FORMAT_VERSION`.
pub const SHARD_FORMAT_VERSION: u32 = 1;

/// Revision of the mapped (`RCSHRD02`) shard format: fixed layout,
/// 64-byte-aligned payloads, zero-copy openable (see [`crate::mapped`]).
pub const SHARD_FORMAT_VERSION_MAPPED: u32 = 2;

/// The manifest's file name inside a sharded-snapshot directory.
pub const MANIFEST_FILE: &str = "manifest.rcm";

/// Upper bound on the shard count a reader will accept; anything larger
/// is a forged shard table.
const MAX_SHARDS: usize = 4096;

/// The section order a streamed-layout manifest must use.
pub const MANIFEST_SECTION_ORDER: [u32; 6] = [
    kind::META,
    kind::GRAPH,
    kind::WEB,
    kind::TRUTH,
    kind::CORPUS,
    kind::SHARD_TABLE,
];

/// The section order a mapped-layout manifest must use: the streamed one
/// plus a raw `doc_lens` section, so an index-only warm open never has
/// to unpack the corpus.
pub const MANIFEST_SECTION_ORDER_MAPPED: [u32; 7] = [
    kind::META,
    kind::GRAPH,
    kind::WEB,
    kind::TRUTH,
    kind::CORPUS,
    kind::DOC_LENS,
    kind::SHARD_TABLE,
];

/// The section order a version-1 flags-0 shard file must use.
pub const SHARD_SECTION_ORDER: [u32; 3] = [kind::SHARD_META, kind::TERM_INDEX, kind::ENTITY_INDEX];

/// The section order of a [`FLAG_BLOCK_POSTINGS`] shard file: identical,
/// with the CSR posting sections replaced by block-compressed ones.
pub const SHARD_SECTION_ORDER_BLOCKS: [u32; 3] =
    [kind::SHARD_META, kind::TERM_BLOCKS, kind::ENTITY_BLOCKS];

/// One row of the manifest's shard table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardEntry {
    /// Dense term-id range `[lo, hi)` the shard carries.
    pub term_range: (u32, u32),
    /// Dense entity-slot range `[lo, hi)` the shard carries.
    pub entity_range: (u32, u32),
    /// Exact shard file size in bytes.
    pub byte_len: u64,
    /// The shard file's trailing whole-file CRC-64/XZ — the external
    /// digest its load is verified against.
    pub digest: u64,
    /// Per-shard feature flags; reserved, must be 0.
    pub flags: u32,
}

/// The manifest's `shard_table` section, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTable {
    /// Shard payload format revision (see [`SHARD_FORMAT_VERSION`]).
    pub shard_format_version: u32,
    /// Total term vocabulary size the entries must tile.
    pub term_count: u64,
    /// Total entity vocabulary size the entries must tile.
    pub entity_count: u64,
    /// One row per shard, in shard order.
    pub entries: Vec<ShardEntry>,
}

/// What [`save_sharded`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedSaveStats {
    /// Total bytes written: manifest plus every shard.
    pub bytes: u64,
    /// Manifest file size in bytes.
    pub manifest_bytes: u64,
    /// Number of shard files written.
    pub shard_count: usize,
    /// Wall time of partition + encode + write, milliseconds.
    pub elapsed_ms: f64,
}

/// What [`load_sharded`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedLoadStats {
    /// Total bytes read and verified: manifest plus every shard.
    pub bytes: u64,
    /// Manifest file size in bytes.
    pub manifest_bytes: u64,
    /// Number of shard files loaded.
    pub shard_count: usize,
    /// Whether the shards were `RCSHRD02` files borrowed via `mmap(2)`
    /// (vs streamed + reconstructed).
    pub mapped: bool,
    /// The manifest's whole-file digest: a cheap identity fingerprint
    /// of the snapshot (it covers the shard table and thus every shard
    /// digest). Consumers like `/healthz` report it instead of hashing
    /// the corpus — which would page in every mapped byte on boot.
    pub manifest_digest: u64,
    /// Wall time of read + verify + splice + reconstruct, milliseconds.
    pub elapsed_ms: f64,
}

/// The manifest's path inside a sharded-snapshot directory.
pub fn manifest_path(dir: impl AsRef<Path>) -> PathBuf {
    dir.as_ref().join(MANIFEST_FILE)
}

/// The path of shard `index` inside a sharded-snapshot directory.
pub fn shard_path(dir: impl AsRef<Path>, index: u32) -> PathBuf {
    dir.as_ref().join(format!("shard-{index:03}.rcshard"))
}

/// Whether `path` is a sharded-snapshot directory (contains a manifest).
/// Monolithic snapshots are plain files, so this is the dispatch test for
/// `--snapshot` arguments that accept either layout.
pub fn is_sharded(path: impl AsRef<Path>) -> bool {
    manifest_path(path).is_file()
}

// ----- shard-table + shard-meta codecs ----------------------------------

/// Bytes per shard-table row: four range bounds + len + digest + flags.
const SHARD_ENTRY_LEN: usize = 4 * 4 + 8 + 8 + 4;

fn encode_shard_table(table: &ShardTable) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32 + table.entries.len() * SHARD_ENTRY_LEN);
    put_u32(&mut buf, table.shard_format_version);
    put_u64(&mut buf, table.term_count);
    put_u64(&mut buf, table.entity_count);
    put_len(&mut buf, table.entries.len());
    for e in &table.entries {
        put_u32(&mut buf, e.term_range.0);
        put_u32(&mut buf, e.term_range.1);
        put_u32(&mut buf, e.entity_range.0);
        put_u32(&mut buf, e.entity_range.1);
        put_u64(&mut buf, e.byte_len);
        put_u64(&mut buf, e.digest);
        put_u32(&mut buf, e.flags);
    }
    buf
}

/// Checks that `ranges` tile `[0, count)` exactly — ascending, no
/// duplicate, no overlap, no gap.
fn check_tiling(side: &str, ranges: impl Iterator<Item = (u32, u32)>, count: u64) -> Result<(), StoreError> {
    let mut expected = 0u32;
    for (i, (lo, hi)) in ranges.enumerate() {
        if hi < lo {
            return Err(StoreError::Corrupt(format!(
                "shard table: {side} range [{lo}, {hi}) of shard {i} is inverted"
            )));
        }
        if lo < expected {
            return Err(StoreError::Corrupt(format!(
                "shard table: {side} range [{lo}, {hi}) of shard {i} duplicates or overlaps the previous shard (expected lo {expected})"
            )));
        }
        if lo > expected {
            return Err(StoreError::Corrupt(format!(
                "shard table: gap in {side} ranges — ids [{expected}, {lo}) before shard {i} are covered by no shard"
            )));
        }
        expected = hi;
    }
    if u64::from(expected) != count {
        return Err(StoreError::Corrupt(format!(
            "shard table: {side} ranges end at {expected} but the vocabulary has {count} ids"
        )));
    }
    Ok(())
}

/// Decodes and fully validates the manifest's shard table: format
/// version, reserved flags, shard-count bounds, and exact tiling of both
/// vocabularies.
pub fn decode_shard_table(payload: &[u8]) -> Result<ShardTable, StoreError> {
    let mut c = Cursor::new(payload);
    let shard_format_version = c.u32()?;
    if shard_format_version != SHARD_FORMAT_VERSION
        && shard_format_version != SHARD_FORMAT_VERSION_MAPPED
    {
        return Err(StoreError::VersionMismatch {
            found: shard_format_version,
            expected: SHARD_FORMAT_VERSION_MAPPED,
        });
    }
    let term_count = c.u64()?;
    let entity_count = c.u64()?;
    let n = c.len(SHARD_ENTRY_LEN)?;
    if n == 0 {
        return Err(StoreError::Corrupt("shard table declares zero shards".into()));
    }
    if n > MAX_SHARDS {
        return Err(StoreError::Corrupt(format!(
            "shard table declares {n} shards, above the format limit {MAX_SHARDS}"
        )));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let entry = ShardEntry {
            term_range: (c.u32()?, c.u32()?),
            entity_range: (c.u32()?, c.u32()?),
            byte_len: c.u64()?,
            digest: c.u64()?,
            flags: c.u32()?,
        };
        if entry.flags != 0 {
            return Err(StoreError::UnsupportedFlags { flags: entry.flags });
        }
        entries.push(entry);
    }
    c.finish("shard_table")?;
    check_tiling("term", entries.iter().map(|e| e.term_range), term_count)?;
    check_tiling("entity", entries.iter().map(|e| e.entity_range), entity_count)?;
    Ok(ShardTable { shard_format_version, term_count, entity_count, entries })
}

pub(crate) fn encode_shard_meta(shard: &IndexShard, shard_count: usize) -> Vec<u8> {
    let mut buf = Vec::with_capacity(24);
    put_u32(&mut buf, shard.index);
    put_u32(&mut buf, shard_count as u32);
    put_u32(&mut buf, shard.term_range.0);
    put_u32(&mut buf, shard.term_range.1);
    put_u32(&mut buf, shard.entity_range.0);
    put_u32(&mut buf, shard.entity_range.1);
    buf
}

/// A shard file's recorded identity, cross-checked against the manifest
/// entry that named it.
pub(crate) struct ShardMeta {
    pub(crate) index: u32,
    pub(crate) shard_count: u32,
    pub(crate) term_range: (u32, u32),
    pub(crate) entity_range: (u32, u32),
}

pub(crate) fn decode_shard_meta(payload: &[u8]) -> Result<ShardMeta, StoreError> {
    let mut c = Cursor::new(payload);
    let index = c.u32()?;
    let shard_count = c.u32()?;
    let term_range = (c.u32()?, c.u32()?);
    let entity_range = (c.u32()?, c.u32()?);
    c.finish("shard_meta")?;
    Ok(ShardMeta { index, shard_count, term_range, entity_range })
}

// ----- saving -----------------------------------------------------------

/// Serialises one shard into a complete, self-contained `RCSHRD01` file.
///
/// The default layout carries block-compressed postings
/// ([`FLAG_BLOCK_POSTINGS`]) with *raw* section wrapping — shard payloads
/// are already bit-packed, and keeping them byte-addressable keeps the
/// fault-injection suite's consistent-rewrite attacks expressible. Under
/// `blocks-off` the legacy flags-0 CSR layout is written.
#[cfg(not(feature = "blocks-off"))]
fn encode_shard_file(shard: &IndexShard, shard_count: usize) -> Vec<u8> {
    let sections = [
        Section { kind: kind::SHARD_META, payload: encode_shard_meta(shard, shard_count) },
        Section {
            kind: kind::TERM_BLOCKS,
            payload: codec::encode_term_blocks(
                &shard.terms.vocab,
                &shard.terms.irf,
                &pack_term_parts(&shard.terms),
            ),
        },
        Section {
            kind: kind::ENTITY_BLOCKS,
            payload: codec::encode_entity_blocks(
                &shard.entities.vocab,
                &shard.entities.eirf,
                &pack_entity_parts(&shard.entities),
            ),
        },
    ];
    assemble_flags(&SHARD_MAGIC, &sections, FLAG_BLOCK_POSTINGS)
}

/// See the default-feature variant above.
#[cfg(feature = "blocks-off")]
fn encode_shard_file(shard: &IndexShard, shard_count: usize) -> Vec<u8> {
    let sections = [
        Section { kind: kind::SHARD_META, payload: encode_shard_meta(shard, shard_count) },
        Section { kind: kind::TERM_INDEX, payload: codec::encode_term_index(&shard.terms) },
        Section { kind: kind::ENTITY_INDEX, payload: codec::encode_entity_index(&shard.entities) },
    ];
    assemble_with(&SHARD_MAGIC, &sections)
}

/// The trailing whole-file CRC-64 of an assembled container.
pub(crate) fn trailing_digest(bytes: &[u8]) -> u64 {
    let tail: [u8; 8] = bytes[bytes.len() - 8..].try_into().expect("assembled container");
    u64::from_le_bytes(tail)
}

/// On-disk layout of a sharded snapshot's shard files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotLayout {
    /// `RCSHRD01`: streamed, self-contained shard files (the default).
    #[default]
    Streamed,
    /// `RCSHRD02`: fixed-layout, alignment-padded shard files that every
    /// `--snapshot` consumer opens zero-copy via `mmap(2)` (see
    /// [`crate::mapped`]).
    Mapped,
}

/// [`save_sharded_with`] in the default streamed layout.
pub fn save_sharded(
    dir: impl AsRef<Path>,
    ds: &SyntheticDataset,
    corpus: &AnalyzedCorpus,
    shards: usize,
    threads: usize,
) -> Result<ShardedSaveStats, StoreError> {
    save_sharded_with(dir, ds, corpus, shards, threads, SnapshotLayout::Streamed)
}

/// Writes a sharded snapshot of `(ds, corpus)` into directory `dir`:
/// `shards` per-term-range postings shards (encoded on up to `threads`
/// workers, capped at the machine's available parallelism) plus the
/// manifest. Deterministic for a given `(ds, corpus, shards, layout)`,
/// like the monolithic writer. Stale `*.rcshard` files (and their `.rcv`
/// sidecars) from an earlier, wider save are removed so the directory
/// always equals the manifest's promise.
///
/// Under [`SnapshotLayout::Mapped`] the shards are `RCSHRD02` files, the
/// manifest additionally carries the raw `doc_lens` section, and validity
/// sidecars are written for every file — the writer just computed each
/// digest, so the *first* open is already a warm one.
pub fn save_sharded_with(
    dir: impl AsRef<Path>,
    ds: &SyntheticDataset,
    corpus: &AnalyzedCorpus,
    shards: usize,
    threads: usize,
    layout: SnapshotLayout,
) -> Result<ShardedSaveStats, StoreError> {
    let _span = rightcrowd_obs::span!("store.save_sharded");
    let start = Instant::now();
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir).map_err(StoreError::Io)?;
    remove_all_sidecars(dir)?;

    let parts = corpus.index().to_parts();
    let index_shards = corpus.index().to_shards(shards);
    let shard_count = index_shards.len();

    // Encoding is pure CPU; cap workers at the core count (see load).
    let threads = threads.min(rightcrowd_core::par::default_threads()).max(1);
    let files: Vec<Vec<u8>> = par_map(&index_shards, threads, |s| match layout {
        SnapshotLayout::Streamed => encode_shard_file(s, shard_count),
        SnapshotLayout::Mapped => crate::mapped::encode_mapped_shard(s, shard_count),
    });

    let entries: Vec<ShardEntry> = index_shards
        .iter()
        .zip(&files)
        .map(|(s, bytes)| ShardEntry {
            term_range: s.term_range,
            entity_range: s.entity_range,
            byte_len: bytes.len() as u64,
            digest: trailing_digest(bytes),
            flags: 0,
        })
        .collect();
    let shard_format_version = match layout {
        SnapshotLayout::Streamed => SHARD_FORMAT_VERSION,
        SnapshotLayout::Mapped => SHARD_FORMAT_VERSION_MAPPED,
    };
    let table = ShardTable {
        shard_format_version,
        term_count: parts.terms.vocab.len() as u64,
        entity_count: parts.entities.vocab.len() as u64,
        entries,
    };

    let mut sections = study_sections(ds, corpus, &parts.doc_lens);
    if layout == SnapshotLayout::Mapped {
        sections.push(Section {
            kind: kind::DOC_LENS,
            payload: crate::mapped::encode_doc_lens(&parts.doc_lens),
        });
    }
    sections.push(Section { kind: kind::SHARD_TABLE, payload: encode_shard_table(&table) });
    // The manifest carries the text-heavy study sections, so it alone gets
    // the byte compressor ([`FLAG_PACKED_SECTIONS`]); postings compression
    // lives in the shard files' block sections.
    #[cfg(not(feature = "blocks-off"))]
    let manifest = assemble_flags(&MANIFEST_MAGIC, &sections, FLAG_PACKED_SECTIONS);
    #[cfg(feature = "blocks-off")]
    let manifest = assemble_with(&MANIFEST_MAGIC, &sections);

    let mut total = manifest.len() as u64;
    for (i, bytes) in files.iter().enumerate() {
        std::fs::write(shard_path(dir, i as u32), bytes).map_err(StoreError::Io)?;
        total += bytes.len() as u64;
    }
    std::fs::write(manifest_path(dir), &manifest).map_err(StoreError::Io)?;
    remove_stale_shards(dir, shard_count)?;

    if layout == SnapshotLayout::Mapped {
        // The writer just computed every digest, so it can honestly attest
        // each file: the first open gets the microsecond path for free.
        for (i, bytes) in files.iter().enumerate() {
            let path = shard_path(dir, i as u32);
            if let Ok(sc) =
                Sidecar::for_file(&path, SHARD_FORMAT_VERSION_MAPPED, trailing_digest(bytes))
            {
                let _ = write_sidecar(&path, &sc);
            }
        }
        let mpath = manifest_path(dir);
        if let Ok(sc) =
            Sidecar::for_file(&mpath, SHARD_FORMAT_VERSION_MAPPED, trailing_digest(&manifest))
        {
            let _ = write_sidecar(&mpath, &sc);
        }
    }

    rightcrowd_obs::add(rightcrowd_obs::CounterId::SnapshotBytesWritten, total);
    Ok(ShardedSaveStats {
        bytes: total,
        manifest_bytes: manifest.len() as u64,
        shard_count,
        elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
    })
}

/// Deletes `*.rcshard` files whose index is not addressed by the new
/// manifest, so a narrower re-save cannot leave orphans that a future
/// reader might mistake for live data.
fn remove_stale_shards(dir: &Path, shard_count: usize) -> Result<(), StoreError> {
    for entry in std::fs::read_dir(dir).map_err(StoreError::Io)? {
        let path = entry.map_err(StoreError::Io)?.path();
        if path.extension().is_some_and(|e| e == "rcshard")
            && (0..shard_count as u32).all(|i| path != shard_path(dir, i))
        {
            std::fs::remove_file(&path).map_err(StoreError::Io)?;
        }
    }
    Ok(())
}

/// Deletes every `*.rcv` validity sidecar in `dir`. A save is about to
/// change the files the sidecars attest, so all of them are stale by
/// construction; the mapped writer re-creates fresh ones afterwards.
fn remove_all_sidecars(dir: &Path) -> Result<(), StoreError> {
    for entry in std::fs::read_dir(dir).map_err(StoreError::Io)? {
        let path = entry.map_err(StoreError::Io)?.path();
        if path.extension().is_some_and(|e| e == crate::sidecar::SIDECAR_EXT) {
            std::fs::remove_file(&path).map_err(StoreError::Io)?;
        }
    }
    Ok(())
}

// ----- loading ----------------------------------------------------------

/// Reads, verifies and decodes one shard file under the manifest's
/// external digest — the single-CRC-pass path.
fn load_shard(dir: &Path, index: u32, entry: &ShardEntry, shard_count: usize) -> Result<(IndexShard, u64), StoreError> {
    let _span = rightcrowd_obs::span!("store.load_shard");
    let _timer = rightcrowd_obs::time(rightcrowd_obs::HistId::ShardLoadLatency);

    let bytes = match std::fs::read(shard_path(dir, index)) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(StoreError::ShardMissing { index })
        }
        Err(e) => return Err(StoreError::Io(e)),
    };
    let (sections, n, flags) =
        read_container_with(&bytes[..], &SHARD_MAGIC, Integrity::External { digest: entry.digest })
            .map_err(|e| match e {
                StoreError::ChecksumMismatch { section: "file" } => {
                    StoreError::ShardChecksumMismatch { index }
                }
                other => other,
            })?;

    let blocked = flags & FLAG_BLOCK_POSTINGS != 0;
    let order = if blocked { &SHARD_SECTION_ORDER_BLOCKS } else { &SHARD_SECTION_ORDER };
    if sections.len() != order.len()
        || sections.iter().zip(order).any(|(s, &k)| s.kind != k)
    {
        return Err(StoreError::Corrupt(format!(
            "shard {index} has unexpected section layout {:?} (want {order:?})",
            sections.iter().map(|s| s.kind).collect::<Vec<_>>()
        )));
    }

    let meta = decode_shard_meta(&sections[0].payload)?;
    let ShardMeta { index: recorded_index, shard_count: recorded_count, term_range, entity_range } =
        meta;
    if recorded_index != index
        || recorded_count != shard_count as u32
        || term_range != entry.term_range
        || entity_range != entry.entity_range
    {
        return Err(StoreError::Corrupt(format!(
            "shard {index} identity mismatch: file says shard {recorded_index}/{recorded_count} \
             terms [{}, {}) entities [{}, {}), manifest says shard {index}/{shard_count} \
             terms [{}, {}) entities [{}, {})",
            term_range.0,
            term_range.1,
            entity_range.0,
            entity_range.1,
            entry.term_range.0,
            entry.term_range.1,
            entry.entity_range.0,
            entry.entity_range.1,
        )));
    }

    let (terms, entities) = if blocked {
        (
            codec::decode_term_blocks(&sections[1].payload)?,
            codec::decode_entity_blocks(&sections[2].payload)?,
        )
    } else {
        (
            codec::decode_term_index(&sections[1].payload)?,
            codec::decode_entity_index(&sections[2].payload)?,
        )
    };
    Ok((IndexShard { index, term_range, entity_range, terms, entities }, n))
}

/// Reads, verifies and reconstructs a sharded snapshot from directory
/// `dir`, decoding + digest-verifying shards on up to `threads` workers
/// (capped at the machine's available parallelism — oversubscribing a
/// CPU-bound decode only adds contention).
///
/// Bit-for-bit equivalent to loading the monolithic snapshot of the same
/// study: the spliced index satisfies `==` against the monolithic one, so
/// every scoring path behaves identically (the parity suite enforces
/// this for several shard counts).
pub fn load_sharded(
    dir: impl AsRef<Path>,
    threads: usize,
) -> Result<(SyntheticDataset, AnalyzedCorpus, ShardedLoadStats), StoreError> {
    let _span = rightcrowd_obs::span!("store.load_sharded");
    let start = Instant::now();
    let dir = dir.as_ref();

    let manifest_file = std::fs::read(manifest_path(dir)).map_err(StoreError::Io)?;
    let manifest_digest =
        if manifest_file.len() >= 8 { trailing_digest(&manifest_file) } else { 0 };
    let (sections, manifest_bytes, _flags) = read_container_with(
        &manifest_file[..],
        &MANIFEST_MAGIC,
        Integrity::SelfContained,
    )?;
    let mapped_layout = match sections.len() {
        n if n == MANIFEST_SECTION_ORDER.len()
            && sections.iter().zip(MANIFEST_SECTION_ORDER).all(|(s, k)| s.kind == k) =>
        {
            false
        }
        n if n == MANIFEST_SECTION_ORDER_MAPPED.len()
            && sections.iter().zip(MANIFEST_SECTION_ORDER_MAPPED).all(|(s, k)| s.kind == k) =>
        {
            true
        }
        _ => {
            return Err(StoreError::Corrupt(format!(
                "unexpected manifest section layout {:?} (want {MANIFEST_SECTION_ORDER:?} or \
                 {MANIFEST_SECTION_ORDER_MAPPED:?})",
                sections.iter().map(|s| s.kind).collect::<Vec<_>>()
            )))
        }
    };

    let table = decode_shard_table(&sections.last().expect("checked order").payload)?;
    let expected_version =
        if mapped_layout { SHARD_FORMAT_VERSION_MAPPED } else { SHARD_FORMAT_VERSION };
    if table.shard_format_version != expected_version {
        return Err(StoreError::Corrupt(format!(
            "manifest section layout implies shard format {expected_version} but the shard \
             table declares {}",
            table.shard_format_version
        )));
    }
    let (ds, docs, dropped, doc_lens) = decode_study([
        &sections[0].payload,
        &sections[1].payload,
        &sections[2].payload,
        &sections[3].payload,
        &sections[4].payload,
    ])?;
    if mapped_layout {
        // The raw doc_lens section exists for index-only warm opens; a
        // full load cross-checks it against the corpus-derived truth.
        let raw = crate::mapped::decode_doc_lens(&sections[5].payload)?;
        if raw != doc_lens {
            return Err(StoreError::Corrupt(
                "manifest doc_lens section disagrees with the corpus section".into(),
            ));
        }
    }

    // Decode + digest-verify every shard, concurrently when threads allow,
    // with results back in shard order for the splice. The worker count is
    // capped at the machine's parallelism: shard files sit in the page
    // cache after the manifest read, so the work is CPU-bound and workers
    // past the core count only add scheduler contention.
    let shard_count = table.entries.len();
    let threads = threads.min(rightcrowd_core::par::default_threads()).max(1);
    let jobs: Vec<(u32, ShardEntry)> =
        table.entries.iter().enumerate().map(|(i, e)| (i as u32, *e)).collect();

    let (index, shard_bytes);
    if mapped_layout {
        let results = par_map(&jobs, threads, |(i, entry)| {
            crate::mapped::open_mapped_shard(&shard_path(dir, *i), *i, entry, shard_count)
        });
        let mut views = Vec::with_capacity(shard_count);
        let mut bytes = 0u64;
        for result in results {
            let opened = result?;
            bytes += opened.bytes;
            views.push(opened.view);
        }
        index = InvertedIndex::from_mapped(views, doc_lens).map_err(StoreError::Corrupt)?;
        shard_bytes = bytes;
        // The full manifest verification that just happened earns the
        // manifest its sidecar, so the next open takes the fast path.
        let mpath = manifest_path(dir);
        if let Ok(sc) =
            crate::sidecar::Sidecar::for_file(&mpath, SHARD_FORMAT_VERSION_MAPPED, manifest_digest)
        {
            let _ = write_sidecar(&mpath, &sc);
        }
    } else {
        let results =
            par_map(&jobs, threads, |(i, entry)| load_shard(dir, *i, entry, shard_count));
        let mut shards = Vec::with_capacity(shard_count);
        let mut bytes = 0u64;
        for result in results {
            let (shard, n) = result?;
            bytes += n;
            shards.push(shard);
        }
        index = InvertedIndex::from_shards(shards, doc_lens).map_err(StoreError::Corrupt)?;
        shard_bytes = bytes;
    }
    let corpus = AnalyzedCorpus::from_parts(index, docs, dropped).map_err(StoreError::Corrupt)?;

    rightcrowd_obs::add(rightcrowd_obs::CounterId::SnapshotBytesRead, manifest_bytes);
    rightcrowd_obs::add(rightcrowd_obs::CounterId::ShardBytesRead, shard_bytes);
    rightcrowd_obs::add(rightcrowd_obs::CounterId::ShardsLoaded, shard_count as u64);
    Ok((
        ds,
        corpus,
        ShardedLoadStats {
            bytes: manifest_bytes + shard_bytes,
            manifest_bytes,
            shard_count,
            mapped: mapped_layout,
            manifest_digest,
            elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
        },
    ))
}

// ----- zero-copy (index-only) opens -------------------------------------

/// What [`open_mapped`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappedOpenStats {
    /// Bytes of shard payload now behind memory mappings.
    pub mapped_bytes: u64,
    /// Bytes actually read from the manifest (tiny when its sidecar hit).
    pub manifest_bytes_read: u64,
    /// Number of shard files mapped.
    pub shard_count: usize,
    /// Whether every sidecar (manifest + shards) hit — the
    /// microsecond-class path with no streamed verification anywhere.
    pub warm: bool,
    /// The manifest's whole-file digest — a cheap fingerprint of the
    /// snapshot's identity (covers the shard table and thus every shard
    /// digest) that never forces a page-in.
    pub manifest_digest: u64,
    /// Wall time of the whole open, milliseconds.
    pub elapsed_ms: f64,
}

/// Opens the *index* of a mapped-layout sharded snapshot zero-copy:
/// verify-sidecar-then-map per file, no study decode, no postings copy.
///
/// This is the warm-open entry point for query-serving consumers that
/// don't need the synthetic study (daemon boot, bench open legs). The
/// returned index borrows every array from the mappings and scores
/// bit-identically to the streamed load (the parity suites pin this).
/// Fails with [`StoreError::VersionMismatch`] on a streamed-layout
/// (`shard_format_version` 1) snapshot.
pub fn open_mapped(dir: impl AsRef<Path>) -> Result<(InvertedIndex, MappedOpenStats), StoreError> {
    let _span = rightcrowd_obs::span!("store.open_mapped");
    let start = Instant::now();
    let dir = dir.as_ref();

    let manifest = crate::mapped::read_manifest_index_only(dir)?;
    if manifest.table.shard_format_version != SHARD_FORMAT_VERSION_MAPPED {
        return Err(StoreError::VersionMismatch {
            found: manifest.table.shard_format_version,
            expected: SHARD_FORMAT_VERSION_MAPPED,
        });
    }
    let shard_count = manifest.table.entries.len();
    let mut views = Vec::with_capacity(shard_count);
    let mut mapped_bytes = 0u64;
    let mut warm = manifest.warm;
    for (i, entry) in manifest.table.entries.iter().enumerate() {
        let opened =
            crate::mapped::open_mapped_shard(&shard_path(dir, i as u32), i as u32, entry, shard_count)?;
        mapped_bytes += opened.bytes;
        warm &= opened.warm;
        views.push(opened.view);
    }
    let index = InvertedIndex::from_mapped(views, manifest.doc_lens).map_err(StoreError::Corrupt)?;
    rightcrowd_obs::add(rightcrowd_obs::CounterId::ShardsLoaded, shard_count as u64);
    Ok((
        index,
        MappedOpenStats {
            mapped_bytes,
            manifest_bytes_read: manifest.bytes_read,
            shard_count,
            warm,
            manifest_digest: manifest.digest,
            elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
        },
    ))
}

/// Whether `path` is a *mapped-layout* sharded snapshot, detected from
/// the first shard file's magic without touching the manifest.
pub fn is_mapped_snapshot(path: impl AsRef<Path>) -> bool {
    let shard0 = shard_path(path, 0);
    let mut magic = [0u8; 8];
    match std::fs::File::open(shard0) {
        Ok(mut f) => {
            std::io::Read::read_exact(&mut f, &mut magic).is_ok()
                && magic == crate::mapped::MAPPED_SHARD_MAGIC
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(term: (u32, u32), entity: (u32, u32)) -> ShardEntry {
        ShardEntry { term_range: term, entity_range: entity, byte_len: 10, digest: 7, flags: 0 }
    }

    fn table(entries: Vec<ShardEntry>, term_count: u64, entity_count: u64) -> ShardTable {
        ShardTable { shard_format_version: SHARD_FORMAT_VERSION, term_count, entity_count, entries }
    }

    #[test]
    fn shard_table_roundtrip() {
        let t = table(
            vec![entry((0, 3), (0, 2)), entry((3, 3), (2, 5)), entry((3, 8), (5, 5))],
            8,
            5,
        );
        let decoded = decode_shard_table(&encode_shard_table(&t)).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn shard_table_version_skew_is_version_mismatch() {
        let mut t = table(vec![entry((0, 1), (0, 1))], 1, 1);
        t.shard_format_version = 9;
        match decode_shard_table(&encode_shard_table(&t)) {
            Err(StoreError::VersionMismatch { found: 9, expected }) => {
                assert_eq!(expected, SHARD_FORMAT_VERSION_MAPPED);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn shard_table_accepts_both_live_versions() {
        for version in [SHARD_FORMAT_VERSION, SHARD_FORMAT_VERSION_MAPPED] {
            let mut t = table(vec![entry((0, 1), (0, 1))], 1, 1);
            t.shard_format_version = version;
            let decoded = decode_shard_table(&encode_shard_table(&t)).unwrap();
            assert_eq!(decoded.shard_format_version, version);
        }
    }

    #[test]
    fn shard_table_rejects_bad_tilings() {
        // Gap in term ranges.
        let t = table(vec![entry((0, 2), (0, 1)), entry((3, 5), (1, 2))], 5, 2);
        let err = decode_shard_table(&encode_shard_table(&t)).unwrap_err();
        assert!(matches!(&err, StoreError::Corrupt(m) if m.contains("gap")), "{err:?}");

        // Overlap / duplicate.
        let t = table(vec![entry((0, 2), (0, 1)), entry((1, 5), (1, 2))], 5, 2);
        let err = decode_shard_table(&encode_shard_table(&t)).unwrap_err();
        assert!(matches!(&err, StoreError::Corrupt(m) if m.contains("overlap")), "{err:?}");

        // Not ending at the vocabulary size.
        let t = table(vec![entry((0, 2), (0, 2))], 5, 2);
        let err = decode_shard_table(&encode_shard_table(&t)).unwrap_err();
        assert!(matches!(&err, StoreError::Corrupt(m) if m.contains("end at 2")), "{err:?}");

        // Zero shards.
        let t = table(vec![], 0, 0);
        let err = decode_shard_table(&encode_shard_table(&t)).unwrap_err();
        assert!(matches!(&err, StoreError::Corrupt(m) if m.contains("zero shards")), "{err:?}");

        // Reserved flags.
        let mut bad = entry((0, 1), (0, 1));
        bad.flags = 4;
        let t = table(vec![bad], 1, 1);
        let err = decode_shard_table(&encode_shard_table(&t)).unwrap_err();
        assert!(matches!(err, StoreError::UnsupportedFlags { flags: 4 }), "{err:?}");
    }

    #[test]
    fn paths_and_dispatch() {
        let dir = std::env::temp_dir().join("rc-shard-dispatch-test");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(!is_sharded(&dir));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(!is_sharded(&dir));
        std::fs::write(manifest_path(&dir), b"stub").unwrap();
        assert!(is_sharded(&dir));
        assert_eq!(shard_path(&dir, 7).file_name().unwrap(), "shard-007.rcshard");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
