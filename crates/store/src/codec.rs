//! Section codecs: domain state ⇄ wire payloads.
//!
//! What travels through a snapshot is the *sampled* state only — the
//! social graph, web pages, latent expertise, questionnaire answers,
//! personas, the retained-document table and the CSR index. Compiled-in
//! constants (knowledge base, query workload) are regenerated at load and
//! cross-checked against fingerprints recorded in the `meta` section, so
//! a snapshot from a build with a different KB seed is refused instead of
//! silently mis-resolving entity ids.
//!
//! Every decoder validates id ranges *before* touching the replay
//! builders (whose indexing would panic on garbage) — the loader's
//! no-panic contract is enforced here, after the envelope checksums and
//! before any reconstruction.

use crate::crc::Crc64;
use crate::err::StoreError;
use crate::wire::*;
use rightcrowd_graph::{DocId, SocialGraph};
use rightcrowd_index::{unpack_entities, unpack_terms, EntityParts, IndexParts, PackedPostings, TermParts};
use rightcrowd_kb::KnowledgeBase;
use rightcrowd_synth::config::{PlatformPools, PlatformVolume};
use rightcrowd_synth::queries::ExpertiseNeed;
use rightcrowd_synth::{DatasetConfig, LatentExpertise, Persona, WebCorpus};
use rightcrowd_types::{
    ContainerId, Domain, EntityId, Likert, PageId, PersonId, Platform, ResourceId, UserId,
};

/// Node counts recorded in `meta` and cross-checked against every decoded
/// section (also used to pre-size the replayed graph's arenas).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Census {
    /// Candidate persons.
    pub persons: usize,
    /// User profiles across all platforms.
    pub profiles: usize,
    /// Resources.
    pub resources: usize,
    /// Containers.
    pub containers: usize,
    /// Synthetic web pages.
    pub pages: usize,
    /// Retained (indexed) documents.
    pub retained: usize,
}

fn corrupt(msg: impl Into<String>) -> StoreError {
    StoreError::Corrupt(msg.into())
}

fn decode_platform(tag: u8) -> Result<Platform, StoreError> {
    Platform::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| corrupt(format!("invalid platform tag {tag}")))
}

fn decode_likert(raw: u8) -> Result<Likert, StoreError> {
    Likert::new(raw).ok_or_else(|| corrupt(format!("likert value {raw} outside 1..=7")))
}

fn check_id(kind: &str, raw: u32, bound: usize) -> Result<(), StoreError> {
    if (raw as usize) < bound {
        Ok(())
    } else {
        Err(corrupt(format!("{kind} id {raw} out of range (count {bound})")))
    }
}

/// Fingerprint of the compiled-in query workload: count plus a digest of
/// the texts in order.
fn workload_fingerprint(queries: &[ExpertiseNeed]) -> (u64, u64) {
    let mut digest = Crc64::new();
    for q in queries {
        digest.update(q.text.as_bytes());
        digest.update(b"\n");
    }
    (queries.len() as u64, digest.finish())
}

// ----- meta -------------------------------------------------------------

/// Encodes the dataset config, environment fingerprints and node census.
pub fn encode_meta(
    config: &DatasetConfig,
    kb: &KnowledgeBase,
    queries: &[ExpertiseNeed],
    census: Census,
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256);
    put_u64(&mut buf, config.seed);
    put_len(&mut buf, config.candidates);
    for v in &config.volumes {
        for n in [
            v.own_posts,
            v.foreign_wall_posts,
            v.annotations,
            v.memberships,
            v.followed_accounts,
            v.friends,
        ] {
            put_len(&mut buf, n);
        }
    }
    for p in &config.pools {
        for n in [
            p.containers_per_domain,
            p.posts_per_container,
            p.celebrities_per_domain,
            p.posts_per_celebrity,
            p.posts_per_friend,
        ] {
            put_len(&mut buf, n);
        }
    }
    for rate in [
        config.english_rate,
        config.url_rate,
        config.silent_rate,
        config.flagship_rate,
        config.profile_location_leak,
    ] {
        put_f64(&mut buf, rate);
    }

    put_len(&mut buf, kb.len());
    put_len(&mut buf, kb.anchor_count());
    put_len(&mut buf, kb.max_anchor_words());
    let (qn, qcrc) = workload_fingerprint(queries);
    put_u64(&mut buf, qn);
    put_u64(&mut buf, qcrc);

    for n in
        [census.persons, census.profiles, census.resources, census.containers, census.pages, census.retained]
    {
        put_len(&mut buf, n);
    }
    buf
}

/// Decodes `meta` and verifies the KB / workload fingerprints against the
/// regenerated constants of *this* build.
pub fn decode_meta(
    payload: &[u8],
    kb: &KnowledgeBase,
    queries: &[ExpertiseNeed],
) -> Result<(DatasetConfig, Census), StoreError> {
    let mut c = Cursor::new(payload);
    let seed = c.u64()?;
    let candidates = c.usize()?;

    let mut volume = || -> Result<PlatformVolume, StoreError> {
        Ok(PlatformVolume {
            own_posts: c.usize()?,
            foreign_wall_posts: c.usize()?,
            annotations: c.usize()?,
            memberships: c.usize()?,
            followed_accounts: c.usize()?,
            friends: c.usize()?,
        })
    };
    let volumes = [volume()?, volume()?, volume()?];
    let mut pool = || -> Result<PlatformPools, StoreError> {
        Ok(PlatformPools {
            containers_per_domain: c.usize()?,
            posts_per_container: c.usize()?,
            celebrities_per_domain: c.usize()?,
            posts_per_celebrity: c.usize()?,
            posts_per_friend: c.usize()?,
        })
    };
    let pools = [pool()?, pool()?, pool()?];
    let english_rate = c.f64()?;
    let url_rate = c.f64()?;
    let silent_rate = c.f64()?;
    let flagship_rate = c.f64()?;
    let profile_location_leak = c.f64()?;
    for rate in [english_rate, url_rate, silent_rate, flagship_rate, profile_location_leak] {
        if !rate.is_finite() {
            return Err(corrupt("non-finite rate in dataset config"));
        }
    }

    let (kb_len, kb_anchors, kb_words) = (c.usize()?, c.usize()?, c.usize()?);
    if (kb_len, kb_anchors, kb_words) != (kb.len(), kb.anchor_count(), kb.max_anchor_words()) {
        return Err(corrupt(format!(
            "knowledge-base fingerprint mismatch: snapshot was built against \
             ({kb_len} entities, {kb_anchors} anchors), this build has \
             ({} entities, {} anchors)",
            kb.len(),
            kb.anchor_count()
        )));
    }
    let (qn, qcrc) = (c.u64()?, c.u64()?);
    if (qn, qcrc) != workload_fingerprint(queries) {
        return Err(corrupt(
            "query-workload fingerprint mismatch: snapshot was built against a different workload",
        ));
    }

    let census = Census {
        persons: c.usize()?,
        profiles: c.usize()?,
        resources: c.usize()?,
        containers: c.usize()?,
        pages: c.usize()?,
        retained: c.usize()?,
    };
    c.finish("meta")?;

    let config = DatasetConfig {
        seed,
        candidates,
        volumes,
        pools,
        english_rate,
        url_rate,
        silent_rate,
        flagship_rate,
        profile_location_leak,
    };
    Ok((config, census))
}

// ----- graph ------------------------------------------------------------

/// Encodes the social graph: node arenas in id order, then the per-user
/// relationship lists (`add_resource` rebuilds created/owned/contains
/// adjacency on replay, so only annotation/membership/follow edges need
/// their own arrays).
pub fn encode_graph(graph: &SocialGraph) -> Vec<u8> {
    let mut buf = Vec::with_capacity(1 << 16);
    put_len(&mut buf, graph.persons().len());
    for p in graph.persons() {
        put_str(&mut buf, &p.name);
    }
    put_len(&mut buf, graph.profiles().len());
    for p in graph.profiles() {
        put_u8(&mut buf, p.platform.index() as u8);
        put_str(&mut buf, &p.name);
        put_str(&mut buf, &p.text);
        put_opt_u32(&mut buf, p.person.map(|id| id.0));
        put_len(&mut buf, p.links.len());
        for l in &p.links {
            put_u32(&mut buf, l.0);
        }
    }
    put_len(&mut buf, graph.containers().len());
    for c in graph.containers() {
        put_u8(&mut buf, c.platform.index() as u8);
        put_str(&mut buf, &c.text);
        put_len(&mut buf, c.links.len());
        for l in &c.links {
            put_u32(&mut buf, l.0);
        }
    }
    put_len(&mut buf, graph.resources().len());
    for r in graph.resources() {
        put_u8(&mut buf, r.platform.index() as u8);
        put_str(&mut buf, &r.text);
        put_opt_u32(&mut buf, r.creator.map(|id| id.0));
        put_opt_u32(&mut buf, r.owner.map(|id| id.0));
        put_opt_u32(&mut buf, r.container.map(|id| id.0));
        put_len(&mut buf, r.links.len());
        for l in &r.links {
            put_u32(&mut buf, l.0);
        }
    }
    for p in graph.profiles() {
        let u = p.id;
        let annotated: Vec<u32> = graph.annotated_by(u).iter().map(|r| r.0).collect();
        put_u32s(&mut buf, &annotated);
        let memberships: Vec<u32> = graph.memberships(u).iter().map(|m| m.0).collect();
        put_u32s(&mut buf, &memberships);
        let follows: Vec<u32> = graph.follows(u).iter().map(|f| f.0).collect();
        put_u32s(&mut buf, &follows);
    }
    buf
}

/// Decodes and replays the graph through the pre-sized builder API. Every
/// id is range-checked before any builder call, so hostile payloads fail
/// with [`StoreError::Corrupt`] instead of an index panic.
pub fn decode_graph(payload: &[u8], census: Census) -> Result<SocialGraph, StoreError> {
    let mut c = Cursor::new(payload);

    let n_persons = c.len(8)?;
    if n_persons != census.persons {
        return Err(corrupt(format!(
            "graph has {n_persons} persons but the census says {}",
            census.persons
        )));
    }
    let mut graph =
        SocialGraph::with_capacity(census.persons, census.profiles, census.resources, census.containers);
    for _ in 0..n_persons {
        let name = c.str()?;
        graph.add_person(&name);
    }

    let n_profiles = c.len(8)?;
    if n_profiles != census.profiles {
        return Err(corrupt("graph profile count disagrees with the census"));
    }
    for _ in 0..n_profiles {
        let platform = decode_platform(c.u8()?)?;
        let name = c.str()?;
        let text = c.str()?;
        let person = c.opt_u32()?;
        if let Some(p) = person {
            check_id("person", p, census.persons)?;
        }
        let n_links = c.len(4)?;
        let mut links = Vec::with_capacity(n_links);
        for _ in 0..n_links {
            let l = c.u32()?;
            check_id("page", l, census.pages)?;
            links.push(PageId::new(l));
        }
        graph.add_profile(platform, &name, &text, person.map(PersonId::new), links);
    }

    let n_containers = c.len(8)?;
    if n_containers != census.containers {
        return Err(corrupt("graph container count disagrees with the census"));
    }
    for _ in 0..n_containers {
        let platform = decode_platform(c.u8()?)?;
        let text = c.str()?;
        let n_links = c.len(4)?;
        let mut links = Vec::with_capacity(n_links);
        for _ in 0..n_links {
            let l = c.u32()?;
            check_id("page", l, census.pages)?;
            links.push(PageId::new(l));
        }
        graph.add_container(platform, &text, links);
    }

    let n_resources = c.len(8)?;
    if n_resources != census.resources {
        return Err(corrupt("graph resource count disagrees with the census"));
    }
    for _ in 0..n_resources {
        let platform = decode_platform(c.u8()?)?;
        let text = c.str()?;
        let creator = c.opt_u32()?;
        let owner = c.opt_u32()?;
        let container = c.opt_u32()?;
        for u in [creator, owner].into_iter().flatten() {
            check_id("profile", u, census.profiles)?;
        }
        if let Some(k) = container {
            check_id("container", k, census.containers)?;
        }
        let n_links = c.len(4)?;
        let mut links = Vec::with_capacity(n_links);
        for _ in 0..n_links {
            let l = c.u32()?;
            check_id("page", l, census.pages)?;
            links.push(PageId::new(l));
        }
        graph.add_resource(
            platform,
            &text,
            creator.map(UserId::new),
            owner.map(UserId::new),
            container.map(ContainerId::new),
            links,
        );
    }

    for u in 0..n_profiles {
        let user = UserId::new(u as u32);
        for r in c.u32s()? {
            check_id("resource", r, census.resources)?;
            graph.add_annotation(user, ResourceId::new(r));
        }
        for m in c.u32s()? {
            check_id("container", m, census.containers)?;
            graph.add_membership(user, ContainerId::new(m));
        }
        for f in c.u32s()? {
            check_id("profile", f, census.profiles)?;
            graph.add_follow(user, UserId::new(f));
        }
    }
    c.finish("graph")?;
    graph.finalize();
    Ok(graph)
}

// ----- web --------------------------------------------------------------

/// Encodes the synthetic web corpus.
pub fn encode_web(web: &WebCorpus) -> Vec<u8> {
    let mut buf = Vec::with_capacity(1 << 14);
    put_len(&mut buf, web.len());
    for i in 0..web.len() {
        put_str(&mut buf, web.text(PageId::new(i as u32)));
    }
    buf
}

/// Decodes the web corpus.
pub fn decode_web(payload: &[u8], census: Census) -> Result<WebCorpus, StoreError> {
    let mut c = Cursor::new(payload);
    let n = c.len(8)?;
    if n != census.pages {
        return Err(corrupt(format!("web has {n} pages but the census says {}", census.pages)));
    }
    let mut web = WebCorpus::new();
    for _ in 0..n {
        let text = c.str()?;
        web.add_page(text);
    }
    c.finish("web")?;
    Ok(web)
}

// ----- truth ------------------------------------------------------------

/// Encodes latent expertise, questionnaire answers and personas.
pub fn encode_truth(
    latent: &LatentExpertise,
    answers: &[Vec<Likert>],
    personas: &[Persona],
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(1 << 12);
    put_len(&mut buf, latent.levels().len());
    for row in latent.levels() {
        for l in row {
            put_u8(&mut buf, l.value());
        }
    }
    put_len(&mut buf, answers.len());
    for row in answers {
        put_len(&mut buf, row.len());
        for a in row {
            put_u8(&mut buf, a.value());
        }
    }
    put_len(&mut buf, personas.len());
    for p in personas {
        put_u32(&mut buf, p.person.0);
        put_f64(&mut buf, p.activity);
        put_u8(&mut buf, p.silent as u8);
        put_u8(&mut buf, p.flagship as u8);
        for e in p.expression {
            put_f64(&mut buf, e);
        }
    }
    buf
}

/// Decodes the truth section. Answer rows are checked against the
/// workload size *here* because `GroundTruth::derive` asserts it.
#[allow(clippy::type_complexity)]
pub fn decode_truth(
    payload: &[u8],
    census: Census,
    query_count: usize,
) -> Result<(LatentExpertise, Vec<Vec<Likert>>, Vec<Persona>), StoreError> {
    let mut c = Cursor::new(payload);

    let n_latent = c.len(Domain::COUNT)?;
    if n_latent != census.persons {
        return Err(corrupt("latent-expertise population disagrees with the census"));
    }
    let mut levels = Vec::with_capacity(n_latent);
    for _ in 0..n_latent {
        let mut row = [Likert::clamped(1); Domain::COUNT];
        for slot in row.iter_mut() {
            *slot = decode_likert(c.u8()?)?;
        }
        levels.push(row);
    }

    let n_answers = c.len(8)?;
    if n_answers != census.persons {
        return Err(corrupt("questionnaire population disagrees with the census"));
    }
    let mut answers = Vec::with_capacity(n_answers);
    for _ in 0..n_answers {
        let row_len = c.len(1)?;
        if row_len != query_count {
            return Err(corrupt(format!(
                "questionnaire row has {row_len} answers; the workload has {query_count} queries"
            )));
        }
        let mut row = Vec::with_capacity(row_len);
        for _ in 0..row_len {
            row.push(decode_likert(c.u8()?)?);
        }
        answers.push(row);
    }

    let n_personas = c.len(4 + 8 + 2 + 8 * Domain::COUNT)?;
    if n_personas != census.persons {
        return Err(corrupt("persona population disagrees with the census"));
    }
    let mut personas = Vec::with_capacity(n_personas);
    for _ in 0..n_personas {
        let person = c.u32()?;
        check_id("person", person, census.persons)?;
        let activity = c.f64()?;
        let silent = match c.u8()? {
            0 => false,
            1 => true,
            tag => return Err(corrupt(format!("invalid bool tag {tag}"))),
        };
        let flagship = match c.u8()? {
            0 => false,
            1 => true,
            tag => return Err(corrupt(format!("invalid bool tag {tag}"))),
        };
        let mut expression = [0.0f64; Domain::COUNT];
        for slot in expression.iter_mut() {
            *slot = c.f64()?;
        }
        if !activity.is_finite() || expression.iter().any(|e| !e.is_finite()) {
            return Err(corrupt("non-finite persona parameter"));
        }
        personas.push(Persona { person: PersonId::new(person), activity, silent, flagship, expression });
    }
    c.finish("truth")?;
    Ok((LatentExpertise::from_levels(levels), answers, personas))
}

// ----- corpus -----------------------------------------------------------

/// Encodes the retained-document table, drop count and per-document
/// lengths.
pub fn encode_corpus(docs: &[DocId], dropped: usize, doc_lens: &[u32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + docs.len() * 5 + doc_lens.len() * 4);
    put_len(&mut buf, dropped);
    put_len(&mut buf, docs.len());
    for d in docs {
        match d {
            DocId::Profile(u) => {
                put_u8(&mut buf, 0);
                put_u32(&mut buf, u.0);
            }
            DocId::Res(r) => {
                put_u8(&mut buf, 1);
                put_u32(&mut buf, r.0);
            }
            DocId::Cont(k) => {
                put_u8(&mut buf, 2);
                put_u32(&mut buf, k.0);
            }
        }
    }
    put_u32s(&mut buf, doc_lens);
    buf
}

/// Decodes the corpus section.
pub fn decode_corpus(
    payload: &[u8],
    census: Census,
) -> Result<(Vec<DocId>, usize, Vec<u32>), StoreError> {
    let mut c = Cursor::new(payload);
    let dropped = c.usize()?;
    let n = c.len(5)?;
    if n != census.retained {
        return Err(corrupt(format!(
            "corpus retains {n} documents but the census says {}",
            census.retained
        )));
    }
    let mut docs = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = c.u8()?;
        let raw = c.u32()?;
        let doc = match tag {
            0 => {
                check_id("profile", raw, census.profiles)?;
                DocId::Profile(UserId::new(raw))
            }
            1 => {
                check_id("resource", raw, census.resources)?;
                DocId::Res(ResourceId::new(raw))
            }
            2 => {
                check_id("container", raw, census.containers)?;
                DocId::Cont(ContainerId::new(raw))
            }
            _ => return Err(corrupt(format!("invalid document tag {tag}"))),
        };
        docs.push(doc);
    }
    let doc_lens = c.u32s()?;
    if doc_lens.len() != n {
        return Err(corrupt("doc_lens length disagrees with the document table"));
    }
    c.finish("corpus")?;
    Ok((docs, dropped, doc_lens))
}

// ----- index ------------------------------------------------------------

/// Encodes the term-side CSR postings.
pub fn encode_term_index(t: &TermParts) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        16 + t.vocab.iter().map(|s| s.len() + 8).sum::<usize>()
            + t.offsets.len() * 8
            + t.docs.len() * 8
            + t.irf.len() * 8
            + t.max_tf.len() * 4,
    );
    put_len(&mut buf, t.vocab.len());
    for term in &t.vocab {
        put_str(&mut buf, term);
    }
    put_len(&mut buf, t.offsets.len());
    for &o in &t.offsets {
        put_u64(&mut buf, o);
    }
    put_u32s(&mut buf, &t.docs);
    put_u32s(&mut buf, &t.tfs);
    put_len(&mut buf, t.irf.len());
    for &v in &t.irf {
        put_f64(&mut buf, v);
    }
    put_u32s(&mut buf, &t.max_tf);
    buf
}

/// Decodes the term-side CSR postings (structural validation happens in
/// `InvertedIndex::from_parts`).
pub fn decode_term_index(payload: &[u8]) -> Result<TermParts, StoreError> {
    let mut c = Cursor::new(payload);
    let n_vocab = c.len(8)?;
    let mut vocab = Vec::with_capacity(n_vocab);
    for _ in 0..n_vocab {
        vocab.push(c.str()?);
    }
    let offsets = {
        let n = c.len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(c.u64()?);
        }
        out
    };
    let docs = c.u32s()?;
    let tfs = c.u32s()?;
    let irf = c.f64s()?;
    let max_tf = c.u32s()?;
    c.finish("term_index")?;
    Ok(TermParts { vocab, offsets, docs, tfs, irf, max_tf })
}

/// Encodes the entity-side CSR postings.
pub fn encode_entity_index(e: &EntityParts) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        16 + e.vocab.len() * 4 + e.offsets.len() * 8 + e.docs.len() * 16 + e.eirf.len() * 16,
    );
    put_len(&mut buf, e.vocab.len());
    for id in &e.vocab {
        put_u32(&mut buf, id.0);
    }
    put_len(&mut buf, e.offsets.len());
    for &o in &e.offsets {
        put_u64(&mut buf, o);
    }
    put_u32s(&mut buf, &e.docs);
    put_u32s(&mut buf, &e.efs);
    put_len(&mut buf, e.we.len());
    for &v in &e.we {
        put_f64(&mut buf, v);
    }
    put_len(&mut buf, e.eirf.len());
    for &v in &e.eirf {
        put_f64(&mut buf, v);
    }
    put_len(&mut buf, e.max_contrib.len());
    for &v in &e.max_contrib {
        put_f64(&mut buf, v);
    }
    buf
}

/// Decodes the entity-side CSR postings.
pub fn decode_entity_index(payload: &[u8]) -> Result<EntityParts, StoreError> {
    let mut c = Cursor::new(payload);
    let n_vocab = c.len(4)?;
    let mut vocab = Vec::with_capacity(n_vocab);
    for _ in 0..n_vocab {
        vocab.push(EntityId::new(c.u32()?));
    }
    let offsets = {
        let n = c.len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(c.u64()?);
        }
        out
    };
    let docs = c.u32s()?;
    let efs = c.u32s()?;
    let we = c.f64s()?;
    let eirf = c.f64s()?;
    let max_contrib = c.f64s()?;
    c.finish("entity_index")?;
    Ok(EntityParts { vocab, offsets, docs, efs, we, eirf, max_contrib })
}

/// Rebuilds [`IndexParts`] from the two index sections plus the corpus
/// section's `doc_lens`.
pub fn assemble_index_parts(terms: TermParts, entities: EntityParts, doc_lens: Vec<u32>) -> IndexParts {
    IndexParts { terms, entities, doc_lens }
}

// ----- block postings ---------------------------------------------------
//
// The `FLAG_BLOCK_POSTINGS` sections replace the flat CSR arrays with the
// in-memory block-compressed layout: per-list vocab + precomputed idf, then
// the `PackedPostings` arrays verbatim. `max_tf`/`max_contrib` do NOT
// travel — they are re-derived from the verified per-block maxima on
// decode, which both shrinks the section and removes a forgeable field.

fn put_packed(buf: &mut Vec<u8>, p: &PackedPostings) {
    put_u32s(buf, &p.block_offsets);
    put_u32s(buf, &p.last_doc);
    put_u32s(buf, &p.counts);
    put_blob(buf, &p.doc_bits);
    put_blob(buf, &p.aux_bits);
    put_len(buf, p.max_score.len());
    for &v in p.max_score.iter() {
        put_f64(buf, v);
    }
    put_len(buf, p.data_offsets.len());
    for &o in p.data_offsets.iter() {
        put_u64(buf, o);
    }
    put_blob(buf, &p.data);
}

fn read_packed(c: &mut Cursor) -> Result<PackedPostings, StoreError> {
    Ok(PackedPostings {
        block_offsets: c.u32s()?.into(),
        last_doc: c.u32s()?.into(),
        counts: c.u32s()?.into(),
        doc_bits: c.blob()?.into(),
        aux_bits: c.blob()?.into(),
        max_score: c.f64s()?.into(),
        data_offsets: c.u64s()?.into(),
        data: c.blob()?.into(),
    })
}

fn packed_wire_len(p: &PackedPostings) -> usize {
    72 + (p.block_offsets.len() + p.last_doc.len() + p.counts.len()) * 4
        + p.doc_bits.len()
        + p.aux_bits.len()
        + (p.max_score.len() + p.data_offsets.len()) * 8
        + p.data.len()
}

/// Encodes the term-side block-compressed postings.
pub fn encode_term_blocks(vocab: &[String], irf: &[f64], p: &PackedPostings) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        16 + vocab.iter().map(|s| s.len() + 8).sum::<usize>() + irf.len() * 8 + packed_wire_len(p),
    );
    put_len(&mut buf, vocab.len());
    for term in vocab {
        put_str(&mut buf, term);
    }
    put_len(&mut buf, irf.len());
    for &v in irf {
        put_f64(&mut buf, v);
    }
    put_packed(&mut buf, p);
    buf
}

/// Decodes the term-side block sections back to flat [`TermParts`]
/// (every block is delta-decoded and cross-checked against its metadata;
/// structural CSR validation still happens in `InvertedIndex::from_parts`).
pub fn decode_term_blocks(payload: &[u8]) -> Result<TermParts, StoreError> {
    let mut c = Cursor::new(payload);
    let n_vocab = c.len(8)?;
    let mut vocab = Vec::with_capacity(n_vocab);
    for _ in 0..n_vocab {
        vocab.push(c.str()?);
    }
    let irf = c.f64s()?;
    let p = read_packed(&mut c)?;
    c.finish("term_blocks")?;
    let (offsets, docs, tfs, max_tf) =
        unpack_terms(&p, vocab.len()).map_err(|e| corrupt(format!("term_blocks: {e}")))?;
    Ok(TermParts { vocab, offsets, docs, tfs, irf, max_tf })
}

/// Encodes the entity-side block-compressed postings (Eq. 2 weights ride
/// inside the block payloads as raw bit patterns).
pub fn encode_entity_blocks(vocab: &[EntityId], eirf: &[f64], p: &PackedPostings) -> Vec<u8> {
    let mut buf =
        Vec::with_capacity(16 + vocab.len() * 4 + eirf.len() * 8 + packed_wire_len(p));
    put_len(&mut buf, vocab.len());
    for id in vocab {
        put_u32(&mut buf, id.0);
    }
    put_len(&mut buf, eirf.len());
    for &v in eirf {
        put_f64(&mut buf, v);
    }
    put_packed(&mut buf, p);
    buf
}

/// Decodes the entity-side block sections back to flat [`EntityParts`].
pub fn decode_entity_blocks(payload: &[u8]) -> Result<EntityParts, StoreError> {
    let mut c = Cursor::new(payload);
    let n_vocab = c.len(4)?;
    let mut vocab = Vec::with_capacity(n_vocab);
    for _ in 0..n_vocab {
        vocab.push(EntityId::new(c.u32()?));
    }
    let eirf = c.f64s()?;
    let p = read_packed(&mut c)?;
    c.finish("entity_blocks")?;
    let (offsets, docs, efs, we, max_contrib) =
        unpack_entities(&p, vocab.len()).map_err(|e| corrupt(format!("entity_blocks: {e}")))?;
    Ok(EntityParts { vocab, offsets, docs, efs, we, eirf, max_contrib })
}

#[cfg(test)]
mod block_tests {
    use super::*;
    use rightcrowd_index::{pack_entity_parts, pack_term_parts};

    fn term_parts() -> TermParts {
        TermParts {
            vocab: vec!["swim".into(), "pool".into()],
            offsets: vec![0, 3, 4],
            docs: vec![0, 2, 200, 1],
            tfs: vec![2, 1, 7, 3],
            irf: vec![1.25, 0.5],
            max_tf: vec![7, 3],
        }
    }

    fn entity_parts() -> EntityParts {
        EntityParts {
            vocab: vec![EntityId::new(4), EntityId::new(9)],
            offsets: vec![0, 2, 3],
            docs: vec![1, 5, 0],
            efs: vec![1, 4, 2],
            we: vec![1.5, 1.0, -0.0],
            eirf: vec![2.0, 0.75],
            max_contrib: vec![4.0, -0.0],
        }
    }

    #[test]
    fn term_blocks_roundtrip() {
        let t = term_parts();
        let packed = pack_term_parts(&t);
        let bytes = encode_term_blocks(&t.vocab, &t.irf, &packed);
        assert_eq!(decode_term_blocks(&bytes).unwrap(), t);
    }

    #[test]
    fn entity_blocks_roundtrip_is_bit_exact() {
        let e = entity_parts();
        let packed = pack_entity_parts(&e);
        let bytes = encode_entity_blocks(&e.vocab, &e.eirf, &packed);
        let got = decode_entity_blocks(&bytes).unwrap();
        assert_eq!(got, e);
        // -0.0 must survive as -0.0 in the weights themselves (PartialEq
        // would accept +0.0). The re-derived list bound folds from 0.0 and
        // may normalise the sign; it only has to be ==-equal.
        assert_eq!(got.we[2].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn forged_block_metadata_is_corrupt() {
        let t = term_parts();
        let mut packed = pack_term_parts(&t);
        packed.max_score[0] += 1.0; // inflate a block bound
        let bytes = encode_term_blocks(&t.vocab, &t.irf, &packed);
        match decode_term_blocks(&bytes) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("term_blocks"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_in_block_sections_are_corrupt() {
        let t = term_parts();
        let packed = pack_term_parts(&t);
        let mut bytes = encode_term_blocks(&t.vocab, &t.irf, &packed);
        bytes.push(0);
        assert!(matches!(decode_term_blocks(&bytes), Err(StoreError::Corrupt(_))));
    }
}
