//! Zero-dependency read-only memory mapping.
//!
//! The mapped snapshot opener needs exactly one thing from the OS: a
//! shared, read-only view of a shard file whose pages live in the page
//! cache — so N processes opening the same snapshot share one physical
//! copy, and a warm open costs page-table setup instead of a copy. That
//! is a single `mmap(2)`/`munmap(2)` pair, declared here directly
//! against libc's C ABI rather than through a crate dependency (the
//! workspace is zero-dep by policy).
//!
//! Off Unix — or whenever `mmap` fails (e.g. an empty file, which Linux
//! rejects with `EINVAL`) — [`FileBytes::open`] falls back to reading
//! the file into an 8-byte-aligned heap buffer. Callers see the same
//! `&[u8]` either way; only the sharing/residency behaviour differs.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;
use std::sync::Arc;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_SHARED: c_int = 1;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only `MAP_SHARED` mapping of an entire file. Unmapped on drop.
#[cfg(unix)]
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is immutable (PROT_READ) for its whole lifetime and
// the pointer/length pair never changes after construction.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

#[cfg(unix)]
impl Mmap {
    /// Maps `len` bytes of `file` read-only. Fails (with the OS error)
    /// for `len == 0` — Linux rejects zero-length mappings.
    pub fn map(file: &File, len: u64) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file exceeds address space"))?;
        // SAFETY: fd is a live file descriptor owned by `file`; we request
        // a fresh address (addr = null) and validate the result.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr: ptr as *const u8, len })
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr/len describe the live mapping established in `map`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        // SAFETY: exactly the region returned by mmap in `map`; errors on
        // unmap are unrecoverable and ignored (the address space leaks).
        unsafe {
            sys::munmap(self.ptr as *mut _, self.len);
        }
    }
}

/// A heap buffer over `u64` words, so the byte view is 8-byte aligned —
/// enough for every array type an `RCSHRD02` section can hold.
struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    fn read_from(file: &mut File, len: u64) -> io::Result<AlignedBuf> {
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file exceeds address space"))?;
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: the Vec's buffer holds len.div_ceil(8) * 8 >= len
        // initialised bytes; u64 -> u8 reinterpretation is always valid.
        let bytes = unsafe {
            std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, len)
        };
        file.read_exact(bytes)?;
        Ok(AlignedBuf { words, len })
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        // SAFETY: same reinterpretation as in `read_from`.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }
}

/// The bytes of one opened snapshot file: a shared mapping when the
/// platform provides one, an aligned owned copy otherwise. Cheap to
/// clone and share across threads; [`crate::Seg`]s borrow from it via
/// the `Arc` owner handle.
#[derive(Clone)]
pub struct FileBytes {
    inner: Arc<Inner>,
    mapped: bool,
}

enum Inner {
    #[cfg(unix)]
    Mapped(Mmap),
    Owned(AlignedBuf),
}

impl Inner {
    fn as_slice(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Inner::Mapped(m) => m.as_slice(),
            Inner::Owned(b) => b.as_slice(),
        }
    }
}

impl FileBytes {
    /// Opens `path` (whose size must be `len`) as shared read-only bytes:
    /// `mmap` where available, aligned read fallback otherwise.
    pub fn open(path: &Path, len: u64) -> io::Result<FileBytes> {
        let mut file = File::open(path)?;
        #[cfg(unix)]
        if len > 0 {
            if let Ok(m) = Mmap::map(&file, len) {
                return Ok(FileBytes { inner: Arc::new(Inner::Mapped(m)), mapped: true });
            }
        }
        let buf = AlignedBuf::read_from(&mut file, len)?;
        Ok(FileBytes { inner: Arc::new(Inner::Owned(buf)), mapped: false })
    }

    /// The file's bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        self.inner.as_slice()
    }

    /// Whether the bytes come from a true `mmap` (false on the owned
    /// fallback path).
    pub fn is_mapped(&self) -> bool {
        self.mapped
    }

    /// The owner handle that keeps the bytes alive — what mapped `Seg`s
    /// hold on to.
    pub fn owner(&self) -> Arc<dyn std::any::Any + Send + Sync> {
        Arc::clone(&self.inner) as Arc<dyn std::any::Any + Send + Sync>
    }
}

// SAFETY: both variants are immutable byte stores; Mmap is Send + Sync by
// the impls above and AlignedBuf is ordinary owned data.
unsafe impl Send for Inner {}
unsafe impl Sync for Inner {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("rc-mmap-{}-{name}", std::process::id()));
        let mut f = File::create(&p).unwrap();
        f.write_all(bytes).unwrap();
        p
    }

    #[test]
    fn maps_and_reads_back() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let p = tmp("roundtrip", &data);
        let fb = FileBytes::open(&p, data.len() as u64).unwrap();
        assert_eq!(fb.as_slice(), &data[..]);
        #[cfg(unix)]
        assert!(fb.is_mapped());
        // The owner handle keeps the bytes alive independently.
        let owner = fb.owner();
        drop(fb);
        drop(owner);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn empty_file_falls_back_to_owned() {
        let p = tmp("empty", &[]);
        let fb = FileBytes::open(&p, 0).unwrap();
        assert!(fb.as_slice().is_empty());
        assert!(!fb.is_mapped());
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn buffer_is_8_byte_aligned_even_when_owned() {
        let data = vec![7u8; 123];
        let p = tmp("aligned", &data);
        let mut f = File::open(&p).unwrap();
        let buf = AlignedBuf::read_from(&mut f, data.len() as u64).unwrap();
        assert_eq!(buf.as_slice().as_ptr() as usize % 8, 0);
        assert_eq!(buf.as_slice(), &data[..]);
        std::fs::remove_file(&p).unwrap();
    }
}
