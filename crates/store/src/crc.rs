//! CRC-64/XZ (ECMA-182 polynomial, reflected) — the snapshot checksum.
//!
//! Hand-rolled because the store is zero-dependency: a 256-entry table
//! built in a `const fn`, one table lookup per byte. The parameters are
//! the standard "CRC-64/XZ" profile (poly `0xC96C5795D7870F42` reflected,
//! init all-ones, final xor all-ones), so digests can be cross-checked
//! against `xz`/`python-crcmod` when debugging a snapshot by hand.

/// Reflected ECMA-182 polynomial.
const POLY: u64 = 0xC96C_5795_D787_0F42;

const fn make_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u64; 256] = make_table();

/// An incremental CRC-64/XZ digest (for streaming readers that hash while
/// they copy).
#[derive(Debug, Clone)]
pub struct Crc64 {
    state: u64,
}

impl Default for Crc64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc64 {
    /// A fresh digest.
    pub fn new() -> Self {
        Crc64 { state: !0 }
    }

    /// Feeds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            let idx = ((crc ^ b as u64) & 0xFF) as usize;
            crc = (crc >> 8) ^ TABLE[idx];
        }
        self.state = crc;
    }

    /// The digest of everything fed so far (does not consume; more
    /// updates may follow).
    pub fn finish(&self) -> u64 {
        !self.state
    }
}

/// One-shot CRC-64/XZ of `bytes`.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut c = Crc64::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_check_value() {
        // The canonical CRC-64/XZ check: crc("123456789").
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc64::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finish(), crc64(data));
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let mut data = vec![0u8; 1024];
        data[500] = 0x55;
        let base = crc64(&data);
        for byte in [0usize, 500, 1023] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc64(&flipped), base, "flip at byte {byte} bit {bit} undetected");
            }
        }
    }
}
