//! The typed failure contract of the snapshot store.
//!
//! Loading never panics on hostile input: every way a snapshot can be
//! wrong maps to exactly one [`StoreError`] variant, in a fixed detection
//! order (see `container`). The fault-injection suite drives a bit-flip
//! and a truncation through every byte region of a real snapshot and
//! asserts the mapping.

use std::fmt;

/// Why a snapshot could not be written or read.
#[derive(Debug)]
pub enum StoreError {
    /// The file does not start with the magic its role requires
    /// (`RCSNAP01` for snapshots, `RCMANI01` for manifests, `RCSHRD01`
    /// for shards) — it is not that kind of rightcrowd file at all.
    BadMagic,
    /// The file is a snapshot, but of a format revision this build does
    /// not read.
    VersionMismatch {
        /// The version recorded in the file.
        found: u32,
        /// The version this build reads.
        expected: u32,
    },
    /// The header carries feature flags this build does not know. Two
    /// flags are defined — packed sections and block postings (see
    /// `container::KNOWN_FLAGS`); any *other* set bit means the file needs
    /// a newer reader and is a refusal.
    UnsupportedFlags {
        /// The offending flag word.
        flags: u32,
    },
    /// A checksum did not verify. `section` names the failing region:
    /// `"header"`, `"table"`, `"file"`, or one of the payload sections
    /// (`"meta"`, `"graph"`, `"web"`, `"truth"`, `"corpus"`,
    /// `"term_index"`, `"entity_index"`, `"term_blocks"`,
    /// `"entity_blocks"`).
    ChecksumMismatch {
        /// The region whose checksum failed.
        section: &'static str,
    },
    /// The file ended before the declared layout did.
    Truncated,
    /// The manifest promises a shard file that does not exist on disk.
    ShardMissing {
        /// The missing shard's index in the manifest's shard table.
        index: u32,
    },
    /// A shard file's whole-file digest disagrees with the digest the
    /// manifest recorded for it — the shard is damaged, or it is not the
    /// file this manifest was written with.
    ShardChecksumMismatch {
        /// The offending shard's index in the manifest's shard table.
        index: u32,
    },
    /// Every checksum verified but the decoded structure violates an
    /// invariant (CSR shape, id ranges, knowledge-base fingerprint, …).
    /// Reachable only through a consistent rewrite of payload + checksums,
    /// i.e. a buggy or malicious writer rather than bit rot.
    Corrupt(String),
    /// The underlying I/O failed for reasons other than early EOF.
    Io(std::io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadMagic => {
                write!(
                    f,
                    "bad magic: not a rightcrowd snapshot (\"RCSNAP01\"), manifest (\"RCMANI01\") or shard (\"RCSHRD01\")"
                )
            }
            StoreError::VersionMismatch { found, expected } => write!(
                f,
                "snapshot format version {found} is not readable by this build (expects {expected}); re-run `rc save`"
            ),
            StoreError::UnsupportedFlags { flags } => {
                write!(f, "snapshot uses unknown feature flags {flags:#010x}; upgrade this build")
            }
            StoreError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in snapshot section `{section}` — the file is corrupt; re-run `rc save`")
            }
            StoreError::Truncated => {
                write!(f, "snapshot is truncated — the file is incomplete; re-run `rc save`")
            }
            StoreError::ShardMissing { index } => write!(
                f,
                "shard {index} is missing — the manifest promises it but the file is not on disk; re-run `rc save --shards N`"
            ),
            StoreError::ShardChecksumMismatch { index } => write!(
                f,
                "shard {index} failed its manifest digest — the file is corrupt or belongs to a different save; re-run `rc save --shards N`"
            ),
            StoreError::Corrupt(what) => write!(f, "snapshot is structurally corrupt: {what}"),
            StoreError::Io(e) => write!(f, "snapshot i/o failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    /// Early EOF during a structured read *is* truncation; everything
    /// else stays an I/O error.
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated
        } else {
            StoreError::Io(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let cases: Vec<(StoreError, &str)> = vec![
            (StoreError::BadMagic, "RCSNAP01"),
            (StoreError::VersionMismatch { found: 9, expected: 1 }, "version 9"),
            (StoreError::UnsupportedFlags { flags: 2 }, "0x00000002"),
            (StoreError::ChecksumMismatch { section: "graph" }, "`graph`"),
            (StoreError::Truncated, "truncated"),
            (StoreError::ShardMissing { index: 4 }, "shard 4 is missing"),
            (StoreError::ShardChecksumMismatch { index: 2 }, "shard 2 failed"),
            (StoreError::Corrupt("bad csr".into()), "bad csr"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn eof_becomes_truncated() {
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(StoreError::from(eof), StoreError::Truncated));
        let denied = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "no");
        assert!(matches!(StoreError::from(denied), StoreError::Io(_)));
    }
}
