//! The mapped shard layout (`RCSHRD02`) and its verify-then-map opener.
//!
//! An `RCSHRD02` file is the zero-copy sibling of the streamed `RCSHRD01`
//! shard: the same postings (block-compressed, bit-identical ranks), laid
//! out so the query path can *borrow* every array straight from an
//! `mmap(2)` of the file instead of decoding it into fresh allocations:
//!
//! ```text
//! offset   0  header (32 B): magic "RCSHRD02" · version u32 (2) ·
//!             flags u32 (0) · section count u32 · reserved u32 ·
//!             CRC-64 of bytes 0..24
//! offset  32  section table: count × 24 B
//!             { kind u32 · reserved u32 · payload offset u64 · len u64 }
//!             followed by the table's CRC-64
//!        ...  payloads, each starting at a 64-byte-aligned offset
//!             (zero padding between), in the fixed section order
//!  len − 8   CRC-64 of every preceding byte (the container convention,
//!             so the manifest's shard digest and the `.rcv` sidecar
//!             attest this file exactly like a streamed shard)
//! ```
//!
//! Payloads are the raw little-endian element bytes of each array — the
//! wire format *is* the in-memory format on every supported target, and
//! 64-byte alignment (a multiple of every element size, and a cache
//! line) makes `&[u8] → &[u32]/&[u64]/&[f64]` reinterpretation sound
//! once the mapping's page alignment is factored in.
//!
//! # Open protocol
//!
//! *Cold* (no valid sidecar): map the file, stream one CRC-64 pass over
//! it (checked against both its own trailer and the manifest's promised
//! digest), fully re-derive and cross-check the block maxima
//! (`unpack_terms`/`unpack_entities` — the same non-forgeability check
//! the streamed decoder runs), then write the `.rcv` sidecar.
//!
//! *Warm* (sidecar matches length + mtime *and* its digest equals the
//! manifest's): map and go. The layout checks (header, table, bounds,
//! alignment) are O(sections) and always run; no payload byte is
//! touched, so the open costs microseconds and N processes share one
//! physical copy of the index through the page cache.

use crate::container::{kind, FLAG_PACKED_SECTIONS, HEADER_LEN, KNOWN_FLAGS, TABLE_ENTRY_LEN};
use crate::crc::{crc64, Crc64};
use crate::err::StoreError;
use crate::mmap::FileBytes;
use crate::shard::{ShardEntry, SHARD_FORMAT_VERSION_MAPPED};
use crate::sidecar::{read_sidecar, write_sidecar, Sidecar};
use crate::wire::{put_u32, put_u64, Cursor};
use rightcrowd_index::{
    pack_entity_parts, pack_term_parts, unpack_entities, unpack_terms, IndexShard,
    MappedEntitySide, MappedShardView, MappedTermSide, PackedPostings, Seg,
};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

/// The 8-byte magic of a mapped postings shard.
pub const MAPPED_SHARD_MAGIC: [u8; 8] = *b"RCSHRD02";

/// Payload alignment inside an `RCSHRD02` file: a multiple of every
/// array element size and of the cache line.
pub const MAPPED_ALIGN: usize = 64;

const MAPPED_HEADER_LEN: usize = 32;
const MAPPED_TABLE_ENTRY_LEN: usize = 24;

/// Section kinds of the `RCSHRD02` envelope (its own namespace — the
/// fixed layout is not a `container` file).
pub mod mkind {
    /// Shard identity (same payload as the streamed `shard_meta`).
    pub const SHARD_META: u32 = 1;
    pub const T_VOCAB_OFFSETS: u32 = 2;
    pub const T_VOCAB_BYTES: u32 = 3;
    pub const T_IRF: u32 = 4;
    pub const T_MAX_TF: u32 = 5;
    pub const T_BLOCK_OFFSETS: u32 = 6;
    pub const T_LAST_DOC: u32 = 7;
    pub const T_COUNTS: u32 = 8;
    pub const T_DOC_BITS: u32 = 9;
    pub const T_AUX_BITS: u32 = 10;
    pub const T_MAX_SCORE: u32 = 11;
    pub const T_DATA_OFFSETS: u32 = 12;
    pub const T_DATA: u32 = 13;
    pub const E_VOCAB: u32 = 14;
    pub const E_EIRF: u32 = 15;
    pub const E_MAX_CONTRIB: u32 = 16;
    pub const E_BLOCK_OFFSETS: u32 = 17;
    pub const E_LAST_DOC: u32 = 18;
    pub const E_COUNTS: u32 = 19;
    pub const E_DOC_BITS: u32 = 20;
    pub const E_AUX_BITS: u32 = 21;
    pub const E_MAX_SCORE: u32 = 22;
    pub const E_DATA_OFFSETS: u32 = 23;
    pub const E_DATA: u32 = 24;
}

/// The fixed section order every `RCSHRD02` file uses.
pub const MAPPED_SECTION_ORDER: [u32; 24] = [
    mkind::SHARD_META,
    mkind::T_VOCAB_OFFSETS,
    mkind::T_VOCAB_BYTES,
    mkind::T_IRF,
    mkind::T_MAX_TF,
    mkind::T_BLOCK_OFFSETS,
    mkind::T_LAST_DOC,
    mkind::T_COUNTS,
    mkind::T_DOC_BITS,
    mkind::T_AUX_BITS,
    mkind::T_MAX_SCORE,
    mkind::T_DATA_OFFSETS,
    mkind::T_DATA,
    mkind::E_VOCAB,
    mkind::E_EIRF,
    mkind::E_MAX_CONTRIB,
    mkind::E_BLOCK_OFFSETS,
    mkind::E_LAST_DOC,
    mkind::E_COUNTS,
    mkind::E_DOC_BITS,
    mkind::E_AUX_BITS,
    mkind::E_MAX_SCORE,
    mkind::E_DATA_OFFSETS,
    mkind::E_DATA,
];

fn corrupt(msg: impl Into<String>) -> StoreError {
    StoreError::Corrupt(msg.into())
}

#[inline]
fn align64(n: usize) -> usize {
    n.div_ceil(MAPPED_ALIGN) * MAPPED_ALIGN
}

// ----- writing ----------------------------------------------------------

fn u32s_le(v: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn u64s_le(v: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn f64s_le(v: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    out
}

fn packed_sections(p: &PackedPostings, kinds: &[u32; 8]) -> Vec<(u32, Vec<u8>)> {
    vec![
        (kinds[0], u32s_le(&p.block_offsets)),
        (kinds[1], u32s_le(&p.last_doc)),
        (kinds[2], u32s_le(&p.counts)),
        (kinds[3], p.doc_bits.to_vec()),
        (kinds[4], p.aux_bits.to_vec()),
        (kinds[5], f64s_le(&p.max_score)),
        (kinds[6], u64s_le(&p.data_offsets)),
        (kinds[7], p.data.to_vec()),
    ]
}

/// Assembles a complete `RCSHRD02` file from `(kind, payload)` pairs in
/// [`MAPPED_SECTION_ORDER`].
fn assemble_mapped(sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let table_end = MAPPED_HEADER_LEN + sections.len() * MAPPED_TABLE_ENTRY_LEN + 8;
    let mut offsets = Vec::with_capacity(sections.len());
    let mut at = align64(table_end);
    for (_, payload) in sections {
        offsets.push(at);
        at = align64(at + payload.len());
    }
    let mut out = Vec::with_capacity(at + 8);

    out.extend_from_slice(&MAPPED_SHARD_MAGIC);
    out.extend_from_slice(&SHARD_FORMAT_VERSION_MAPPED.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // flags
    put_u32(&mut out, sections.len() as u32);
    out.extend_from_slice(&0u32.to_le_bytes()); // reserved
    let header_crc = crc64(&out);
    out.extend_from_slice(&header_crc.to_le_bytes());

    let table_start = out.len();
    for ((kind_tag, payload), offset) in sections.iter().zip(&offsets) {
        put_u32(&mut out, *kind_tag);
        out.extend_from_slice(&0u32.to_le_bytes()); // reserved
        put_u64(&mut out, *offset as u64);
        put_u64(&mut out, payload.len() as u64);
    }
    let table_crc = crc64(&out[table_start..]);
    out.extend_from_slice(&table_crc.to_le_bytes());

    for ((_, payload), offset) in sections.iter().zip(&offsets) {
        out.resize(*offset, 0);
        out.extend_from_slice(payload);
    }
    out.resize(at, 0);
    let file_crc = crc64(&out);
    out.extend_from_slice(&file_crc.to_le_bytes());
    out
}

/// Serialises one shard into a complete `RCSHRD02` file (fixed layout,
/// aligned payloads, block-compressed postings).
pub(crate) fn encode_mapped_shard(shard: &IndexShard, shard_count: usize) -> Vec<u8> {
    let packed_t = pack_term_parts(&shard.terms);
    let packed_e = pack_entity_parts(&shard.entities);

    let mut vocab_bytes = Vec::new();
    let mut vocab_offsets = vec![0u64];
    for term in &shard.terms.vocab {
        vocab_bytes.extend_from_slice(term.as_bytes());
        vocab_offsets.push(vocab_bytes.len() as u64);
    }
    let entity_vocab: Vec<u32> = shard.entities.vocab.iter().map(|e| e.0).collect();

    let mut sections = vec![
        (mkind::SHARD_META, crate::shard::encode_shard_meta(shard, shard_count)),
        (mkind::T_VOCAB_OFFSETS, u64s_le(&vocab_offsets)),
        (mkind::T_VOCAB_BYTES, vocab_bytes),
        (mkind::T_IRF, f64s_le(&shard.terms.irf)),
        (mkind::T_MAX_TF, u32s_le(&shard.terms.max_tf)),
    ];
    sections.extend(packed_sections(
        &packed_t,
        &[
            mkind::T_BLOCK_OFFSETS,
            mkind::T_LAST_DOC,
            mkind::T_COUNTS,
            mkind::T_DOC_BITS,
            mkind::T_AUX_BITS,
            mkind::T_MAX_SCORE,
            mkind::T_DATA_OFFSETS,
            mkind::T_DATA,
        ],
    ));
    sections.push((mkind::E_VOCAB, u32s_le(&entity_vocab)));
    sections.push((mkind::E_EIRF, f64s_le(&shard.entities.eirf)));
    sections.push((mkind::E_MAX_CONTRIB, f64s_le(&shard.entities.max_contrib)));
    sections.extend(packed_sections(
        &packed_e,
        &[
            mkind::E_BLOCK_OFFSETS,
            mkind::E_LAST_DOC,
            mkind::E_COUNTS,
            mkind::E_DOC_BITS,
            mkind::E_AUX_BITS,
            mkind::E_MAX_SCORE,
            mkind::E_DATA_OFFSETS,
            mkind::E_DATA,
        ],
    ));
    debug_assert_eq!(
        sections.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        MAPPED_SECTION_ORDER.to_vec()
    );
    assemble_mapped(&sections)
}

// ----- layout parsing ---------------------------------------------------

/// One parsed table row: the byte range of a payload inside the file.
struct MappedSection {
    kind: u32,
    offset: usize,
    len: usize,
}

/// Parses and structurally validates an `RCSHRD02` byte image: header
/// and table checksums, the fixed section order, 64-byte payload
/// alignment, and in-bounds non-overlapping payload ranges. Does NOT
/// verify the trailing whole-file digest — that is the caller's cold/warm
/// decision.
fn parse_mapped_layout(bytes: &[u8]) -> Result<Vec<MappedSection>, StoreError> {
    if bytes.len() < MAPPED_HEADER_LEN + 8 {
        return Err(StoreError::Truncated);
    }
    if bytes[0..8] != MAPPED_SHARD_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let u32at = |a: usize| u32::from_le_bytes(bytes[a..a + 4].try_into().expect("4 bytes"));
    let u64at = |a: usize| u64::from_le_bytes(bytes[a..a + 8].try_into().expect("8 bytes"));
    let version = u32at(8);
    if version != SHARD_FORMAT_VERSION_MAPPED {
        return Err(StoreError::VersionMismatch { found: version, expected: SHARD_FORMAT_VERSION_MAPPED });
    }
    let flags = u32at(12);
    if flags != 0 {
        return Err(StoreError::UnsupportedFlags { flags });
    }
    if crc64(&bytes[..24]) != u64at(24) {
        return Err(StoreError::ChecksumMismatch { section: "header" });
    }
    let count = u32at(16) as usize;
    if count != MAPPED_SECTION_ORDER.len() {
        return Err(corrupt(format!(
            "mapped shard declares {count} sections, format has {}",
            MAPPED_SECTION_ORDER.len()
        )));
    }

    let table_start = MAPPED_HEADER_LEN;
    let table_len = count * MAPPED_TABLE_ENTRY_LEN;
    if bytes.len() < table_start + table_len + 8 + 8 {
        return Err(StoreError::Truncated);
    }
    if crc64(&bytes[table_start..table_start + table_len]) != u64at(table_start + table_len) {
        return Err(StoreError::ChecksumMismatch { section: "table" });
    }

    let payload_area_end = bytes.len() - 8;
    let mut sections = Vec::with_capacity(count);
    let mut cursor = align64(table_start + table_len + 8);
    for (i, &want_kind) in MAPPED_SECTION_ORDER.iter().enumerate() {
        let row = table_start + i * MAPPED_TABLE_ENTRY_LEN;
        let kind_tag = u32at(row);
        if kind_tag != want_kind {
            return Err(corrupt(format!(
                "mapped shard section {i} has kind {kind_tag}, format wants {want_kind}"
            )));
        }
        if u32at(row + 4) != 0 {
            return Err(corrupt(format!("mapped shard section {i} has non-zero reserved word")));
        }
        let offset = u64at(row + 8) as usize;
        let len = u64at(row + 16) as usize;
        if !offset.is_multiple_of(MAPPED_ALIGN) {
            return Err(corrupt(format!("mapped shard section {i} payload is not 64-byte aligned")));
        }
        if offset != cursor {
            return Err(corrupt(format!(
                "mapped shard section {i} starts at {offset}, layout expects {cursor}"
            )));
        }
        let end = offset.checked_add(len).ok_or_else(|| corrupt("mapped shard section overflow"))?;
        if end > payload_area_end {
            return Err(StoreError::Truncated);
        }
        cursor = align64(end);
        sections.push(MappedSection { kind: kind_tag, offset, len });
    }
    if cursor != payload_area_end {
        return Err(corrupt(format!(
            "mapped shard has {} bytes of trailing garbage before the digest",
            payload_area_end - cursor
        )));
    }
    Ok(sections)
}

// ----- view construction ------------------------------------------------

/// Borrows a typed segment from the file bytes. Element reinterpretation
/// is sound: payload offsets are 64-byte aligned within a page-aligned
/// (or 8-byte-aligned fallback) base, and the wire format is the
/// little-endian native layout of every supported target.
fn seg<T: Copy + Send + Sync + 'static>(
    fb: &FileBytes,
    s: &MappedSection,
) -> Result<Seg<T>, StoreError> {
    let elem = std::mem::size_of::<T>();
    if !s.len.is_multiple_of(elem) {
        return Err(corrupt(format!(
            "mapped shard section kind {} has {} bytes, not a multiple of element size {elem}",
            s.kind, s.len
        )));
    }
    let bytes = fb.as_slice();
    let ptr = bytes[s.offset..s.offset + s.len].as_ptr();
    debug_assert_eq!(ptr as usize % std::mem::align_of::<T>(), 0);
    // SAFETY: the range was bounds-checked by `parse_mapped_layout`, the
    // base is at least 8-byte aligned and the offset 64-byte aligned, and
    // the FileBytes owner keeps the memory alive and immutable.
    Ok(unsafe { Seg::from_owner(fb.owner(), ptr.cast::<T>(), s.len / elem) })
}

fn packed_from(fb: &FileBytes, s: &[MappedSection]) -> Result<PackedPostings, StoreError> {
    Ok(PackedPostings {
        block_offsets: seg(fb, &s[0])?,
        last_doc: seg(fb, &s[1])?,
        counts: seg(fb, &s[2])?,
        doc_bits: seg(fb, &s[3])?,
        aux_bits: seg(fb, &s[4])?,
        max_score: seg(fb, &s[5])?,
        data_offsets: seg(fb, &s[6])?,
        data: seg(fb, &s[7])?,
    })
}

/// Builds the shard view over an already-layout-validated mapping and
/// cross-checks the recorded identity against the manifest's entry.
fn view_from(
    fb: &FileBytes,
    sections: &[MappedSection],
    index: u32,
    entry: &ShardEntry,
    shard_count: usize,
) -> Result<MappedShardView, StoreError> {
    let meta_s = &sections[0];
    let meta = crate::shard::decode_shard_meta(
        &fb.as_slice()[meta_s.offset..meta_s.offset + meta_s.len],
    )?;
    if meta.index != index
        || meta.shard_count != shard_count as u32
        || meta.term_range != entry.term_range
        || meta.entity_range != entry.entity_range
    {
        return Err(corrupt(format!(
            "mapped shard {index} identity mismatch: file says shard {}/{} terms [{}, {}) \
             entities [{}, {}), manifest says shard {index}/{shard_count} terms [{}, {}) \
             entities [{}, {})",
            meta.index,
            meta.shard_count,
            meta.term_range.0,
            meta.term_range.1,
            meta.entity_range.0,
            meta.entity_range.1,
            entry.term_range.0,
            entry.term_range.1,
            entry.entity_range.0,
            entry.entity_range.1,
        )));
    }
    Ok(MappedShardView {
        term_range: entry.term_range,
        entity_range: entry.entity_range,
        terms: MappedTermSide {
            vocab_offsets: seg(fb, &sections[1])?,
            vocab_bytes: seg(fb, &sections[2])?,
            irf: seg(fb, &sections[3])?,
            max_tf: seg(fb, &sections[4])?,
            packed: packed_from(fb, &sections[5..13])?,
        },
        entities: MappedEntitySide {
            vocab: seg(fb, &sections[13])?,
            eirf: seg(fb, &sections[14])?,
            max_contrib: seg(fb, &sections[15])?,
            packed: packed_from(fb, &sections[16..24])?,
        },
    })
}

/// The deep content verification a cold open runs (and a sidecar then
/// attests): every posting block re-derived with full
/// monotonicity/overflow checking, the stored block and per-list maxima
/// proven bit-identical to the re-derived values — the same
/// non-forgeability property the streamed decoder enforces.
fn verify_view_deep(view: &MappedShardView, index: u32) -> Result<(), StoreError> {
    let n_t = (view.term_range.1 - view.term_range.0) as usize;
    let (_, _, _, max_tf) = unpack_terms(&view.terms.packed, n_t)
        .map_err(|e| corrupt(format!("mapped shard {index}: {e}")))?;
    if max_tf != *view.terms.max_tf {
        return Err(corrupt(format!(
            "mapped shard {index}: stored per-list max_tf disagrees with decoded postings"
        )));
    }
    let n_e = (view.entity_range.1 - view.entity_range.0) as usize;
    let (_, _, _, _, max_contrib) = unpack_entities(&view.entities.packed, n_e)
        .map_err(|e| corrupt(format!("mapped shard {index}: {e}")))?;
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    if bits(&max_contrib) != bits(&view.entities.max_contrib) {
        return Err(corrupt(format!(
            "mapped shard {index}: stored per-list max_contrib disagrees with decoded postings"
        )));
    }
    Ok(())
}

// ----- opening ----------------------------------------------------------

/// One opened mapped shard.
pub(crate) struct OpenedShard {
    pub view: MappedShardView,
    /// File size (== bytes now behind the mapping).
    pub bytes: u64,
    /// Whether the sidecar waived the streamed verification.
    pub warm: bool,
}

/// Opens one `RCSHRD02` shard file: sidecar-or-verify, map, view.
///
/// The sidecar's digest is only trusted when it equals the *manifest's*
/// digest for this shard (`entry.digest`) — a forged or stale sidecar
/// falls back to the full streamed verification, which then fails
/// against the manifest if the bytes really are wrong.
pub(crate) fn open_mapped_shard(
    path: &Path,
    index: u32,
    entry: &ShardEntry,
    shard_count: usize,
) -> Result<OpenedShard, StoreError> {
    let _span = rightcrowd_obs::span!("store.open_mapped_shard");
    let warm = matches!(
        read_sidecar(path),
        Ok(sc) if sc.attests(path, SHARD_FORMAT_VERSION_MAPPED, entry.digest)
    );

    let fb = match FileBytes::open(path, std::fs::metadata(path).map_err(io_missing(index))?.len())
    {
        Ok(fb) => fb,
        Err(e) => return Err(io_missing(index)(e)),
    };
    let bytes = fb.as_slice();
    if bytes.len() as u64 != entry.byte_len || bytes.len() < 8 {
        return Err(StoreError::ShardChecksumMismatch { index });
    }
    let trailer = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    if trailer != entry.digest {
        // The file's own claim already disagrees with the manifest; no
        // amount of hashing can save it.
        return Err(StoreError::ShardChecksumMismatch { index });
    }
    let sections = parse_mapped_layout(bytes)?;
    let view = view_from(&fb, &sections, index, entry, shard_count)?;

    if warm {
        rightcrowd_obs::add(rightcrowd_obs::CounterId::SidecarHits, 1);
    } else {
        rightcrowd_obs::add(rightcrowd_obs::CounterId::SidecarMisses, 1);
        // The streamed pass: one CRC over every byte, then the deep
        // content verification, then the receipt.
        let mut digest = Crc64::new();
        digest.update(&bytes[..bytes.len() - 8]);
        if digest.finish() != entry.digest {
            return Err(StoreError::ShardChecksumMismatch { index });
        }
        verify_view_deep(&view, index)?;
        rightcrowd_obs::add(rightcrowd_obs::CounterId::ShardBytesRead, bytes.len() as u64);
        if let Ok(sc) = Sidecar::for_file(path, SHARD_FORMAT_VERSION_MAPPED, entry.digest) {
            let _ = write_sidecar(path, &sc);
        }
    }
    rightcrowd_obs::add(rightcrowd_obs::CounterId::MmapOpens, 1);
    rightcrowd_obs::add(rightcrowd_obs::CounterId::MappedBytes, bytes.len() as u64);
    Ok(OpenedShard { view, bytes: fb.as_slice().len() as u64, warm })
}

fn io_missing(index: u32) -> impl Fn(std::io::Error) -> StoreError {
    move |e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            StoreError::ShardMissing { index }
        } else {
            StoreError::Io(e)
        }
    }
}

// ----- manifest fast path -----------------------------------------------

/// What the index-only manifest read produced.
pub(crate) struct ManifestIndexOnly {
    pub table: crate::shard::ShardTable,
    pub doc_lens: Vec<u32>,
    /// Whole-file digest (the trailing 8 bytes) — the trust anchor for
    /// the manifest's own sidecar.
    pub digest: u64,
    /// Bytes actually read from disk (tiny on the warm path).
    pub bytes_read: u64,
    /// Whether the manifest sidecar waived the full streamed read.
    pub warm: bool,
}

/// Reads only what a mapped open needs from the manifest — the shard
/// table and the raw `doc_lens` section — without unpacking the study
/// sections.
///
/// Warm path (sidecar matches stat + the file's own trailing digest):
/// four targeted reads — trailer, header, table, the two payloads —
/// each guarded by the envelope's own CRCs. Cold path: one full
/// streamed `SelfContained` verification of the whole manifest, then
/// the sidecar is written.
pub(crate) fn read_manifest_index_only(dir: &Path) -> Result<ManifestIndexOnly, StoreError> {
    let path = crate::shard::manifest_path(dir);
    if let Ok(sc) = read_sidecar(&path) {
        match read_manifest_fast(&path, &sc) {
            Ok(Some(out)) => {
                rightcrowd_obs::add(rightcrowd_obs::CounterId::SidecarHits, 1);
                rightcrowd_obs::add(rightcrowd_obs::CounterId::SnapshotBytesRead, out.bytes_read);
                return Ok(out);
            }
            Ok(None) => {} // stale sidecar — fall through to the slow path
            Err(e) => return Err(e),
        }
    }
    rightcrowd_obs::add(rightcrowd_obs::CounterId::SidecarMisses, 1);
    let bytes = std::fs::read(&path)?;
    let digest = trailing_u64(&bytes)?;
    let (sections, n, _flags) = crate::container::read_container_with(
        &bytes[..],
        &crate::shard::MANIFEST_MAGIC,
        crate::container::Integrity::SelfContained,
    )?;
    let (table, doc_lens) = mapped_manifest_sections(&sections)?;
    rightcrowd_obs::add(rightcrowd_obs::CounterId::SnapshotBytesRead, n);
    if let Ok(sc) = Sidecar::for_file(&path, SHARD_FORMAT_VERSION_MAPPED, digest) {
        let _ = write_sidecar(&path, &sc);
    }
    Ok(ManifestIndexOnly { table, doc_lens, digest, bytes_read: n, warm: false })
}

fn trailing_u64(bytes: &[u8]) -> Result<u64, StoreError> {
    if bytes.len() < 8 {
        return Err(StoreError::Truncated);
    }
    Ok(u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes")))
}

/// Decodes the shard table + doc_lens out of a fully-read mapped-layout
/// manifest's sections (the `Section.payload`s are already unwrapped).
pub(crate) fn mapped_manifest_sections(
    sections: &[crate::container::Section],
) -> Result<(crate::shard::ShardTable, Vec<u32>), StoreError> {
    let table_sec = sections
        .iter()
        .find(|s| s.kind == kind::SHARD_TABLE)
        .ok_or_else(|| corrupt("manifest has no shard_table section"))?;
    let table = crate::shard::decode_shard_table(&table_sec.payload)?;
    if table.shard_format_version != crate::shard::SHARD_FORMAT_VERSION_MAPPED {
        // A perfectly healthy streamed-layout snapshot: the caller asked
        // for a zero-copy open of a directory that only supports the
        // streamed decoder. Typed, so the CLI can fall back cleanly.
        return Err(StoreError::VersionMismatch {
            found: table.shard_format_version,
            expected: crate::shard::SHARD_FORMAT_VERSION_MAPPED,
        });
    }
    let lens_sec = sections
        .iter()
        .find(|s| s.kind == kind::DOC_LENS)
        .ok_or_else(|| corrupt("mapped manifest has no doc_lens section"))?;
    let doc_lens = decode_doc_lens(&lens_sec.payload)?;
    Ok((table, doc_lens))
}

/// Encodes the manifest's raw `doc_lens` section.
pub(crate) fn encode_doc_lens(doc_lens: &[u32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + doc_lens.len() * 4);
    crate::wire::put_u32s(&mut buf, doc_lens);
    buf
}

pub(crate) fn decode_doc_lens(payload: &[u8]) -> Result<Vec<u32>, StoreError> {
    let mut c = Cursor::new(payload);
    let lens = c.u32s()?;
    c.finish("doc_lens")?;
    Ok(lens)
}

/// The targeted-read warm path. Returns `Ok(None)` when the sidecar
/// turns out stale (stat or digest disagree) so the caller can fall back
/// without treating it as corruption.
fn read_manifest_fast(path: &Path, sc: &Sidecar) -> Result<Option<ManifestIndexOnly>, StoreError> {
    if !sc.attests(path, SHARD_FORMAT_VERSION_MAPPED, sc.digest) {
        // Self-anchored check is vacuous for the digest; stat must match.
        return Ok(None);
    }
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(_) => return Ok(None),
    };
    let file_len = file.metadata()?.len();
    if file_len != sc.file_len || file_len < (HEADER_LEN + 8 + 8) as u64 {
        return Ok(None);
    }
    let mut read_at = |at: u64, len: usize| -> Result<Vec<u8>, StoreError> {
        let mut buf = vec![0u8; len];
        file.seek(SeekFrom::Start(at))?;
        file.read_exact(&mut buf)?;
        Ok(buf)
    };

    // The manifest sidecar's trust anchor is the file's own trailing
    // digest: the sidecar only waives re-hashing of bytes whose digest
    // it recorded at full-verification time.
    let trailer = read_at(file_len - 8, 8)?;
    if u64::from_le_bytes(trailer.try_into().expect("8 bytes")) != sc.digest {
        return Ok(None);
    }

    let header = read_at(0, HEADER_LEN)?;
    if header[0..8] != crate::shard::MANIFEST_MAGIC {
        return Ok(None);
    }
    let u32at = |b: &[u8], a: usize| u32::from_le_bytes(b[a..a + 4].try_into().expect("4 bytes"));
    let version = u32at(&header, 8);
    let flags = u32at(&header, 12);
    let count = u32at(&header, 16) as usize;
    if version != crate::container::FORMAT_VERSION
        || flags & !KNOWN_FLAGS != 0
        || count == 0
        || count > 64
        || crc64(&header[..20])
            != u64::from_le_bytes(header[20..28].try_into().expect("8 bytes"))
    {
        return Ok(None);
    }

    let table_len = count * TABLE_ENTRY_LEN;
    let table = read_at(HEADER_LEN as u64, table_len + 8)?;
    if crc64(&table[..table_len])
        != u64::from_le_bytes(table[table_len..].try_into().expect("8 bytes"))
    {
        return Ok(None);
    }

    let mut offset = (HEADER_LEN + table_len + 8) as u64;
    let mut found: Vec<(u32, u64, usize, u64)> = Vec::new(); // kind, offset, len, crc
    for i in 0..count {
        let row = &table[i * TABLE_ENTRY_LEN..(i + 1) * TABLE_ENTRY_LEN];
        let kind_tag = u32at(row, 0);
        let len = u64::from_le_bytes(row[4..12].try_into().expect("8 bytes"));
        let crc = u64::from_le_bytes(row[12..20].try_into().expect("8 bytes"));
        let len_usize = match usize::try_from(len) {
            Ok(l) => l,
            Err(_) => return Ok(None),
        };
        if matches!(kind_tag, kind::SHARD_TABLE | kind::DOC_LENS) {
            found.push((kind_tag, offset, len_usize, crc));
        }
        offset = match offset.checked_add(len) {
            Some(o) => o,
            None => return Ok(None),
        };
    }
    if offset + 8 != file_len {
        return Ok(None);
    }
    let mut bytes_read = (HEADER_LEN + table_len + 8 + 8) as u64;
    let mut table_payload = None;
    let mut lens_payload = None;
    for (kind_tag, at, len, crc) in found {
        let wrapped = read_at(at, len)?;
        if crc64(&wrapped) != crc {
            return Ok(None);
        }
        bytes_read += len as u64;
        let payload = if flags & FLAG_PACKED_SECTIONS != 0 {
            crate::pack::unwrap(crate::container::section_name(kind_tag), &wrapped)?
        } else {
            wrapped
        };
        match kind_tag {
            kind::SHARD_TABLE => table_payload = Some(payload),
            _ => lens_payload = Some(payload),
        }
    }
    let (Some(table_payload), Some(lens_payload)) = (table_payload, lens_payload) else {
        return Ok(None); // not a mapped-layout manifest — slow path decides
    };
    let table = crate::shard::decode_shard_table(&table_payload)?;
    if table.shard_format_version != SHARD_FORMAT_VERSION_MAPPED {
        return Err(StoreError::VersionMismatch {
            found: table.shard_format_version,
            expected: SHARD_FORMAT_VERSION_MAPPED,
        });
    }
    let doc_lens = decode_doc_lens(&lens_payload)?;
    Ok(Some(ManifestIndexOnly {
        table,
        doc_lens,
        digest: sc.digest,
        bytes_read,
        warm: true,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_helper() {
        assert_eq!(align64(0), 0);
        assert_eq!(align64(1), 64);
        assert_eq!(align64(64), 64);
        assert_eq!(align64(65), 128);
    }

    #[test]
    fn doc_lens_roundtrip() {
        let lens = vec![3u32, 0, 7, 1];
        assert_eq!(decode_doc_lens(&encode_doc_lens(&lens)).unwrap(), lens);
        assert!(decode_doc_lens(&[1, 2, 3]).is_err());
    }
}
